"""Driving traces through a cache: the simulator front-end.

:func:`simulate` / :class:`CacheSimulator` consume any iterable of
:class:`~repro.trace.record.TraceRecord` and produce a
:class:`SimulationResult` bundling the statistics and the conflict
matrix.  A ``Modify`` record is a *single* dirtying access (cachegrind's
convention, not DineroIV's read-then-write expansion): the read and
write touch the same line, so the hit/miss outcome is decided once and
the access is counted once, under ``writes`` in
:class:`~repro.cache.stats.CacheStats`, since it leaves the line dirty.
``X`` records are skipped, as the paper disables instruction tracing.

:func:`simulate_stream` is the bounded-memory variant: it feeds
fixed-size record chunks from a trace file (or record iterable) into the
vectorized fast paths of :mod:`repro.cache.fastsim` without ever
materializing a full :class:`~repro.trace.stream.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.conflict import ConflictMatrix
from repro.cache.fastsim import FastCounts, FastSimulator, FastTraceCounts
from repro.cache.stats import CacheStats
from repro.obsv.telemetry import get_telemetry
from repro.trace.record import AccessType, TraceRecord
from repro.trace.stream import DEFAULT_CHUNK_RECORDS, TraceChunk, iter_chunks


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    config: CacheConfig
    stats: CacheStats
    conflicts: ConflictMatrix
    #: the cache object (still warm) for residency inspection
    cache: SetAssociativeCache

    def summary(self) -> str:
        """Config line plus the DineroIV-style statistics report."""
        return "\n".join(
            [self.config.describe(), self.stats.summary()]
        )


def attribution_label(record: TraceRecord, mode: str) -> Optional[str]:
    """The attribution key of one record under a given mode.

    - ``"base"``  — the root variable name (``lSoA``), the default;
    - ``"member"``— root plus field names with indices stripped
      (``lSoA.mX``), which separates the per-field series the paper's
      Figure 3 plots for the structure-of-arrays layout.
    """
    if record.var is None:
        return None
    if mode == "base":
        return record.var.base
    if mode == "member":
        fields = record.var.field_names()
        if fields:
            return record.var.base + "." + ".".join(fields)
        return record.var.base
    raise ValueError(f"unknown attribution mode {mode!r}")


class CacheSimulator:
    """Reusable simulator wrapper around one cache instance.

    ``warm`` simulations can call :meth:`feed` repeatedly; statistics
    accumulate until :meth:`result` is taken.  ``attribution`` selects the
    per-variable key granularity (see :func:`attribution_label`).
    """

    def __init__(self, config: CacheConfig, *, attribution: str = "base") -> None:
        self.config = config
        self.cache = SetAssociativeCache(config)
        self.stats = CacheStats(config.n_sets)
        self.conflicts = ConflictMatrix()
        self.attribution = attribution
        self._seen_blocks: set[int] = set()

    def feed(self, records: Iterable[TraceRecord]) -> None:
        """Simulate all records (Modify = one dirtying access)."""
        cache = self.cache
        stats = self.stats
        conflicts = self.conflicts
        seen = self._seen_blocks
        mode = self.attribution
        for record in records:
            if record.op is AccessType.MISC:
                continue
            variable = attribution_label(record, mode)
            function = record.func or None
            # Modify counts as a single dirtying access (cachegrind's
            # convention; see the module docstring): the read and write
            # touch the same line, so the hit/miss outcome is decided once
            # and CacheStats books the access under `writes`.
            is_write = record.op in (AccessType.STORE, AccessType.MODIFY)
            outcome = cache.access(
                record.addr, record.size, is_write, owner=variable
            )
            stats.record_access(is_write, outcome.hit)
            for event in outcome.events:
                compulsory = not event.hit and event.block not in seen
                if event.filled or event.hit:
                    seen.add(event.block)
                stats.record_block(
                    event.set_index,
                    event.hit,
                    variable=variable,
                    function=function,
                    compulsory=compulsory,
                    evicted=event.evicted,
                    writeback=event.writeback,
                )
                if event.evicted:
                    conflicts.record(event.victim_owner, variable)

    def result(self) -> SimulationResult:
        """Snapshot the accumulated statistics and warm cache."""
        return SimulationResult(
            config=self.config,
            stats=self.stats,
            conflicts=self.conflicts,
            cache=self.cache,
        )


def simulate(
    records: Iterable[TraceRecord],
    config: Optional[CacheConfig] = None,
    *,
    attribution: str = "base",
) -> SimulationResult:
    """Simulate a trace against ``config`` (paper's direct-mapped default)."""
    cfg = config if config is not None else CacheConfig.paper_direct_mapped()
    sim = CacheSimulator(cfg, attribution=attribution)
    tele = get_telemetry()
    with tele.span("simulate.reference", cat="simulate"):
        sim.feed(records)
    tele.add("simulate.cache_lookups", sim.stats.accesses)
    return sim.result()


# -- bounded-memory streaming simulation --------------------------------------


@dataclass(frozen=True)
class StreamResult:
    """What one :func:`simulate_stream` pass produced."""

    config: CacheConfig
    #: totals at block and demand granularity (fast-path accounting)
    totals: FastTraceCounts
    #: records simulated (demand accesses; ``X`` records are dropped)
    records: int
    #: chunks fed — peak record residency was ``records / chunks``-ish
    chunks: int

    @property
    def counts(self) -> FastCounts:
        """Block-level totals (hits/misses/compulsory/per-set)."""
        return self.totals.counts

    def summary(self) -> str:
        """Config line plus a compact statistics report."""
        c = self.counts
        t = self.totals
        return "\n".join(
            [
                self.config.describe(),
                f"demand accesses : {t.demand_accesses}",
                f"demand misses   : {t.demand_misses} "
                f"(miss rate {t.demand_miss_ratio:.4f})",
                f"block hits      : {c.hits}",
                f"block misses    : {c.misses} "
                f"(compulsory {c.compulsory_misses})",
                f"evictions       : {t.evictions}",
                f"chunks          : {self.chunks}",
            ]
        )


def simulate_stream(
    source: Union[str, Path, Iterable[TraceRecord]],
    config: Optional[CacheConfig] = None,
    *,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    on_chunk: Optional[Callable[[TraceChunk, FastCounts], None]] = None,
) -> StreamResult:
    """Simulate a trace in bounded memory via the vectorized fast paths.

    ``source`` is a trace file path (text, gzipped text, or ``TDST``
    binary — auto-detected) or any record iterable.  Records stream
    through in ``chunk_records``-sized batches; residency is carried
    between batches, so the totals are exactly equal to a whole-trace
    pass.  Peak record residency is one chunk, never the full trace.

    ``config`` must be fast-path-eligible (see
    :func:`repro.cache.fastsim.supports_fast_path`); other configs need
    the reference :class:`CacheSimulator`, which has no bounded-memory
    mode.  ``on_chunk`` is invoked after each batch with the chunk and
    its block-level counts — useful for progress output and for
    observing memory-bounded execution in tests.
    """
    cfg = config if config is not None else CacheConfig.paper_direct_mapped()
    sim = FastSimulator(cfg)
    records = 0
    tele = get_telemetry()
    with tele.span("simulate.fast_stream", cat="simulate"):
        for chunk in iter_chunks(source, chunk_records):
            chunk_counts = sim.feed(chunk.addrs, chunk.sizes)
            records += len(chunk)
            if on_chunk is not None:
                on_chunk(chunk, chunk_counts)
    tele.add("simulate.chunks", sim.chunks_fed)
    return StreamResult(
        config=cfg,
        totals=sim.trace_counts(),
        records=records,
        chunks=sim.chunks_fed,
    )
