"""Driving traces through a cache: the simulator front-end.

:func:`simulate` / :class:`CacheSimulator` consume any iterable of
:class:`~repro.trace.record.TraceRecord` and produce a
:class:`SimulationResult` bundling the statistics and the conflict
matrix.  A ``Modify`` record is treated as a read followed by a write to
the same location (DineroIV's ``-informat d`` behaviour for modify);
``X`` records are skipped, as the paper disables instruction tracing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.conflict import ConflictMatrix
from repro.cache.stats import CacheStats
from repro.trace.record import AccessType, TraceRecord


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    config: CacheConfig
    stats: CacheStats
    conflicts: ConflictMatrix
    #: the cache object (still warm) for residency inspection
    cache: SetAssociativeCache

    def summary(self) -> str:
        """Config line plus the DineroIV-style statistics report."""
        return "\n".join(
            [self.config.describe(), self.stats.summary()]
        )


def attribution_label(record: TraceRecord, mode: str) -> Optional[str]:
    """The attribution key of one record under a given mode.

    - ``"base"``  — the root variable name (``lSoA``), the default;
    - ``"member"``— root plus field names with indices stripped
      (``lSoA.mX``), which separates the per-field series the paper's
      Figure 3 plots for the structure-of-arrays layout.
    """
    if record.var is None:
        return None
    if mode == "base":
        return record.var.base
    if mode == "member":
        fields = record.var.field_names()
        if fields:
            return record.var.base + "." + ".".join(fields)
        return record.var.base
    raise ValueError(f"unknown attribution mode {mode!r}")


class CacheSimulator:
    """Reusable simulator wrapper around one cache instance.

    ``warm`` simulations can call :meth:`feed` repeatedly; statistics
    accumulate until :meth:`result` is taken.  ``attribution`` selects the
    per-variable key granularity (see :func:`attribution_label`).
    """

    def __init__(self, config: CacheConfig, *, attribution: str = "base") -> None:
        self.config = config
        self.cache = SetAssociativeCache(config)
        self.stats = CacheStats(config.n_sets)
        self.conflicts = ConflictMatrix()
        self.attribution = attribution
        self._seen_blocks: set[int] = set()

    def feed(self, records: Iterable[TraceRecord]) -> None:
        """Simulate all records (Modify = read + write)."""
        cache = self.cache
        stats = self.stats
        conflicts = self.conflicts
        seen = self._seen_blocks
        mode = self.attribution
        for record in records:
            if record.op is AccessType.MISC:
                continue
            variable = attribution_label(record, mode)
            function = record.func or None
            # Modify counts as a single dirtying access (cachegrind's
            # convention): the read and write touch the same line, so the
            # hit/miss outcome is decided once.
            is_write = record.op in (AccessType.STORE, AccessType.MODIFY)
            outcome = cache.access(
                record.addr, record.size, is_write, owner=variable
            )
            stats.record_access(is_write, outcome.hit)
            for event in outcome.events:
                compulsory = not event.hit and event.block not in seen
                if event.filled or event.hit:
                    seen.add(event.block)
                stats.record_block(
                    event.set_index,
                    event.hit,
                    variable=variable,
                    function=function,
                    compulsory=compulsory,
                    evicted=event.evicted,
                    writeback=event.writeback,
                )
                if event.evicted:
                    conflicts.record(event.victim_owner, variable)

    def result(self) -> SimulationResult:
        """Snapshot the accumulated statistics and warm cache."""
        return SimulationResult(
            config=self.config,
            stats=self.stats,
            conflicts=self.conflicts,
            cache=self.cache,
        )


def simulate(
    records: Iterable[TraceRecord],
    config: Optional[CacheConfig] = None,
    *,
    attribution: str = "base",
) -> SimulationResult:
    """Simulate a trace against ``config`` (paper's direct-mapped default)."""
    cfg = config if config is not None else CacheConfig.paper_direct_mapped()
    sim = CacheSimulator(cfg, attribution=attribution)
    sim.feed(records)
    return sim.result()
