"""DineroIV-style trace-driven cache simulation.

The paper uses a modified DineroIV that attributes cache statistics to
functions and variables using Gleipnir's trace metadata.  This package
provides that simulator:

- :mod:`repro.cache.config` — cache geometry and policy configuration,
  including the paper's two presets (32 KiB direct-mapped and the
  PowerPC 440 32 KiB/64-way/round-robin cache of Section V.3);
- :mod:`repro.cache.policies` — LRU, FIFO, round-robin (PPC440), random
  and tree-PLRU replacement;
- :mod:`repro.cache.cache` — the set-associative cache core with
  write-back/write-through and write-allocate/no-allocate policies;
- :mod:`repro.cache.stats` — global, per-set, per-variable, per-function
  and per-(variable, set) counters — the data behind Figures 3/4/6/7/10/11;
- :mod:`repro.cache.conflict` — eviction attribution between variables
  ("observe conflicts between program structures");
- :mod:`repro.cache.simulator` — drives a trace through a cache;
- :mod:`repro.cache.hierarchy` — multi-level (L1/L2) simulation;
- :mod:`repro.cache.fastsim` — a vectorized (numpy) direct-mapped fast
  path, cross-validated against the reference simulator.
"""

from repro.cache.config import CacheConfig, WritePolicy, AllocatePolicy
from repro.cache.policies import (
    FIFOPolicy,
    LRUPolicy,
    PLRUTreePolicy,
    RandomPolicy,
    ReplacementPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.cache.cache import AccessOutcome, BlockEvent, SetAssociativeCache
from repro.cache.stats import CacheStats, PerSetCounts
from repro.cache.conflict import ConflictMatrix
from repro.cache.simulator import (
    CacheSimulator,
    SimulationResult,
    attribution_label,
    simulate,
)
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult, simulate_hierarchy
from repro.cache.fastsim import fast_direct_mapped_counts
from repro.cache.threec import ThreeCCounts, ThreeCReport, classify_misses
from repro.cache.split import SplitCacheSimulator, SplitResult, simulate_split
from repro.cache.victim import (
    VictimCacheSimulator,
    VictimResult,
    simulate_with_victim,
)
from repro.cache.prefetch import (
    PrefetchPolicy,
    PrefetchResult,
    PrefetchingSimulator,
    simulate_with_prefetch,
)

__all__ = [
    "CacheConfig",
    "WritePolicy",
    "AllocatePolicy",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
    "PLRUTreePolicy",
    "make_policy",
    "SetAssociativeCache",
    "AccessOutcome",
    "BlockEvent",
    "CacheStats",
    "PerSetCounts",
    "ConflictMatrix",
    "CacheSimulator",
    "SimulationResult",
    "simulate",
    "attribution_label",
    "CacheHierarchy",
    "HierarchyResult",
    "simulate_hierarchy",
    "fast_direct_mapped_counts",
    "ThreeCCounts",
    "ThreeCReport",
    "classify_misses",
    "SplitCacheSimulator",
    "SplitResult",
    "simulate_split",
    "VictimCacheSimulator",
    "VictimResult",
    "simulate_with_victim",
    "PrefetchPolicy",
    "PrefetchResult",
    "PrefetchingSimulator",
    "simulate_with_prefetch",
]
