"""Sequential prefetching (DineroIV's ``-fetch`` policies).

Prefetching interacts directly with the paper's transformations: an
AoS layout turns a structure walk into one sequential stream that a
next-line prefetcher covers almost entirely, while the SoA layout's two
interleaved streams defeat a single-stream prefetcher less gracefully —
another axis of the design space the trace-driven tooling lets a user
explore without touching code.

Policies (DineroIV naming):

- ``demand``   — no prefetching (the default everywhere else);
- ``always``   — every demand access also fetches the *next* block;
- ``miss``     — prefetch the next block only on a demand miss;
- ``tagged``   — prefetch on a miss *or* on the first demand hit to a
  prefetched block (Gindele's tagged prefetch; the standard fix for
  ``miss``'s stop-start behaviour on streams).

Prefetch traffic is tracked separately (``prefetches``,
``useful_prefetches``); demand statistics keep their usual meaning, so
results compare directly against the plain simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.simulator import attribution_label
from repro.cache.stats import CacheStats
from repro.trace.record import AccessType, TraceRecord


class PrefetchPolicy(str, enum.Enum):
    """When to issue a next-block prefetch."""

    DEMAND = "demand"
    ALWAYS = "always"
    MISS = "miss"
    TAGGED = "tagged"


@dataclass
class PrefetchResult:
    """Results of a prefetching simulation."""

    config: CacheConfig
    policy: PrefetchPolicy
    stats: CacheStats
    prefetches: int
    useful_prefetches: int

    @property
    def accuracy(self) -> float:
        """Fraction of prefetched blocks that saw a demand hit."""
        return (
            self.useful_prefetches / self.prefetches if self.prefetches else 0.0
        )

    def summary(self) -> str:
        """Demand report plus prefetch traffic and accuracy."""
        return "\n".join(
            [
                f"{self.config.describe()} + {self.policy.value} prefetch",
                self.stats.summary(),
                f"prefetches      : {self.prefetches} "
                f"(useful {self.useful_prefetches}, "
                f"accuracy {self.accuracy:.1%})",
            ]
        )


class PrefetchingSimulator:
    """Set-associative cache with sequential one-block-lookahead prefetch."""

    def __init__(
        self,
        config: CacheConfig,
        policy: PrefetchPolicy = PrefetchPolicy.TAGGED,
        *,
        attribution: str = "base",
    ) -> None:
        self.config = config
        self.policy = PrefetchPolicy(policy)
        self.cache = SetAssociativeCache(config)
        self.stats = CacheStats(config.n_sets)
        self.attribution = attribution
        self.prefetches = 0
        self.useful_prefetches = 0
        #: blocks brought in by prefetch and not yet demand-touched
        self._tagged: set[int] = set()
        self._seen: set[int] = set()

    def _prefetch(self, block: int) -> None:
        target = block + 1
        cfg = self.config
        set_index = target & (cfg.n_sets - 1)
        tag = target >> cfg.index_bits
        if self.cache._find_way(set_index, tag) is not None:
            return  # already resident: no traffic
        self.cache.access(target * cfg.block_size, 1, False, owner="<prefetch>")
        self.prefetches += 1
        self._tagged.add(target)

    def feed(self, records: Iterable[TraceRecord]) -> None:
        """Simulate demand accesses, issuing prefetches per the policy."""
        policy = self.policy
        for record in records:
            if record.op is AccessType.MISC:
                continue
            label = attribution_label(record, self.attribution)
            is_write = record.op in (AccessType.STORE, AccessType.MODIFY)
            outcome = self.cache.access(
                record.addr, record.size, is_write, owner=label
            )
            self.stats.record_access(is_write, outcome.hit)
            for event in outcome.events:
                first_touch_of_prefetched = event.block in self._tagged
                if first_touch_of_prefetched:
                    self._tagged.discard(event.block)
                    if event.hit:
                        self.useful_prefetches += 1
                compulsory = (
                    not event.hit and event.block not in self._seen
                )
                if event.filled or event.hit:
                    self._seen.add(event.block)
                self.stats.record_block(
                    event.set_index,
                    event.hit,
                    variable=label,
                    function=record.func or None,
                    compulsory=compulsory,
                    evicted=event.evicted,
                    writeback=event.writeback,
                )
                want = (
                    policy is PrefetchPolicy.ALWAYS
                    or (policy is PrefetchPolicy.MISS and not event.hit)
                    or (
                        policy is PrefetchPolicy.TAGGED
                        and (not event.hit or first_touch_of_prefetched)
                    )
                )
                if want:
                    self._prefetch(event.block)

    def result(self) -> PrefetchResult:
        """Snapshot demand statistics plus prefetch counters."""
        return PrefetchResult(
            config=self.config,
            policy=self.policy,
            stats=self.stats,
            prefetches=self.prefetches,
            useful_prefetches=self.useful_prefetches,
        )


def simulate_with_prefetch(
    records: Iterable[TraceRecord],
    config: CacheConfig,
    policy: PrefetchPolicy = PrefetchPolicy.TAGGED,
    *,
    attribution: str = "base",
) -> PrefetchResult:
    """One-shot prefetching simulation."""
    sim = PrefetchingSimulator(config, policy, attribution=attribution)
    sim.feed(records)
    return sim.result()
