"""Cache statistics: global, per-set, per-variable, per-function.

The modified DineroIV of the paper "tracks cache statistics that pertain
to function and variable level accuracy"; its gnuplot figures plot hits
and misses *per cache set per variable*.  :class:`CacheStats` accumulates
exactly those dimensions:

- global demand counters (reads/writes x hits/misses, write-backs,
  evictions, compulsory/capacity-or-conflict split);
- ``per_set`` — numpy arrays of hits/misses indexed by set;
- ``by_variable`` / ``by_function`` — totals per label;
- ``per_var_set`` — per-variable per-set arrays (the figure series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class PerSetCounts:
    """Hits/misses per cache set for one label (or overall)."""

    hits: np.ndarray
    misses: np.ndarray

    @classmethod
    def zeros(cls, n_sets: int) -> "PerSetCounts":
        return cls(
            hits=np.zeros(n_sets, dtype=np.int64),
            misses=np.zeros(n_sets, dtype=np.int64),
        )

    @property
    def accesses(self) -> np.ndarray:
        return self.hits + self.misses

    def nonzero_sets(self) -> np.ndarray:
        """Indices of sets that saw any traffic."""
        return np.nonzero(self.accesses)[0]

    def as_rows(self) -> Tuple[Tuple[int, int, int], ...]:
        """(set, hits, misses) rows for sets with traffic."""
        return tuple(
            (int(s), int(self.hits[s]), int(self.misses[s]))
            for s in self.nonzero_sets()
        )


@dataclass
class LabelCounts:
    """Scalar hit/miss counters for one attribution label."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class CacheStats:
    """All counters for one simulated cache level."""

    n_sets: int
    #: demand access counters (per CPU access, not per block)
    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    #: block-level event counters
    block_hits: int = 0
    block_misses: int = 0
    compulsory_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    per_set: PerSetCounts = field(init=False)
    by_variable: Dict[str, LabelCounts] = field(default_factory=dict)
    by_function: Dict[str, LabelCounts] = field(default_factory=dict)
    per_var_set: Dict[str, PerSetCounts] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.per_set = PerSetCounts.zeros(self.n_sets)

    # -- accumulation ---------------------------------------------------------

    def record_access(self, is_write: bool, all_hit: bool) -> None:
        """Count one demand access (hit only when every block hit)."""
        if is_write:
            self.writes += 1
            if all_hit:
                self.write_hits += 1
            else:
                self.write_misses += 1
        else:
            self.reads += 1
            if all_hit:
                self.read_hits += 1
            else:
                self.read_misses += 1

    def record_block(
        self,
        set_index: int,
        hit: bool,
        *,
        variable: Optional[str] = None,
        function: Optional[str] = None,
        compulsory: bool = False,
        evicted: bool = False,
        writeback: bool = False,
    ) -> None:
        """Count one block-level event, attributing it to the given
        set, variable and function."""
        if hit:
            self.block_hits += 1
            self.per_set.hits[set_index] += 1
        else:
            self.block_misses += 1
            self.per_set.misses[set_index] += 1
            if compulsory:
                self.compulsory_misses += 1
        if evicted:
            self.evictions += 1
        if writeback:
            self.writebacks += 1
        if variable is not None:
            counts = self.by_variable.setdefault(variable, LabelCounts())
            var_sets = self.per_var_set.get(variable)
            if var_sets is None:
                var_sets = self.per_var_set.setdefault(
                    variable, PerSetCounts.zeros(self.n_sets)
                )
            if hit:
                counts.hits += 1
                var_sets.hits[set_index] += 1
            else:
                counts.misses += 1
                var_sets.misses[set_index] += 1
        if function is not None:
            fcounts = self.by_function.setdefault(function, LabelCounts())
            if hit:
                fcounts.hits += 1
            else:
                fcounts.misses += 1

    # -- queries ---------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def conflict_or_capacity_misses(self) -> int:
        """Non-compulsory block misses (DineroIV folds these together
        unless an infinite-cache pass separates them)."""
        return self.block_misses - self.compulsory_misses

    def summary(self) -> str:
        """DineroIV-flavoured text report."""
        lines = [
            f"demand accesses : {self.accesses}",
            f"  reads         : {self.reads} "
            f"(hits {self.read_hits}, misses {self.read_misses})",
            f"  writes        : {self.writes} "
            f"(hits {self.write_hits}, misses {self.write_misses})",
            f"demand miss rate: {self.miss_ratio:.4f}",
            f"block hits      : {self.block_hits}",
            f"block misses    : {self.block_misses} "
            f"(compulsory {self.compulsory_misses}, "
            f"conflict/capacity {self.conflict_or_capacity_misses})",
            f"evictions       : {self.evictions}",
            f"write-backs     : {self.writebacks}",
        ]
        if self.by_variable:
            lines.append("per-variable:")
            for name in sorted(
                self.by_variable, key=lambda n: -self.by_variable[n].accesses
            ):
                c = self.by_variable[name]
                lines.append(
                    f"  {name:<28s} accesses {c.accesses:>8d}  "
                    f"hits {c.hits:>8d}  misses {c.misses:>6d}  "
                    f"miss-rate {c.miss_ratio:.4f}"
                )
        if self.by_function:
            lines.append("per-function:")
            for name in sorted(
                self.by_function, key=lambda n: -self.by_function[n].accesses
            ):
                c = self.by_function[name]
                lines.append(
                    f"  {name:<28s} accesses {c.accesses:>8d}  "
                    f"hits {c.hits:>8d}  misses {c.misses:>6d}"
                )
        return "\n".join(lines)
