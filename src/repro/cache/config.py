"""Cache configuration: geometry, write policies, replacement policy.

Geometry follows DineroIV conventions: total ``size`` in bytes,
``block_size`` bytes per line, ``associativity`` ways per set (0 selects a
fully associative cache).  All three must be powers of two and consistent
(``size = sets * associativity * block_size``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CacheConfigError


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class WritePolicy(enum.Enum):
    """What a write hit does to lower memory."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


class AllocatePolicy(enum.Enum):
    """What a write miss does."""

    WRITE_ALLOCATE = "write-allocate"
    NO_WRITE_ALLOCATE = "no-write-allocate"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    Parameters
    ----------
    size:
        Total capacity in bytes.
    block_size:
        Line size in bytes.
    associativity:
        Ways per set; ``0`` means fully associative.
    policy:
        Replacement policy name: ``lru`` (default), ``fifo``,
        ``round-robin``, ``random``, ``plru``.
    write_policy / allocate_policy:
        Write-back + write-allocate by default, like DineroIV's defaults.
    name:
        Label used in reports (``L1``...).
    seed:
        RNG seed for the random policy (ignored otherwise).
    """

    size: int
    block_size: int
    associativity: int = 1
    policy: str = "lru"
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    allocate_policy: AllocatePolicy = AllocatePolicy.WRITE_ALLOCATE
    name: str = "L1"
    seed: int = 0

    def __post_init__(self) -> None:
        if not _is_pow2(self.size):
            raise CacheConfigError(f"cache size must be a power of two, got {self.size}")
        if not _is_pow2(self.block_size):
            raise CacheConfigError(
                f"block size must be a power of two, got {self.block_size}"
            )
        if self.block_size > self.size:
            raise CacheConfigError("block size cannot exceed cache size")
        assoc = self.associativity
        if assoc < 0:
            raise CacheConfigError(f"associativity must be >= 0, got {assoc}")
        if assoc:
            if not _is_pow2(assoc):
                raise CacheConfigError(
                    f"associativity must be a power of two, got {assoc}"
                )
            blocks = self.size // self.block_size
            if assoc > blocks:
                raise CacheConfigError(
                    f"associativity {assoc} exceeds total blocks {blocks}"
                )
        # Derived geometry is consulted on every simulated access, so it is
        # computed once here (the dataclass is frozen; use object.__setattr__).
        n_blocks = self.size // self.block_size
        ways = self.associativity if self.associativity else n_blocks
        n_sets = n_blocks // ways
        object.__setattr__(self, "_n_blocks", n_blocks)
        object.__setattr__(self, "_ways", ways)
        object.__setattr__(self, "_n_sets", n_sets)
        object.__setattr__(self, "_offset_bits", self.block_size.bit_length() - 1)
        object.__setattr__(self, "_index_bits", n_sets.bit_length() - 1)

    # -- derived geometry ----------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Total number of lines in the cache."""
        return self._n_blocks

    @property
    def ways(self) -> int:
        """Effective ways per set (fully associative -> all blocks)."""
        return self._ways

    @property
    def n_sets(self) -> int:
        """Number of sets (``n_blocks / ways``)."""
        return self._n_sets

    @property
    def offset_bits(self) -> int:
        """Bits of the block offset within an address."""
        return self._offset_bits

    @property
    def index_bits(self) -> int:
        """Bits of the set index within an address."""
        return self._index_bits

    def block_of(self, addr: int) -> int:
        """Block (line) number of an address."""
        return addr >> self._offset_bits

    def set_of(self, addr: int) -> int:
        """Set index of an address."""
        return (addr >> self._offset_bits) & (self._n_sets - 1)

    def tag_of(self, addr: int) -> int:
        """Tag bits of an address (above offset and index bits)."""
        return addr >> (self._offset_bits + self._index_bits)

    def describe(self) -> str:
        """A DineroIV-style one-line description."""
        assoc = "fully-assoc" if self.associativity == 0 else f"{self.ways}-way"
        return (
            f"{self.name}: {self.size} bytes, {self.block_size} bytes/block, "
            f"{assoc}, {self.n_sets} sets, {self.policy}, "
            f"{self.write_policy.value}, {self.allocate_policy.value}"
        )

    # -- presets used by the paper's evaluation ------------------------------

    @classmethod
    def paper_direct_mapped(cls) -> "CacheConfig":
        """Figures 3/4/6/7: 32 KiB, 32-byte blocks, direct mapped."""
        return cls(size=32 * 1024, block_size=32, associativity=1, policy="lru")

    @classmethod
    def ppc440(cls) -> "CacheConfig":
        """Figures 10/11: the PowerPC 440 data cache — 32 KiB, 32-byte
        lines, 64 ways per set (16 sets), round-robin eviction."""
        return cls(
            size=32 * 1024,
            block_size=32,
            associativity=64,
            policy="round-robin",
            name="PPC440-L1D",
        )
