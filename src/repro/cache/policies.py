"""Replacement policies.

Each policy manages opaque per-set state.  The cache consults the policy
only when a set is full; invalid ways are always filled first (in way
order), matching hardware fill behaviour and DineroIV.

The round-robin policy models the PowerPC 440's scheme the paper relies on
for its set-pinning experiment: a per-set victim pointer that advances by
one on every replacement, independent of hits.
"""

from __future__ import annotations

import random
from typing import Any, List

from repro.errors import CacheConfigError


class ReplacementPolicy:
    """Interface: per-set metadata plus victim selection."""

    name = "abstract"

    def new_set(self, ways: int) -> Any:
        """Create fresh metadata for one set of ``ways`` ways."""
        raise NotImplementedError

    def on_hit(self, state: Any, way: int) -> None:
        """Called on every hit to ``way``."""

    def on_fill(self, state: Any, way: int) -> None:
        """Called when ``way`` is (re)filled with a new block."""

    def victim(self, state: Any, ways: int) -> int:
        """Pick the way to evict from a full set (may update state)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least recently used — true LRU with a recency list per set.

    State: list of way numbers, most recently used last.
    """

    name = "lru"

    def new_set(self, ways: int) -> List[int]:
        return []

    def on_hit(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.append(way)

    def on_fill(self, state: List[int], way: int) -> None:
        if way in state:
            state.remove(way)
        state.append(way)

    def victim(self, state: List[int], ways: int) -> int:
        return state[0]


class FIFOPolicy(ReplacementPolicy):
    """First in, first out — insertion order queue; hits don't promote."""

    name = "fifo"

    def new_set(self, ways: int) -> List[int]:
        return []

    def on_fill(self, state: List[int], way: int) -> None:
        if way in state:
            state.remove(way)
        state.append(way)

    def victim(self, state: List[int], ways: int) -> int:
        return state[0]


class RoundRobinPolicy(ReplacementPolicy):
    """PPC440-style round robin: per-set victim pointer, +1 per replacement.

    State: single-element list holding the pointer (mutable int box).
    """

    name = "round-robin"

    def new_set(self, ways: int) -> List[int]:
        return [0]

    def victim(self, state: List[int], ways: int) -> int:
        way = state[0]
        state[0] = (way + 1) % ways
        return way


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (deterministic under ``seed``)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def new_set(self, ways: int) -> None:
        return None

    def victim(self, state: None, ways: int) -> int:
        return self._rng.randrange(ways)


class PLRUTreePolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU (the common hardware LRU approximation).

    State: list of ``ways - 1`` tree bits.  Each access flips the bits on
    its root-to-leaf path to point *away* from the touched way; the victim
    is found by following the bits.  Requires power-of-two ways.
    """

    name = "plru"

    def new_set(self, ways: int) -> List[int]:
        if ways & (ways - 1):
            raise CacheConfigError("plru requires power-of-two associativity")
        return [0] * max(ways - 1, 0)

    def _touch(self, state: List[int], way: int, ways: int) -> None:
        if ways == 1:
            return
        node = 0
        span = ways
        while span > 1:
            half = span // 2
            go_right = (way % span) >= half
            # Point the bit away from the touched half.
            state[node] = 0 if go_right else 1
            node = 2 * node + (2 if go_right else 1)
            span = half

    def on_hit(self, state: List[int], way: int) -> None:
        self._ways_cache = len(state) + 1
        self._touch(state, way, len(state) + 1)

    def on_fill(self, state: List[int], way: int) -> None:
        self._touch(state, way, len(state) + 1)

    def victim(self, state: List[int], ways: int) -> int:
        if ways == 1:
            return 0
        node = 0
        way = 0
        span = ways
        while span > 1:
            half = span // 2
            bit = state[node]
            if bit:  # bit points right -> victim on the right half
                way += half
                node = 2 * node + 2
            else:
                node = 2 * node + 1
            span = half
        return way


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "round-robin": RoundRobinPolicy,
    "rr": RoundRobinPolicy,
    "random": RandomPolicy,
    "plru": PLRUTreePolicy,
}


def make_policy(name: str, *, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by name (see :data:`_POLICIES` keys)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise CacheConfigError(
            f"unknown replacement policy {name!r}; choose from {sorted(set(_POLICIES))}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(seed)
    return cls()
