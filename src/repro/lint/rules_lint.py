"""Lint rule files: parse diagnostics + symbolic soundness proof.

Four layers, cheapest first:

1. *parse* — :func:`parse_rules_collect` gathers every structural and
   semantic parse error (coded at the raise sites);
2. *semantic* — dead/identity rules, shadowed patterns, cross-checks
   against an optional program model;
3. *prove* — the symbolic layout proof (:mod:`repro.lint.symbolic`)
   establishing the oracle's invariants over the whole element domain;
4. *sets* — static cache-set footprint analysis when a
   :class:`~repro.cache.config.CacheConfig` is supplied.

Each layer runs under an ``obsv`` phase timer so ``tdst --profile lint``
shows where analysis time goes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.ctypes_model.parser import DeclarationSet
from repro.lint.diagnostics import Diagnostic, LintReport, from_rule_error
from repro.lint.symbolic import (
    PlannedAllocation,
    identity_image,
    plan_allocations,
    prove_rule,
    rule_image,
)
from repro.obsv import get_telemetry
from repro.transform.engine import ARENA_BASE
from repro.transform.rule_parser import parse_rules_collect
from repro.transform.rules import Rule, RuleSet


def lint_rules_text(
    text: str,
    *,
    path: Optional[str] = None,
    model: Optional[DeclarationSet] = None,
    cache_config: Optional[CacheConfig] = None,
    arena_base: int = ARENA_BASE,
) -> LintReport:
    """Lint one rule file's source text.  Never raises on bad input."""
    tele = get_telemetry()
    report = LintReport()
    report.note_file(path)

    with tele.phase("lint.parse", file=path or "<input>"):
        rules, errors = parse_rules_collect(text)
        for exc in errors:
            report.add(from_rule_error(exc, path))

    with tele.phase("lint.semantic", file=path or "<input>"):
        _check_shadowing(rules, report, path)
        if model is not None:
            _check_model(rules, model, report, path)

    with tele.phase("lint.prove", file=path or "<input>"):
        planned, alloc_diags = plan_allocations(rules, arena_base)
        for diag in alloc_diags:
            report.add(diag.with_path(path) if path else diag)
        images = {}
        for rule in rules:
            image = rule_image(rule)
            if image is None:
                continue
            images[rule.name] = image
            for diag in prove_rule(image, planned, path=path):
                report.add(diag)
            if identity_image(image):
                report.add(
                    Diagnostic(
                        code="TDST011",
                        message=(
                            f"{rule.name}: maps every element to its original "
                            "offset — the transformation is an identity"
                        ),
                        path=path,
                        line=rule.source_line,
                        hint="remove the rule or change the out layout",
                    )
                )

    if cache_config is not None:
        from repro.lint.setconflict import lint_set_conflicts

        with tele.phase("lint.sets", file=path or "<input>"):
            lint_set_conflicts(
                rules,
                cache_config,
                report,
                path=path,
                arena_base=arena_base,
                images=images,
                planned=planned,
            )

    for severity, count in report.counts().items():
        if count:
            tele.add(f"lint.diagnostics.{severity}", count)
    return report


def _check_shadowing(rules: RuleSet, report: LintReport, path: Optional[str]) -> None:
    """Pattern rules never fire for names an exact rule already covers
    (the engine routes exact-name matches first) — warn on the overlap."""
    exact = [r for r in rules if not r.is_pattern]
    patterns = [r for r in rules if r.is_pattern]
    for pat in patterns:
        for r in exact:
            if pat.matches(r.in_name):
                report.add(
                    Diagnostic(
                        code="TDST012",
                        message=(
                            f"{pat.name}: pattern also matches {r.in_name!r}, "
                            f"but the exact rule {r.name} takes precedence — "
                            "the pattern never fires for that variable"
                        ),
                        path=path,
                        line=pat.source_line,
                    )
                )


def _check_model(
    rules: RuleSet,
    model: DeclarationSet,
    report: LintReport,
    path: Optional[str],
) -> None:
    """Resolve ``in:`` names and type-check field paths against the
    declared program layout."""
    for rule in rules:
        if rule.is_pattern:
            continue
        declared = model.variables.get(rule.in_name)
        if declared is None:
            report.add(
                Diagnostic(
                    code="TDST013",
                    message=(
                        f"{rule.name}: variable {rule.in_name!r} is not "
                        "declared in the program model"
                    ),
                    path=path,
                    line=rule.source_line,
                    hint=(
                        "declared variables: "
                        + ", ".join(sorted(model.variables)[:8])
                    ),
                )
            )
            continue
        in_type = getattr(rule, "in_type", None)
        if in_type is None:
            continue
        if declared.size != in_type.size:
            report.add(
                Diagnostic(
                    code="TDST013",
                    message=(
                        f"{rule.name}: rule declares {rule.in_name!r} as "
                        f"{in_type.c_name()} ({in_type.size} bytes) but the "
                        f"program model declares {declared.c_name()} "
                        f"({declared.size} bytes)"
                    ),
                    path=path,
                    line=rule.source_line,
                )
            )
            continue
        # Field paths must resolve to the same offset and width, or the
        # trace's original addresses would be reinterpreted wrongly.
        declared_leaves = {
            tuple(str(e) for e in elements): (offset, leaf.size)
            for elements, offset, leaf in declared.iter_leaves()
        }
        for elements, offset, leaf in in_type.iter_leaves():
            key = tuple(str(e) for e in elements)
            got = declared_leaves.get(key)
            if got != (offset, leaf.size):
                where = "".join(key) or "<whole>"
                detail = (
                    "is absent from the declared type"
                    if got is None
                    else f"sits at offset {got[0]} (size {got[1]}) there, "
                    f"not {offset} (size {leaf.size})"
                )
                report.add(
                    Diagnostic(
                        code="TDST013",
                        message=(
                            f"{rule.name}: path {rule.in_name}{where} {detail}"
                        ),
                        path=path,
                        line=rule.source_line,
                    )
                )
                break
