"""Lint standalone C declaration files (program layout models).

Beyond parseability (TDST002) this reports the layout facts a
transformation author wants before writing rules: internal/trailing
padding per struct (TDST014, with the alignment-sorted reorder that
would shrink it as the fix-it hint) and packed/under-aligned members
(TDST015) — DINAMITE-style compile-time layout feedback.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ctypes_model.parser import DeclarationSet, parse_declarations
from repro.ctypes_model.types import ArrayType, CType, StructType, UnionType
from repro.errors import DeclarationSyntaxError
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.obsv import get_telemetry


def lint_layout_text(
    text: str, *, path: Optional[str] = None
) -> Tuple[LintReport, Optional[DeclarationSet]]:
    """Lint one declaration file.  Returns the report and, when the file
    parses, the declaration set (usable as a rule-lint program model)."""
    tele = get_telemetry()
    report = LintReport()
    report.note_file(path)
    decls: Optional[DeclarationSet] = None
    with tele.phase("lint.layout", file=path or "<input>"):
        try:
            decls = parse_declarations(text)
        except DeclarationSyntaxError as exc:
            message = str(exc)
            if exc.line is not None and message.startswith(f"line {exc.line}: "):
                message = message[len(f"line {exc.line}: ") :]
            report.add(
                Diagnostic(
                    code="TDST002", message=message, path=path, line=exc.line
                )
            )
        if decls is not None:
            if not decls.structs and not decls.variables:
                report.add(
                    Diagnostic(
                        code="TDST017",
                        message="file contains no declarations",
                        path=path,
                    )
                )
            for tag, ctype in decls.structs.items():
                _check_struct(tag, ctype, report, path)
    for severity, count in report.counts().items():
        if count:
            tele.add(f"lint.diagnostics.{severity}", count)
    return report, decls


def struct_padding(struct: StructType) -> int:
    """Total padding bytes (internal + trailing) in one struct layout."""
    occupied = sum(f.ctype.size for f in struct.fields)
    return struct.size - occupied


def packed_size(struct: StructType) -> int:
    """The size the same members would occupy if greedily re-ordered by
    decreasing alignment (the classic padding-minimising layout)."""
    members = sorted(
        struct.fields, key=lambda f: (-f.ctype.alignment, -f.ctype.size)
    )
    cursor = 0
    alignment = 1
    for f in members:
        a = max(f.ctype.alignment, 1)
        alignment = max(alignment, a)
        cursor = (cursor + a - 1) // a * a + f.ctype.size
    return (cursor + alignment - 1) // alignment * alignment


def _check_struct(
    tag: str, ctype: CType, report: LintReport, path: Optional[str]
) -> None:
    if not isinstance(ctype, StructType) or not ctype.fields:
        return
    padding = struct_padding(ctype)
    if padding <= 0:
        return
    better = packed_size(ctype)
    hint = None
    if better < ctype.size:
        order = ", ".join(
            f.name
            for f in sorted(
                ctype.fields, key=lambda f: (-f.ctype.alignment, -f.ctype.size)
            )
        )
        hint = (
            f"reordering members by decreasing alignment ({order}) "
            f"shrinks the struct to {better} bytes"
        )
    report.add(
        Diagnostic(
            code="TDST014",
            message=(
                f"struct {tag!r} contains {padding} byte(s) of padding "
                f"(size {ctype.size})"
            ),
            path=path,
            hint=hint,
        )
    )
