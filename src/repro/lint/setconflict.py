"""Static cache-set analysis: predict T3 pinning and set conflicts.

The dynamic pipeline measures set behaviour by simulating a trace
(:mod:`repro.analysis.per_set`, :mod:`repro.cache.conflict`).  This is
its static analogue: the symbolic rule image (every translated element's
byte interval, at the arena base the engine would assign) is folded
through :meth:`CacheConfig.set_of` to obtain each out allocation's *set
footprint* — which sets it touches and how many distinct cache lines it
puts in each.

Two products:

- **pinning** (TDST030, info): a stride formula whose image concentrates
  into fewer sets than a contiguous layout of the same bytes would — the
  paper's T3 effect, predicted before any trace exists;
- **conflict** (TDST031, warning): two allocations whose footprints
  overlap on some set with more combined lines than the set has ways —
  the static analogue of a hot eviction-attribution cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.symbolic import (
    PlannedAllocation,
    RuleImage,
    plan_allocations,
    rule_image,
)
from repro.transform.engine import ARENA_BASE
from repro.transform.rules import RuleSet


@dataclass
class SetFootprint:
    """Which cache sets one allocation's *touched* bytes land in."""

    name: str
    base: int
    size: int
    #: set index -> number of distinct cache lines this variable maps there
    lines_per_set: Dict[int, int] = field(default_factory=dict)

    @property
    def sets(self) -> Tuple[int, ...]:
        """The touched set indices, ascending."""
        return tuple(sorted(self.lines_per_set))

    @property
    def total_lines(self) -> int:
        return sum(self.lines_per_set.values())

    def contiguous_sets(self, config: CacheConfig) -> int:
        """How many sets a *contiguous* image of the same bytes would
        touch — the yardstick for detecting pinning."""
        blocks = max(1, -(-self.size // config.block_size))
        return min(config.n_sets, blocks)

    def pinned(self, config: CacheConfig) -> bool:
        """True when the image concentrates into strictly fewer sets than
        its contiguous equivalent (the T3 set-pinning signature)."""
        return 0 < len(self.lines_per_set) < self.contiguous_sets(config)


def set_footprints(
    rules: RuleSet,
    config: CacheConfig,
    *,
    arena_base: int = ARENA_BASE,
    images: Optional[Dict[str, RuleImage]] = None,
    planned: Optional[Dict[str, PlannedAllocation]] = None,
) -> Dict[str, SetFootprint]:
    """Per-allocation set footprints of every statically mapped element.

    Only bytes the rules actually map are counted (a stride rule's out
    array is mostly holes — exactly why it pins sets), so the footprint
    matches the sets a trace touching every element would activate.
    """
    if planned is None:
        planned, _ = plan_allocations(rules, arena_base)
    if images is None:
        images = {}
        for rule in rules:
            image = rule_image(rule)
            if image is not None:
                images[rule.name] = image

    blocks: Dict[str, set] = {}
    for image in images.values():
        for interval in list(image.targets) + list(image.inserts):
            alloc = planned.get(interval.alloc)
            if alloc is None:
                continue
            lo = alloc.base + interval.offset
            hi = lo + max(interval.size, 1) - 1
            touched = blocks.setdefault(interval.alloc, set())
            for block in range(lo // config.block_size, hi // config.block_size + 1):
                touched.add(block)

    footprints: Dict[str, SetFootprint] = {}
    for name, touched in blocks.items():
        alloc = planned[name]
        fp = SetFootprint(name, alloc.base, alloc.size)
        for block in touched:
            index = config.set_of(block * config.block_size)
            fp.lines_per_set[index] = fp.lines_per_set.get(index, 0) + 1
        footprints[name] = fp
    return footprints


def predicted_conflicts(
    footprints: Dict[str, SetFootprint], config: CacheConfig
) -> List[Tuple[str, str, List[int]]]:
    """Pairs of allocations that overfill some set together.

    A set is *overfilled* when the two footprints' combined distinct
    lines exceed the associativity — a contention the dynamic
    eviction-attribution matrix would show as a hot off-diagonal cell.
    """
    conflicts: List[Tuple[str, str, List[int]]] = []
    names = sorted(footprints)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            fa, fb = footprints[a], footprints[b]
            shared = [
                s
                for s in fa.lines_per_set
                if s in fb.lines_per_set
                and fa.lines_per_set[s] + fb.lines_per_set[s] > config.ways
            ]
            if shared:
                conflicts.append((a, b, sorted(shared)))
    return conflicts


def lint_set_conflicts(
    rules: RuleSet,
    config: CacheConfig,
    report: LintReport,
    *,
    path: Optional[str] = None,
    arena_base: int = ARENA_BASE,
    images: Optional[Dict[str, RuleImage]] = None,
    planned: Optional[Dict[str, PlannedAllocation]] = None,
) -> Dict[str, SetFootprint]:
    """Run the static set analysis and add TDST030/TDST031 findings."""
    footprints = set_footprints(
        rules, config, arena_base=arena_base, images=images, planned=planned
    )
    for name in sorted(footprints):
        fp = footprints[name]
        if fp.pinned(config):
            sets = fp.sets
            listed = ", ".join(str(s) for s in sets[:8])
            if len(sets) > 8:
                listed += ", ..."
            report.add(
                Diagnostic(
                    code="TDST030",
                    message=(
                        f"{name!r} pins {len(sets)} of {config.n_sets} cache "
                        f"sets ({listed}); a contiguous layout of the same "
                        f"bytes would spread over "
                        f"{fp.contiguous_sets(config)} sets"
                    ),
                    path=path,
                )
            )
    for a, b, shared in predicted_conflicts(footprints, config):
        listed = ", ".join(str(s) for s in shared[:8])
        if len(shared) > 8:
            listed += ", ..."
        report.add(
            Diagnostic(
                code="TDST031",
                message=(
                    f"{a!r} and {b!r} together exceed the {config.ways}-way "
                    f"associativity on {len(shared)} shared set(s) "
                    f"({listed}) — expect cross-evictions"
                ),
                path=path,
                hint="displace one of the two variables to shift its sets",
            )
        )
    return footprints
