"""Static analysis of the three declarative inputs — no trace needed.

``tdst lint`` (and the mandatory campaign pre-flight) prove or refute
rule validity, layout legality and T3 set-pinning effects *before* a
single trace record is generated — the paper explores layouts without
recompiling; this pass explores rule files without replaying:

- :mod:`~repro.lint.diagnostics` — stable ``TDSTnnn`` codes, severity,
  source span, fix-it hints (see ``docs/LINTING.md`` for the catalogue);
- :mod:`~repro.lint.emit` — text / JSON / SARIF 2.1.0 renderers;
- :mod:`~repro.lint.rules_lint` — rule files: collected parse errors,
  dead/shadowed rules, program-model cross-check, and the symbolic
  layout proof establishing the dynamic oracle's invariants
  (injective, in-bounds, non-overlapping, ABI-aligned) over the whole
  element domain;
- :mod:`~repro.lint.layout_lint` — declaration files: padding and
  alignment feedback;
- :mod:`~repro.lint.spec_lint` — campaign TOML: structure, cache
  geometry, dangling ``file:`` refs, duplicate grid points;
- :mod:`~repro.lint.setconflict` — static cache-set footprints,
  T3 pinning prediction and pairwise conflict warnings;
- :mod:`~repro.lint.cost` — the static cost model: sound miss-count
  intervals per cache geometry from a one-pass trace digest, plus
  rule-chain proofs (commutativity, idempotence, domination) —
  ``tdst lint --cost --trace <t>`` and the advisor's pruning pass;
- :mod:`~repro.lint.runner` — kind dispatch and multi-file runs.
"""

from repro.lint.cost import (
    ChainProof,
    CostReport,
    MissInterval,
    evaluate_rules,
    lint_cost,
)
from repro.lint.diagnostics import (
    CODES,
    Diagnostic,
    LintReport,
    from_rule_error,
    summarize,
)
from repro.lint.emit import render, render_text, to_json, to_sarif, write_report
from repro.lint.layout_lint import lint_layout_text, packed_size, struct_padding
from repro.lint.rules_lint import lint_rules_text
from repro.lint.runner import detect_kind, lint_file, lint_paths
from repro.lint.setconflict import (
    SetFootprint,
    lint_set_conflicts,
    predicted_conflicts,
    set_footprints,
)
from repro.lint.spec_lint import lint_spec_text
from repro.lint.symbolic import (
    PlannedAllocation,
    RuleImage,
    plan_allocations,
    prove_rule,
    rule_image,
)

__all__ = [
    "CODES",
    "ChainProof",
    "CostReport",
    "Diagnostic",
    "LintReport",
    "MissInterval",
    "evaluate_rules",
    "lint_cost",
    "from_rule_error",
    "summarize",
    "render",
    "render_text",
    "to_json",
    "to_sarif",
    "write_report",
    "lint_rules_text",
    "lint_layout_text",
    "lint_spec_text",
    "lint_file",
    "lint_paths",
    "detect_kind",
    "struct_padding",
    "packed_size",
    "SetFootprint",
    "set_footprints",
    "predicted_conflicts",
    "lint_set_conflicts",
    "PlannedAllocation",
    "RuleImage",
    "plan_allocations",
    "prove_rule",
    "rule_image",
]
