"""Diagnostic model for the static analyzer: stable codes, severities, spans.

Findings are *data*, not exceptions: a lint run over a corrupt input
still completes and reports everything it saw.  Every diagnostic carries
a stable ``TDSTnnn`` code so CI annotations, SARIF consumers and the
test-suite can match on identity rather than message wording.

The catalogue below is the single source of truth; ``docs/LINTING.md``
documents one example per code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: severity ranks, most severe first (used for sorting and exit codes)
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class CodeInfo:
    """Catalogue entry for one diagnostic code."""

    code: str
    severity: str
    title: str


#: The full diagnostic-code catalogue.  Codes are append-only: once
#: published a code never changes meaning (SARIF baselining relies on it).
CODES: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        # -- rule-file structure and parsing (00x) -------------------------
        CodeInfo("TDST001", "error", "rule file section structure invalid"),
        CodeInfo("TDST002", "error", "C declaration failed to parse"),
        CodeInfo("TDST003", "error", "index formula syntax invalid"),
        CodeInfo("TDST004", "error", "inject clause invalid"),
        # -- rule semantics (00x-01x) --------------------------------------
        CodeInfo("TDST005", "error", "layout mapping invalid"),
        CodeInfo("TDST006", "error", "stride rule invalid"),
        CodeInfo("TDST007", "error", "index formula not injective"),
        CodeInfo("TDST008", "error", "formula maps outside the out array"),
        CodeInfo("TDST009", "error", "rule-set conflict"),
        CodeInfo("TDST010", "error", "out layout unsound"),
        CodeInfo("TDST011", "warning", "dead or identity rule"),
        CodeInfo("TDST012", "warning", "shadowed rule"),
        CodeInfo("TDST013", "error", "name does not resolve against program model"),
        # -- layout / declaration files (01x) ------------------------------
        CodeInfo("TDST014", "info", "struct contains padding"),
        CodeInfo("TDST015", "warning", "leaf not ABI-aligned"),
        CodeInfo("TDST016", "info", "analysis truncated"),
        CodeInfo("TDST017", "warning", "file declares nothing"),
        # -- campaign specs (02x) ------------------------------------------
        CodeInfo("TDST020", "error", "campaign spec invalid"),
        CodeInfo("TDST021", "error", "referenced rule file missing"),
        CodeInfo("TDST022", "warning", "duplicate grid point"),
        CodeInfo("TDST023", "error", "cache geometry invalid"),
        CodeInfo("TDST024", "error", "batch options invalid"),
        CodeInfo("TDST025", "warning", "batch configuration ineffective"),
        CodeInfo("TDST026", "error", "service options invalid"),
        # -- static cache-set analysis (03x) -------------------------------
        CodeInfo("TDST030", "info", "set footprint summary"),
        CodeInfo("TDST031", "warning", "predicted set conflict"),
        # -- static cost model (04x) ---------------------------------------
        CodeInfo("TDST040", "info", "static miss-count interval"),
        CodeInfo("TDST041", "info", "miss-count interval is exact"),
        CodeInfo("TDST042", "warning", "predicted set overflow"),
        CodeInfo("TDST043", "warning", "cost analysis degraded to conservative bounds"),
        CodeInfo("TDST044", "info", "rules commute (reorder-equivalent)"),
        CodeInfo("TDST045", "info", "rule chain idempotent"),
        CodeInfo("TDST046", "info", "candidate statically dominated"),
        CodeInfo("TDST047", "warning", "rule targets variable absent from trace digest"),
    )
}

#: Fallback when a raise site could not be classified at all.
DEFAULT_RULE_CODE = "TDST005"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, what, how bad, and (optionally) how to fix it.

    ``line``/``column`` are 1-based; ``None`` means the finding applies
    to the whole file (or has no file at all, e.g. ad-hoc text input).
    """

    code: str
    message: str
    path: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    severity: str = ""
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", CODES[self.code].severity)
        elif self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def with_path(self, path: str) -> "Diagnostic":
        """The same finding attributed to ``path`` (if not already)."""
        return self if self.path else replace(self, path=path)

    def render(self) -> str:
        """``path:line:col: severity TDSTnnn: message`` (gcc style)."""
        where = self.path or "<input>"
        if self.line is not None:
            where += f":{self.line}"
            if self.column is not None:
                where += f":{self.column}"
        text = f"{where}: {self.severity} {self.code}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintReport:
    """All findings from one lint run (possibly over many files)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: paths that were actually analysed (clean files still count)
    files: List[str] = field(default_factory=list)
    #: identity keys of everything recorded, for duplicate suppression
    _seen: set = field(default_factory=set, repr=False, compare=False)

    def __post_init__(self) -> None:
        for diag in self.diagnostics:
            self._seen.add(
                (diag.code, diag.path, diag.line, diag.column, diag.message)
            )

    def add(self, diag: Diagnostic) -> None:
        """Record a finding, dropping exact duplicates.

        A rule file referenced by several grid points of one campaign
        spec is recursively linted once per reference; without the
        identity check every finding in it would be reported once per
        grid point.  Identity is (code, path, span, message) — the same
        code at the same span with *different* messages is two findings.
        """
        key = (diag.code, diag.path, diag.line, diag.column, diag.message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diagnostics.append(diag)

    def extend(self, other: "LintReport") -> None:
        """Fold another report into this one (order preserved, deduped)."""
        for diag in other.diagnostics:
            self.add(diag)
        for path in other.files:
            if path not in self.files:
                self.files.append(path)

    def note_file(self, path: Optional[str]) -> None:
        if path is not None and path not in self.files:
            self.files.append(path)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings/infos allowed)."""
        return not self.errors

    def codes(self) -> List[str]:
        """The distinct codes present, catalogue order."""
        present = {d.code for d in self.diagnostics}
        return [c for c in CODES if c in present]

    def counts(self) -> Dict[str, int]:
        """``{severity: count}`` over all findings."""
        out = {sev: 0 for sev in SEVERITIES}
        for d in self.diagnostics:
            out[d.severity] += 1
        return out

    def sorted(self) -> List[Diagnostic]:
        """Findings ordered by file, position, then severity."""
        rank = {sev: i for i, sev in enumerate(SEVERITIES)}
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.path or "",
                d.line or 0,
                d.column or 0,
                rank[d.severity],
                d.code,
            ),
        )


def from_rule_error(exc: BaseException, path: Optional[str] = None) -> Diagnostic:
    """Classify a parser/rule exception into a coded diagnostic.

    Raise sites in ``transform`` tag their errors with ``code=``; anything
    still uncoded is classified by message pattern so third-party
    :class:`~repro.errors.RuleError` subclasses degrade gracefully.
    """
    code = getattr(exc, "code", None)
    line = getattr(exc, "line", None)
    message = str(exc)
    if line is not None and message.startswith(f"line {line}: "):
        message = message[len(f"line {line}: ") :]
    if code is None:
        code = _classify_message(message)
    return Diagnostic(code=code, message=message, path=path, line=line)


#: message-pattern fallback for uncoded errors, first match wins
_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("injective", "TDST007"),
    ("maps index up to", "TDST008"),
    ("formula", "TDST003"),
    ("inject", "TDST004"),
    ("section", "TDST001"),
    ("bi-directional", "TDST009"),
    ("duplicate rule", "TDST009"),
    ("collide", "TDST009"),
    ("declaration", "TDST002"),
    ("stride rule", "TDST006"),
    ("displacement", "TDST006"),
    ("tile", "TDST006"),
    ("pool", "TDST006"),
)


def _classify_message(message: str) -> str:
    lowered = message.lower()
    for needle, code in _PATTERNS:
        if needle in lowered:
            return code
    return DEFAULT_RULE_CODE


def summarize(report: LintReport) -> str:
    """One-line human summary (``3 errors, 1 warning in 2 files``)."""
    counts = report.counts()
    parts = []
    for sev in SEVERITIES:
        n = counts[sev]
        if n:
            plural = "" if n == 1 else "s"
            parts.append(f"{n} {sev}{plural}")
    body = ", ".join(parts) if parts else "no findings"
    n_files = len(report.files)
    files = f"{n_files} file{'' if n_files == 1 else 's'}"
    return f"{body} in {files}"
