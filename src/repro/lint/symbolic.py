"""Symbolic evaluation of rules: allocation plan + exhaustive target map.

The dynamic soundness oracle (:mod:`repro.verify.soundness`) replays a
*trace* and asserts that every translated access is injective, in-bounds
and non-overlapping.  This module proves the same invariants without a
trace: it replicates the oracle's arena-allocation plan, enumerates every
scalar leaf of each rule's *in* type, pushes each through
``rule.translate`` and checks the resulting byte intervals symbolically.
Anything the prover passes, the oracle must also pass — the differential
fuzz gate (:func:`repro.verify.fuzz.check_rule_mutation`) enforces that.

Pattern rules (pools) and displacements carry no static element map and
are skipped (they are proven by construction: slots are sized from the
padded element type; displacements allocate nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic, LintReport
from repro.transform.engine import ARENA_BASE, _align_up
from repro.transform.rules import MappedAccess, Rule, RuleSet

#: Per-rule cap on enumerated leaves.  T1/T2/T3 at paper sizes are a few
#: thousand; the cap only guards against pathological declarations, and
#: hitting it is reported (TDST016) rather than silently sampled.
LEAF_CAP = 1 << 17


@dataclass(frozen=True)
class PlannedAllocation:
    """One out object with the base the engine/oracle would assign."""

    name: str
    base: int
    size: int
    alignment: int
    rule: str


@dataclass(frozen=True)
class TargetInterval:
    """One translated leaf: a byte interval inside an out allocation."""

    alloc: str
    offset: int
    size: int
    #: ABI alignment the source scalar requires
    alignment: int
    #: human-readable source path (for messages)
    source: str
    #: byte offset of the source leaf inside the in variable
    source_offset: int


@dataclass
class RuleImage:
    """Everything the prover learned about one rule."""

    rule: Rule
    targets: List[TargetInterval] = field(default_factory=list)
    #: intervals from inserted accesses (pointer loads, inject scalars)
    inserts: List[TargetInterval] = field(default_factory=list)
    truncated: bool = False

    @property
    def name(self) -> str:
        return self.rule.name


def plan_allocations(
    rules: RuleSet, arena_base: int = ARENA_BASE
) -> Tuple[Dict[str, PlannedAllocation], List[Diagnostic]]:
    """Replicate the engine/oracle arena walk and assign bases.

    Mirrors ``verify.soundness._Oracle.__init__`` exactly: allocations are
    laid out in rule order, each aligned up; a duplicate name is a
    TDST010 error (the oracle calls it ``allocation-duplicate``).
    """
    planned: Dict[str, PlannedAllocation] = {}
    diags: List[Diagnostic] = []
    cursor = arena_base
    for rule in rules:
        for alloc in rule.out_allocations():
            if alloc.name in planned:
                diags.append(
                    Diagnostic(
                        code="TDST010",
                        message=(
                            f"{rule.name}: out object {alloc.name!r} is "
                            "allocated twice"
                        ),
                        line=rule.source_line,
                    )
                )
                continue
            cursor = _align_up(cursor, max(alloc.alignment, 1))
            planned[alloc.name] = PlannedAllocation(
                alloc.name, cursor, alloc.size, alloc.alignment, rule.name
            )
            cursor += alloc.size
    return planned, diags


def _iter_in_leaves(rule: Rule) -> Optional[Iterator]:
    """The in-type leaf iterator, or ``None`` for rules without one."""
    in_type = getattr(rule, "in_type", None)
    if in_type is None or rule.is_pattern:
        return None
    return in_type.iter_leaves()


def rule_image(rule: Rule, leaf_cap: int = LEAF_CAP) -> Optional[RuleImage]:
    """Enumerate every leaf of the rule's in type through ``translate``.

    Returns ``None`` for rules with no static element map (pools,
    displacements).  Translation failures never raise here: a leaf the
    rule does not cover is simply absent from the image (the engine
    passes such accesses through untransformed).
    """
    leaves = _iter_in_leaves(rule)
    if leaves is None:
        return None
    image = RuleImage(rule)
    seen_inserts = set()
    for n, (elements, offset, leaf) in enumerate(leaves):
        if n >= leaf_cap:
            image.truncated = True
            break
        try:
            translation = rule.translate(elements)
        except Exception:
            continue
        if translation is None or translation.target is None:
            continue
        source = "".join(str(e) for e in elements) or "<whole>"
        image.targets.append(
            _interval(translation.target, leaf.alignment, source, offset)
        )
        for ins in translation.inserts:
            if ins.mapped is None:
                continue
            key = (ins.mapped.alloc, ins.mapped.offset, ins.mapped.size)
            if key in seen_inserts:
                continue
            seen_inserts.add(key)
            image.inserts.append(
                _interval(ins.mapped, min(ins.mapped.size, 8), source, offset)
            )
    return image


def _interval(
    mapped: MappedAccess, alignment: int, source: str, source_offset: int
) -> TargetInterval:
    return TargetInterval(
        alloc=mapped.alloc,
        offset=mapped.offset,
        size=mapped.size,
        alignment=max(alignment, 1),
        source=source,
        source_offset=source_offset,
    )


def prove_rule(
    image: RuleImage,
    planned: Dict[str, PlannedAllocation],
    *,
    path: Optional[str] = None,
) -> List[Diagnostic]:
    """Check bounds, injectivity, overlap and ABI alignment of one image.

    These are precisely the invariants the dynamic oracle asserts per
    access (``target-out-of-bounds``, ``non-injective-remap``,
    ``overlap``); here they are proven over the *whole* domain at once.
    """
    diags: List[Diagnostic] = []
    line = image.rule.source_line
    if image.truncated:
        diags.append(
            Diagnostic(
                code="TDST016",
                message=(
                    f"{image.name}: in type exceeds {LEAF_CAP} scalar "
                    "elements; layout proof covers the enumerated prefix only"
                ),
                path=path,
                line=line,
            )
        )

    def bounds(interval: TargetInterval, what: str) -> bool:
        alloc = planned.get(interval.alloc)
        if alloc is None:
            diags.append(
                Diagnostic(
                    code="TDST010",
                    message=(
                        f"{image.name}: {what} {interval.source} targets "
                        f"undeclared out object {interval.alloc!r}"
                    ),
                    path=path,
                    line=line,
                )
            )
            return False
        if interval.offset < 0 or interval.offset + interval.size > alloc.size:
            diags.append(
                Diagnostic(
                    code="TDST010",
                    message=(
                        f"{image.name}: {what} {interval.source} maps to "
                        f"[{interval.offset}, {interval.offset + interval.size})"
                        f" outside {interval.alloc!r} (size {alloc.size})"
                    ),
                    path=path,
                    line=line,
                )
            )
            return False
        return True

    in_bounds = [t for t in image.targets if bounds(t, "element")]
    for ins in image.inserts:
        bounds(ins, "inserted access")

    # Pairwise overlap == injectivity failure: two distinct source leaves
    # sharing any target byte would alias in the transformed program.
    by_pos = sorted(in_bounds, key=lambda t: (t.alloc, t.offset))
    reported = 0
    for a, b in zip(by_pos, by_pos[1:]):
        if a.alloc == b.alloc and b.offset < a.offset + a.size:
            diags.append(
                Diagnostic(
                    code="TDST010",
                    message=(
                        f"{image.name}: elements {a.source} and {b.source} "
                        f"overlap in {a.alloc!r} at offset {b.offset} — the "
                        "mapping is not injective"
                    ),
                    path=path,
                    line=line,
                )
            )
            reported += 1
            if reported >= 5:
                diags.append(
                    Diagnostic(
                        code="TDST016",
                        message=(
                            f"{image.name}: further overlaps suppressed after "
                            "the first 5"
                        ),
                        path=path,
                        line=line,
                    )
                )
                break

    # ABI alignment of every translated leaf at its *absolute* address.
    misaligned = 0
    for t in in_bounds:
        alloc = planned[t.alloc]
        if (alloc.base + t.offset) % t.alignment:
            misaligned += 1
            if misaligned <= 3:
                diags.append(
                    Diagnostic(
                        code="TDST015",
                        message=(
                            f"{image.name}: element {t.source} lands at "
                            f"{t.alloc!r}+{t.offset}, not aligned to its "
                            f"natural {t.alignment}-byte boundary"
                        ),
                        path=path,
                        line=line,
                        hint=(
                            "reorder out-struct members by decreasing "
                            "alignment or pad the allocation"
                        ),
                    )
                )
    if misaligned > 3:
        diags.append(
            Diagnostic(
                code="TDST016",
                message=(
                    f"{image.name}: {misaligned - 3} further misaligned "
                    "elements suppressed"
                ),
                path=path,
                line=line,
            )
        )
    return diags


def identity_image(image: RuleImage) -> bool:
    """True when the rule maps every leaf to its original offset in a
    single allocation of the same size — a no-op re-layout."""
    rule = image.rule
    allocs = rule.out_allocations()
    if len(allocs) != 1 or image.truncated or not image.targets:
        return False
    in_type = getattr(rule, "in_type", None)
    if in_type is None or allocs[0].size != in_type.size:
        return False
    return all(t.offset == t.source_offset for t in image.targets)
