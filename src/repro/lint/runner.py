"""Lint entry points: file-kind dispatch and multi-path runs.

Dispatch is by suffix first (``.rules`` / ``.toml``), with a content
sniff as fallback so ad-hoc extensions still lint: a ``[campaign]`` or
``[[grid]]`` table means a spec, an ``in:``/``out:``/``displace:``
section means a rule file, anything else is treated as a declaration
file.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.cache.config import CacheConfig
from repro.ctypes_model.parser import DeclarationSet
from repro.errors import LintError
from repro.lint.diagnostics import LintReport
from repro.lint.layout_lint import lint_layout_text
from repro.lint.rules_lint import lint_rules_text
from repro.lint.spec_lint import lint_spec_text
from repro.obsv import get_telemetry

_SECTION_SNIFF = re.compile(
    r"^\s*(in|out|inject|displace|tile|pool)\s*:", re.MULTILINE
)
_SPEC_SNIFF = re.compile(r"^\s*(\[campaign\]|\[\[grid\]\])", re.MULTILINE)


def detect_kind(path: Union[str, Path], text: Optional[str] = None) -> str:
    """``rules`` / ``spec`` / ``layout`` for one input file."""
    suffix = Path(path).suffix.lower()
    if suffix == ".rules":
        return "rules"
    if suffix == ".toml":
        return "spec"
    if suffix in (".c", ".h", ".decl", ".layout"):
        return "layout"
    if text is None:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            return "layout"
    if _SPEC_SNIFF.search(text):
        return "spec"
    if _SECTION_SNIFF.search(text):
        return "rules"
    return "layout"


def lint_file(
    path: Union[str, Path],
    *,
    kind: Optional[str] = None,
    model: Optional[DeclarationSet] = None,
    cache_config: Optional[CacheConfig] = None,
) -> LintReport:
    """Lint one file, dispatching on its kind.  Raises
    :class:`LintError` only when the file cannot be read at all."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    kind = kind or detect_kind(path, text)
    if kind == "rules":
        return lint_rules_text(
            text, path=str(path), model=model, cache_config=cache_config
        )
    if kind == "spec":
        return lint_spec_text(text, path=str(path))
    if kind == "layout":
        report, _ = lint_layout_text(text, path=str(path))
        return report
    raise LintError(f"unknown lint kind {kind!r} for {path}")


def lint_paths(
    paths: Iterable[Union[str, Path]],
    *,
    model: Optional[DeclarationSet] = None,
    cache_config: Optional[CacheConfig] = None,
) -> LintReport:
    """Lint many files into one report (directories recurse over
    ``*.rules`` and ``*.toml``)."""
    tele = get_telemetry()
    report = LintReport()
    with tele.phase("lint.run"):
        expanded = _expand(paths)
        for path in expanded:
            tele.add("lint.files")
            report.extend(
                lint_file(path, model=model, cache_config=cache_config)
            )
        _lint_service_collisions(report, expanded)
    return report


def _lint_service_collisions(
    report: LintReport, paths: Sequence[Path]
) -> None:
    """TDST026: two service-enabled specs sharing one campaign name.

    Campaign directories are conventionally named after the campaign, so
    two enabled services under the same name bind the same
    ``service.sock`` — the second ``tdst campaign`` run fails (or worse,
    talks to the first one's server).  Only a corpus-level pass can see
    this, so it lives here rather than in the per-file spec lint.
    """
    import tomllib

    from repro.lint.diagnostics import Diagnostic

    by_name: dict = {}
    for path in paths:
        if path.suffix.lower() != ".toml":
            continue
        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError):
            continue  # unreadable/invalid: already reported per-file
        service = data.get("service", {})
        if not (isinstance(service, dict) and service.get("enabled") is True):
            continue
        name = str(data.get("campaign", {}).get("name", "campaign"))
        by_name.setdefault(name, []).append(path)
    for name, group in sorted(by_name.items()):
        if len(group) < 2:
            continue
        others = ", ".join(str(p) for p in group)
        for path in group:
            report.add(
                Diagnostic(
                    code="TDST026",
                    message=(
                        f"campaign name {name!r} has {len(group)} "
                        f"service-enabled specs ({others}); concurrent "
                        "runs would collide on one service.sock"
                    ),
                    path=str(path),
                    severity="warning",
                    hint="give each service-enabled campaign a unique name",
                )
            )


def _expand(paths: Iterable[Union[str, Path]]) -> Sequence[Path]:
    out = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.rules")))
            out.extend(sorted(path.rglob("*.toml")))
        else:
            out.append(path)
    return out
