"""Rule-chain proofs: commutativity, idempotence, domination.

Rule files are chains: an ordered list of rules sharing one arena
cursor.  Three questions about chains can be settled statically, and
each answer feeds a different consumer:

- **Commutativity** — do two orderings of the same rules produce the
  same transformed trace?  Rules consume disjoint in-variables (the
  parser enforces one rule per variable and forbids chaining), so the
  only order-dependence is the arena-allocation walk: a reorder is
  equivalent iff every out allocation still lands on the same planned
  base.  :func:`prove_reorder` settles this for two rule-file texts by
  delegating to :func:`repro.tracestore.delta.rule_delta` (the commit
  machinery's change prover), so a proof here is *by construction* the
  same proof that lets :mod:`repro.tracestore` reuse chunks across
  reordered-but-equivalent commits.  :func:`commuting_pairs` finds the
  adjacent swaps inside one file that preserve all bases.

- **Idempotence** — is applying the chain to its own output a no-op?
  Target-mode rules rewrite records into their out allocations, whose
  names the engine refuses to re-transform (one-directional mapping), so
  they are idempotent; a displacement without ``as`` rename shifts again
  on every application and is not.  :func:`prove_idempotent` walks the
  chain and names the offending rules.

- **Domination** — is candidate A *provably* no better than candidate
  B on this trace?  When A's static lower bound exceeds B's upper bound
  (:func:`prove_dominates`), no simulation can rank A above B, and the
  advisor prunes A without simulating it.  The stronger
  :func:`layout_equivalent` proves two candidates produce **identical
  hit/miss behaviour** (their canonical per-set block streams coincide,
  e.g. two field orders that pack the same fields into the same blocks),
  so only one representative per equivalence class needs simulating.

All proofs are one-sided: ``holds=False`` means "not proven", never
"disproven".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.cache.config import CacheConfig
from repro.lint.symbolic import plan_allocations
from repro.trace.digest import TraceDigest
from repro.transform.engine import ARENA_BASE
from repro.transform.displace import DisplaceRule
from repro.transform.rule_parser import parse_rules
from repro.transform.rules import Rule, RuleSet

from repro.lint.cost.model import (
    CostReport,
    build_layout_image,
    evaluate_rules,
)


@dataclass(frozen=True)
class ChainProof:
    """Outcome of one static chain proof (one-sided: False = unproven)."""

    kind: str
    holds: bool
    reason: str
    details: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.holds


def _as_rules(rules: Union[RuleSet, str]) -> RuleSet:
    return parse_rules(rules) if isinstance(rules, str) else rules


# -- commutativity ------------------------------------------------------------


def prove_reorder(old_text: str, new_text: str) -> ChainProof:
    """Prove two rule-file texts equivalent up to rule reordering.

    Exactly the proof :func:`repro.tracestore.delta.rule_delta` runs
    before chunk reuse: same per-variable rule bodies, same planned
    allocation bases.  ``holds`` therefore implies the transformed
    traces are record-for-record identical.
    """
    # Deferred: tracestore.delta imports the lint package for footprint
    # analysis, so a module-level import here would be circular.
    from repro.tracestore.delta import rule_delta

    delta = rule_delta(old_text, new_text)
    if delta.changed is not None and not delta.changed:
        return ChainProof(
            kind="commute",
            holds=True,
            reason=delta.reason,
        )
    detail = (
        "conservative: " + delta.reason
        if delta.changed is None
        else "changed variables: " + ", ".join(sorted(delta.changed))
    )
    return ChainProof(
        kind="commute",
        holds=False,
        reason="rule files are not reorder-equivalent",
        details=(detail,),
    )


def commuting_pairs(
    rules: Union[RuleSet, str], *, arena_base: int = ARENA_BASE
) -> List[Tuple[str, str]]:
    """Adjacent rule pairs whose swap preserves every planned base.

    The arena walk allocates in rule order; two neighbours commute when
    swapping them leaves all allocation bases unchanged — which holds
    iff the cursor advances by the same amount through both (equal
    aligned footprints), or at least one allocates nothing.
    """
    ruleset = _as_rules(rules)
    ordered = list(ruleset)
    baseline, _ = plan_allocations(ordered, arena_base)
    base_map = {name: a.base for name, a in baseline.items()}
    pairs: List[Tuple[str, str]] = []
    for i in range(len(ordered) - 1):
        swapped = list(ordered)
        swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        planned, _ = plan_allocations(swapped, arena_base)
        if {name: a.base for name, a in planned.items()} == base_map:
            pairs.append((ordered[i].name, ordered[i + 1].name))
    return pairs


# -- idempotence --------------------------------------------------------------


def prove_idempotent(rules: Union[RuleSet, str]) -> ChainProof:
    """Prove that re-applying the chain to its own output is a no-op.

    Holds when every record the chain emits carries a base name the
    engine will not re-transform:

    - target-mode rules rewrite records into out allocations, and out
      names are never consumed (``ignored_out``);
    - a displacement with ``as`` renames its variable out of reach;
    - a displacement *without* rename keeps the name and shifts again —
      not idempotent;
    - an ``existing`` inject replays the referenced variable's original
      record; if another rule consumes that variable, the replayed
      record gets transformed on the second pass — not proven.
    """
    ruleset = _as_rules(rules)
    consumed = {r.in_name for r in ruleset if not r.is_pattern}
    offenders: List[str] = []
    for rule in ruleset:
        if isinstance(rule, DisplaceRule) and rule.new_name is None:
            offenders.append(
                f"{rule.name}: displacement without rename shifts again "
                "on re-application"
            )
        for spec in getattr(rule, "inject", ()) or ():
            if getattr(spec, "existing", False) and spec.name in consumed:
                offenders.append(
                    f"{rule.name}: inject replays {spec.name!r}, which "
                    f"another rule consumes; the replay would be "
                    "re-transformed"
                )
    if offenders:
        return ChainProof(
            kind="idempotent",
            holds=False,
            reason="chain is not proven idempotent",
            details=tuple(offenders),
        )
    return ChainProof(
        kind="idempotent",
        holds=True,
        reason=(
            "every emitted record carries an out name or an unconsumed "
            "variable; re-application is the identity"
        ),
    )


# -- domination & equivalence -------------------------------------------------


def prove_dominates(
    digest: TraceDigest,
    winner: Union[RuleSet, str],
    loser: Union[RuleSet, str],
    config: CacheConfig,
    *,
    arena_base: int = ARENA_BASE,
    reports: Optional[Tuple[CostReport, CostReport]] = None,
) -> ChainProof:
    """Prove ``winner`` strictly beats ``loser`` on this digest.

    Holds when the winner's static upper bound is below the loser's
    lower bound — no simulation can then rank the loser first.  Pass
    precomputed ``reports`` to avoid re-evaluating.
    """
    if reports is not None:
        rep_w, rep_l = reports
    else:
        rep_w = evaluate_rules(digest, winner, config, arena_base=arena_base)
        rep_l = evaluate_rules(digest, loser, config, arena_base=arena_base)
    if rep_w.interval.dominates(rep_l.interval):
        return ChainProof(
            kind="dominates",
            holds=True,
            reason=(
                f"winner misses <= {rep_w.interval.hi} < "
                f"{rep_l.interval.lo} <= loser misses"
            ),
        )
    return ChainProof(
        kind="dominates",
        holds=False,
        reason=(
            f"intervals overlap: {rep_w.interval.describe()} vs "
            f"{rep_l.interval.describe()}"
        ),
    )


def canonical_stream(
    digest: TraceDigest,
    rules: Union[RuleSet, str],
    config: CacheConfig,
    *,
    arena_base: int = ARENA_BASE,
) -> Optional[Tuple]:
    """Canonical per-set block stream of a candidate's layout image.

    Walks the digest's elements in their (deterministic) order and
    renames every touched block to its index of first appearance,
    keeping the cache-set index.  Two candidates with equal streams
    put the *same sequence of set-local block identities* in front of
    the cache, so every demand simulation — any associativity-respecting
    policy included — produces the identical hit/miss sequence.

    Returns ``None`` when the image is not fully static (pattern rules,
    ``existing`` injects): no equivalence can be claimed then.
    """
    image = build_layout_image(
        digest, rules, arena_base=arena_base, block_size=config.block_size
    )
    if image.conservative or any(g.uncertain for g in image.groups):
        return None
    n_sets = config.n_sets
    canon: Dict[int, int] = {}
    stream: List[Tuple] = []
    for g in image.groups:
        slots = []
        for slot in g.slots:
            ids = []
            for b in slot:
                if b not in canon:
                    canon[b] = len(canon)
                ids.append((b % n_sets, canon[b]))
            slots.append(tuple(ids))
        stream.append((g.element.count, tuple(g.element.distances), tuple(slots)))
    return tuple(stream)


def layout_equivalent(
    digest: TraceDigest,
    rules_a: Union[RuleSet, str],
    rules_b: Union[RuleSet, str],
    config: CacheConfig,
    *,
    arena_base: int = ARENA_BASE,
) -> ChainProof:
    """Prove two candidates produce identical hit/miss behaviour."""
    stream_a = canonical_stream(digest, rules_a, config, arena_base=arena_base)
    stream_b = canonical_stream(digest, rules_b, config, arena_base=arena_base)
    if stream_a is not None and stream_a == stream_b:
        return ChainProof(
            kind="layout-equivalent",
            holds=True,
            reason=(
                "canonical block streams coincide; one simulation prices "
                "both candidates"
            ),
        )
    if stream_a is None or stream_b is None:
        return ChainProof(
            kind="layout-equivalent",
            holds=False,
            reason="a candidate's layout is not fully static",
        )
    return ChainProof(
        kind="layout-equivalent",
        holds=False,
        reason="canonical block streams differ",
    )
