"""The ``--cost`` lint pass: TDST040-047 over a rule file and a digest.

Runs after (and only if) the ordinary rule-file passes parse the file;
every finding here is advisory in the sense that the rule file is
*sound* — these codes say what it will *cost*:

================  ==========================================================
``TDST040`` info  the static miss-count interval per cache geometry
``TDST041`` info  the interval collapsed — the prediction is exact
``TDST042`` warn  a cache set is overflowed (with its contributors)
``TDST043`` warn  a non-static construct degraded the bounds
``TDST044`` info  adjacent rules commute (reordering is free)
``TDST045`` info  the chain is idempotent
``TDST046`` info  the candidate is dominated by the untransformed layout
``TDST047`` warn  a rule consumes a variable the trace never touches
================  ==========================================================
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.cache.config import CacheConfig
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.obsv import get_telemetry
from repro.trace.digest import TraceDigest
from repro.transform.engine import ARENA_BASE
from repro.transform.rule_parser import parse_rules
from repro.transform.rules import RuleSet

from repro.lint.cost.chains import commuting_pairs, prove_idempotent
from repro.lint.cost.model import evaluate_rules

#: per-config cap on TDST042 set-overflow diagnostics (worst sets first)
MAX_OVERFLOW_DIAGS = 4


def lint_cost(
    rules: Union[RuleSet, str],
    digest: TraceDigest,
    configs: Sequence[CacheConfig],
    *,
    path: Optional[str] = None,
    arena_base: int = ARENA_BASE,
) -> LintReport:
    """Run the cost-model pass; assumes the rule file already parses."""
    tele = get_telemetry()
    report = LintReport()
    report.note_file(path)
    if isinstance(rules, str):
        rules = parse_rules(rules)

    with tele.phase("lint.cost", file=path or "<input>"):
        _lint_coverage(report, rules, digest, path)
        for config in configs:
            cost = evaluate_rules(digest, rules, config, arena_base=arena_base)
            label = config.describe()
            interval = cost.interval
            report.add(
                Diagnostic(
                    code="TDST040",
                    message=(
                        f"{label}: predicted {interval.describe()} over "
                        f"{interval.events} block events "
                        f"({interval.compulsory} compulsory)"
                    ),
                    path=path,
                )
            )
            if interval.exact:
                report.add(
                    Diagnostic(
                        code="TDST041",
                        message=(
                            f"{label}: no set overflows its associativity; "
                            f"the miss count is exactly {interval.lo}"
                        ),
                        path=path,
                    )
                )
            for pressure in cost.overflow_sets[:MAX_OVERFLOW_DIAGS]:
                report.add(
                    Diagnostic(
                        code="TDST042",
                        message=f"{label}: {pressure.describe()}",
                        path=path,
                        hint=(
                            "displace one contributor or split the hot "
                            "fields to relieve the set"
                        ),
                    )
                )
            extra = len(cost.overflow_sets) - MAX_OVERFLOW_DIAGS
            if extra > 0:
                report.add(
                    Diagnostic(
                        code="TDST042",
                        message=(
                            f"{label}: {extra} more set(s) overflow "
                            "(rerun with --format json for the full list)"
                        ),
                        path=path,
                    )
                )
            for reason in cost.reasons:
                report.add(
                    Diagnostic(
                        code="TDST043",
                        message=f"{label}: {reason}",
                        path=path,
                        hint=(
                            "bounds stay sound but wide; exact prediction "
                            "needs fully static placements"
                        ),
                    )
                )
            _lint_identity_domination(
                report, rules, digest, config, label, path, arena_base
            )
        _lint_chain(report, rules, path, arena_base)
    for severity, count in report.counts().items():
        if count:
            tele.add(f"lint.cost.diagnostics.{severity}", count)
    return report


def _lint_coverage(
    report: LintReport,
    rules: RuleSet,
    digest: TraceDigest,
    path: Optional[str],
) -> None:
    """TDST047: rules that can never fire on this trace."""
    names = set(digest.variable_names)
    for rule in rules:
        if rule.is_pattern:
            if not any(rule.matches(n) for n in names):
                report.add(
                    Diagnostic(
                        code="TDST047",
                        message=(
                            f"{rule.name}: pattern matches no variable in "
                            "the trace digest; the rule never fires"
                        ),
                        path=path,
                        line=rule.source_line,
                    )
                )
        elif rule.in_name not in names:
            report.add(
                Diagnostic(
                    code="TDST047",
                    message=(
                        f"{rule.name}: variable {rule.in_name!r} never "
                        "appears in the trace digest; the rule never fires"
                    ),
                    path=path,
                    line=rule.source_line,
                )
            )


def _lint_identity_domination(
    report: LintReport,
    rules: RuleSet,
    digest: TraceDigest,
    config: CacheConfig,
    label: str,
    path: Optional[str],
    arena_base: int,
) -> None:
    """TDST046: the untransformed layout provably beats this rule file."""
    identity = evaluate_rules(
        digest, RuleSet(), config, arena_base=arena_base
    )
    candidate = evaluate_rules(digest, rules, config, arena_base=arena_base)
    if identity.interval.dominates(candidate.interval):
        report.add(
            Diagnostic(
                code="TDST046",
                message=(
                    f"{label}: the untransformed layout misses at most "
                    f"{identity.interval.hi} times; this rule file misses "
                    f"at least {candidate.interval.lo}"
                ),
                path=path,
                hint="the transformation makes this trace strictly worse",
            )
        )


def _lint_chain(
    report: LintReport,
    rules: RuleSet,
    path: Optional[str],
    arena_base: int,
) -> None:
    """TDST044/045: chain-structure facts worth surfacing."""
    if len(list(rules)) >= 2:
        pairs = commuting_pairs(rules, arena_base=arena_base)
        for a, b in pairs:
            report.add(
                Diagnostic(
                    code="TDST044",
                    message=(
                        f"rules {a!r} and {b!r} commute: swapping them "
                        "preserves every planned allocation base"
                    ),
                    path=path,
                )
            )
    proof = prove_idempotent(rules)
    if proof.holds and list(rules):
        report.add(
            Diagnostic(
                code="TDST045",
                message=f"rule chain is idempotent: {proof.reason}",
                path=path,
            )
        )
