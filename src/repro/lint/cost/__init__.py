"""Static cost model: miss-count intervals and chain proofs, no simulation.

Public surface:

- :func:`repro.trace.digest.compute_digest` produces the one-pass trace
  summary everything here consumes;
- :func:`evaluate_rules` prices a candidate rule file against a digest,
  returning a :class:`CostReport` with a sound ``[lo, hi]`` miss
  interval per cache geometry;
- :mod:`repro.lint.cost.chains` proves commutativity, idempotence,
  domination and layout equivalence between rule chains;
- :func:`lint_cost` packages both as TDST040-047 diagnostics for
  ``tdst lint --cost --trace <t>``.
"""

from repro.lint.cost.chains import (
    ChainProof,
    canonical_stream,
    commuting_pairs,
    layout_equivalent,
    prove_dominates,
    prove_idempotent,
    prove_reorder,
)
from repro.lint.cost.lint import lint_cost
from repro.lint.cost.model import (
    CostReport,
    ElementGroup,
    LayoutImage,
    MissInterval,
    SetPressure,
    build_layout_image,
    evaluate_rules,
)

__all__ = [
    "ChainProof",
    "CostReport",
    "ElementGroup",
    "LayoutImage",
    "MissInterval",
    "SetPressure",
    "build_layout_image",
    "canonical_stream",
    "commuting_pairs",
    "evaluate_rules",
    "layout_equivalent",
    "lint_cost",
    "prove_dominates",
    "prove_idempotent",
    "prove_reorder",
]
