"""Static cost model: guaranteed miss-count intervals without simulating.

Given a :class:`~repro.trace.digest.TraceDigest` (layout-invariant
per-element reuse-distance histograms) and a candidate rule file, this
module predicts a **sound interval** ``[lo, hi]`` on the block-level
miss count the fast simulator would report for the transformed trace
under a cache geometry — without transforming or simulating anything.

The abstract interpretation proceeds in two steps:

1. :func:`build_layout_image` pushes every digest element through
   ``rule.translate`` exactly as the transform engine would (same
   arena-allocation walk, same passthrough/ignored-out/uncovered
   semantics), yielding each element's *group*: the cache blocks its
   target access and statically-known inserted accesses touch.

2. :func:`evaluate_rules` folds the groups per cache set:

   - ``lo`` is the compulsory floor — every distinct block's first
     touch misses under any demand cache;
   - a set whose distinct blocks fit its associativity can never evict,
     so its misses equal its distinct blocks **exactly**;
   - in overflowing sets, an access is a *guaranteed hit* when its
     element-granularity reuse distance ``d`` bounds the intervening
     same-set traffic below the associativity:
     ``d * C + I_s + (g - 1) < ways`` (``C`` = max blocks any element's
     target touches, ``I_s`` = distinct inserted blocks in the set,
     ``g`` = the element's own group size).  LRU stack inclusion makes
     the block resident; the rule is disabled for non-LRU replacement,
     where recency proves nothing.

   The interval collapses (``lo == hi``) precisely when no set
   overflows and nothing degraded — and then it is exact.

Constructs that break static placement (pattern/pool rules, whose slot
assignment is first-seen-stateful, and ``existing`` inject specs, which
replay prior records) degrade the interval **conservatively**: their
possible blocks widen ``hi`` and are excluded from ``lo``, preserving
soundness at the price of precision.  ``docs/COSTMODEL.md`` carries the
full argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.cache.config import CacheConfig
from repro.cache.fastsim import supports_fast_path
from repro.ctypes_model.path import VariablePath
from repro.lint.symbolic import plan_allocations
from repro.obsv import get_telemetry
from repro.trace.digest import ElementStats, TraceDigest
from repro.transform.engine import ARENA_BASE
from repro.transform.rule_parser import parse_rules
from repro.transform.rules import Rule, RuleSet

#: label under which records without debug info are attributed
ANONYMOUS = "<anonymous>"


def _blocks(addr: int, size: int, block_size: int) -> Tuple[int, ...]:
    """Block ids the byte range ``[addr, addr+size)`` touches."""
    first = addr // block_size
    last = (addr + max(size, 1) - 1) // block_size
    return tuple(range(first, last + 1))


def _worst_span(size: int, block_size: int) -> int:
    """Max blocks an access of ``size`` can straddle at any alignment."""
    return (max(size, 1) - 1) // block_size + 2


def _has_existing_injects(rules: RuleSet) -> bool:
    return any(
        getattr(spec, "existing", None)
        for rule in rules
        for spec in getattr(rule, "inject", ()) or ()
    )


@dataclass(frozen=True)
class ElementGroup:
    """The transformed image of one digest element.

    Every access event of the element touches the *target* blocks plus
    one inserted record per entry of ``insert_blocks`` (the engine emits
    inserts before the target, but order inside the event does not
    matter for counting).  ``uncertain`` marks elements whose placement
    could not be determined statically (pattern-rule targets).
    """

    variable: Optional[str]
    element: ElementStats
    target_blocks: Tuple[int, ...]
    insert_blocks: Tuple[Tuple[int, ...], ...] = ()
    uncertain: bool = False

    @property
    def slots(self) -> Tuple[Tuple[int, ...], ...]:
        """Block tuple per access record of one event (inserts + target)."""
        return self.insert_blocks + (self.target_blocks,)

    @property
    def distinct_blocks(self) -> Tuple[int, ...]:
        seen: Set[int] = set()
        for slot in self.slots:
            seen.update(slot)
        return tuple(sorted(seen))


@dataclass
class LayoutImage:
    """Per-element transformed placements for one (digest, rules) pair."""

    groups: List[ElementGroup]
    #: blocks that *may* additionally be touched (pattern-rule pools,
    #: replayed ``existing`` inject targets, uncovered passthroughs)
    uncertain_blocks: Set[int] = field(default_factory=set)
    #: upper bound on block events whose placement is unknown
    uncertain_events: int = 0
    #: why precision was lost (empty = fully static)
    reasons: List[str] = field(default_factory=list)

    @property
    def conservative(self) -> bool:
        return bool(self.reasons)


def build_layout_image(
    digest: TraceDigest,
    rules: Union[RuleSet, str],
    *,
    arena_base: int = ARENA_BASE,
    block_size: int = 32,
) -> LayoutImage:
    """Map every digest element to its post-transformation blocks.

    Replicates the engine's dispatch exactly: records without debug
    info pass through; records whose base is an out-name are ignored
    (bi-directional mapping is never applied); uncovered paths pass
    through; covered paths land at the planned allocation base plus the
    translated offset, keeping the record's original size.
    """
    if isinstance(rules, str):
        rules = parse_rules(rules)
    planned, _ = plan_allocations(rules, arena_base)
    bases = {name: alloc.base for name, alloc in planned.items()}
    by_in = {r.in_name: r for r in rules if not r.is_pattern}
    patterns = [r for r in rules if r.is_pattern]
    out_names = {n for r in rules for n in r.out_names()}

    image = LayoutImage(groups=[])
    max_span: Dict[Optional[str], int] = {}
    for vd in digest.variables:
        max_span[vd.name] = max(
            (len(_blocks(e.addr, e.size, block_size)) for e in vd.elements),
            default=1,
        )

    existing_refs: Set[str] = set()
    for rule in rules:
        for spec in getattr(rule, "inject", ()) or ():
            if getattr(spec, "existing", False):
                existing_refs.add(str(spec.name))
    if existing_refs:
        image.reasons.append(
            "rules use `existing` inject specs (the engine replays prior "
            "records; inserted placements are order-dependent)"
        )
        for ref in sorted(existing_refs):
            vd = digest.variable(ref)
            if vd is not None:
                for b in vd.blocks(block_size):
                    image.uncertain_blocks.add(b)

    pattern_reason_added = False
    for vd in digest.variables:
        name = vd.name
        rule: Optional[Rule] = None
        if name is not None and name not in out_names:
            rule = by_in.get(name)
            if rule is None:
                for candidate in patterns:
                    if candidate.matches(name):
                        rule = candidate
                        break
        if rule is not None and rule.is_pattern:
            # Pattern/pool targets are assigned slots in first-seen
            # order — stateful, so placement is unknown.  The possible
            # blocks are bounded by the pool allocation plus the
            # original addresses (uncovered objects pass through).
            if not pattern_reason_added:
                image.reasons.append(
                    "pattern rules assign pool slots in first-seen order; "
                    "matched placements are not static"
                )
                pattern_reason_added = True
            for alloc in rule.out_allocations():
                base = bases.get(alloc.name)
                if base is not None:
                    for b in _blocks(base, alloc.size, block_size):
                        image.uncertain_blocks.add(b)
            for e in vd.elements:
                for b in _blocks(e.addr, e.size, block_size):
                    image.uncertain_blocks.add(b)
                image.groups.append(
                    ElementGroup(
                        variable=name,
                        element=e,
                        target_blocks=(),
                        uncertain=True,
                    )
                )
                image.uncertain_events += e.count * _worst_span(
                    e.size, block_size
                )
            continue
        for e in vd.elements:
            group = _element_group(
                name, e, rule, bases, block_size, image, existing_refs,
                max_span,
            )
            image.groups.append(group)
    return image


def _element_group(
    name: Optional[str],
    e: ElementStats,
    rule: Optional[Rule],
    bases: Dict[str, int],
    block_size: int,
    image: LayoutImage,
    existing_refs: Set[str],
    max_span: Dict[Optional[str], int],
) -> ElementGroup:
    """Translate one element; fall back to passthrough like the engine."""
    if rule is None or e.path is None:
        return ElementGroup(name, e, _blocks(e.addr, e.size, block_size))
    try:
        path = VariablePath.parse(e.path)
        translation = rule.translate(path.elements)
    except Exception:
        translation = None
    if translation is None:
        # Uncovered path: the engine passes the record through.
        return ElementGroup(name, e, _blocks(e.addr, e.size, block_size))
    if translation.address_delta is not None:
        return ElementGroup(
            name, e,
            _blocks(e.addr + translation.address_delta, e.size, block_size),
        )
    mapped = translation.target
    if mapped is None:
        # Rename-only translation: the record keeps its address.
        return ElementGroup(name, e, _blocks(e.addr, e.size, block_size))
    base = bases.get(mapped.alloc)
    if base is None:
        # Undeclared out object — the prover flags this (TDST010); treat
        # the placement as unknown rather than guessing.
        image.reasons.append(
            f"{rule.name}: target allocation {mapped.alloc!r} has no "
            "planned base"
        )
        image.uncertain_events += e.count * _worst_span(e.size, block_size)
        return ElementGroup(name, e, (), uncertain=True)
    target = _blocks(base + mapped.offset, e.size, block_size)
    inserts: List[Tuple[int, ...]] = []
    for ins in translation.inserts:
        if ins.existing_var is not None:
            # Replayed record: blocks already folded into
            # ``uncertain_blocks``; bound the extra events here.
            span = max_span.get(str(ins.existing_var), 2)
            image.uncertain_events += e.count * span
            continue
        if ins.mapped is None:
            continue
        ibase = bases.get(ins.mapped.alloc)
        if ibase is None:
            image.uncertain_events += e.count * _worst_span(
                ins.size, block_size
            )
            continue
        inserts.append(
            _blocks(ibase + ins.mapped.offset, ins.size, block_size)
        )
    return ElementGroup(name, e, target, tuple(inserts))


# -- interval evaluation ------------------------------------------------------


@dataclass(frozen=True)
class MissInterval:
    """A sound bound on block-level misses: ``lo <= misses <= hi``."""

    lo: int
    hi: int
    #: total block-level events the bound covers
    events: int
    #: distinct certain blocks (the compulsory floor)
    compulsory: int
    #: events proven to hit (recency / never-overflow arguments)
    guaranteed_hits: int = 0
    #: True when precision was lost to a non-static construct
    conservative: bool = False

    @property
    def exact(self) -> bool:
        return self.lo == self.hi

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def contains(self, misses: int) -> bool:
        return self.lo <= misses <= self.hi

    def dominates(self, other: "MissInterval") -> bool:
        """Provably never worse — and strictly better in the worst case."""
        return self.hi < other.lo

    def describe(self) -> str:
        if self.exact:
            return f"exactly {self.lo} misses"
        return f"[{self.lo}, {self.hi}] misses"


@dataclass(frozen=True)
class SetPressure:
    """Static per-set pressure: who fills the set and how far over."""

    index: int
    blocks: int
    ways: int
    events: int
    variables: Tuple[str, ...]
    #: True when non-static placements may add further blocks here
    uncertain: bool = False

    @property
    def overflows(self) -> bool:
        return self.blocks > self.ways

    def describe(self) -> str:
        who = ", ".join(self.variables[:4]) or "non-static placements"
        if len(self.variables) > 4:
            who += ", ..."
        if self.uncertain and not self.overflows:
            return (
                f"set {self.index}: {self.blocks} static block(s) plus "
                f"non-static placements may exceed {self.ways} way(s) "
                f"({who})"
            )
        return (
            f"set {self.index}: {self.blocks} blocks over {self.ways} "
            f"way(s) from {who}"
        )


@dataclass
class CostReport:
    """Everything the cost model learned about one (rules, geometry)."""

    config: CacheConfig
    interval: MissInterval
    #: overflowing (or uncertainty-tainted) sets, worst first
    overflow_sets: List[SetPressure]
    #: per-variable attributed intervals (insert traffic counts toward
    #: the rule's in-variable)
    per_variable: Dict[str, MissInterval]
    #: why precision was lost (empty = fully static)
    reasons: List[str]

    @property
    def exact(self) -> bool:
        return self.interval.exact

    def explain(self, limit: int = 6) -> List[str]:
        """Human-readable per-set conflict explanations."""
        lines = [f"{self.config.describe()}: {self.interval.describe()}"]
        for pressure in self.overflow_sets[:limit]:
            lines.append("  " + pressure.describe())
        if len(self.overflow_sets) > limit:
            lines.append(
                f"  ... {len(self.overflow_sets) - limit} more contended sets"
            )
        for reason in self.reasons:
            lines.append(f"  conservative: {reason}")
        return lines


def evaluate_rules(
    digest: TraceDigest,
    rules: Union[RuleSet, str],
    config: CacheConfig,
    *,
    arena_base: int = ARENA_BASE,
) -> CostReport:
    """Predict the transformed trace's miss interval for one geometry."""
    tele = get_telemetry()
    with tele.phase("cost.evaluate"):
        report = _evaluate(digest, rules, config, arena_base)
    tele.add("cost.evaluations")
    if report.exact:
        tele.add("cost.evaluations_exact")
    return report


def _evaluate(
    digest: TraceDigest,
    rules: Union[RuleSet, str],
    config: CacheConfig,
    arena_base: int,
) -> CostReport:
    image = build_layout_image(
        digest, rules, arena_base=arena_base, block_size=config.block_size
    )
    n_sets = config.n_sets
    ways = config.ways
    #: recency arguments hold for LRU (and trivially for direct-mapped);
    #: for other policies only the policy-independent bounds apply
    lru = supports_fast_path(config)

    set_blocks: Dict[int, Set[int]] = {}
    set_events: Dict[int, int] = {}
    insert_sets: Dict[int, Set[int]] = {}
    set_vars: Dict[int, Set[str]] = {}
    c_tgt = 1
    for g in image.groups:
        if g.uncertain:
            continue
        label = g.variable if g.variable is not None else ANONYMOUS
        c_tgt = max(c_tgt, len(set(g.target_blocks)))
        for slot in g.slots:
            for b in slot:
                s = b % n_sets
                set_events[s] = set_events.get(s, 0) + g.element.count
                set_blocks.setdefault(s, set()).add(b)
                set_vars.setdefault(s, set()).add(label)
        for slot in g.insert_blocks:
            for b in slot:
                insert_sets.setdefault(b % n_sets, set()).add(b)

    uncertain_sets = {b % n_sets for b in image.uncertain_blocks}
    for b in image.uncertain_blocks:
        set_blocks.setdefault(b % n_sets, set())

    # Second pass: guaranteed hits in overflowing sets (LRU only).
    guaranteed: Dict[int, int] = {}
    var_guaranteed: Dict[Tuple[str, int], int] = {}
    if lru:
        for g in image.groups:
            if g.uncertain or g.element.count < 2:
                continue
            label = g.variable if g.variable is not None else ANONYMOUS
            own = len(set(g.distinct_blocks))
            for b in set(g.distinct_blocks):
                s = b % n_sets
                if s in uncertain_sets or len(set_blocks[s]) <= ways:
                    continue  # exact set: handled wholesale below
                ins_s = len(insert_sets.get(s, ()))
                margin = ways - ins_s - (own - 1)
                if margin <= 0:
                    continue
                # d * c_tgt < margin  <=>  d <= (margin - 1) // c_tgt
                bound = (margin - 1) // c_tgt + 1
                hits = g.element.reuses_within(bound)
                if hits:
                    guaranteed[s] = guaranteed.get(s, 0) + hits
                    key = (label, s)
                    var_guaranteed[key] = var_guaranteed.get(key, 0) + hits

    lo = hi = compulsory = events = hits_total = 0
    pressures: List[SetPressure] = []
    for s, blocks in set_blocks.items():
        k = len(blocks)
        e = set_events.get(s, 0)
        compulsory += k
        events += e
        tainted = s in uncertain_sets
        if not tainted and k <= ways:
            lo += k
            hi += k
            hits_total += e - k
            continue
        g_s = 0 if tainted else guaranteed.get(s, 0)
        lo += k
        hi += e - g_s
        hits_total += g_s
        pressures.append(
            SetPressure(
                index=s,
                blocks=k,
                ways=ways,
                events=e,
                variables=tuple(sorted(set_vars.get(s, ()))),
                uncertain=tainted,
            )
        )
    hi += image.uncertain_events
    events += image.uncertain_events
    pressures.sort(key=lambda p: (-(p.blocks - p.ways), p.index))

    interval = MissInterval(
        lo=lo,
        hi=hi,
        events=events,
        compulsory=compulsory,
        guaranteed_hits=hits_total,
        conservative=image.conservative,
    )
    per_variable = _per_variable(
        image, config, set_blocks, insert_sets, uncertain_sets,
        guaranteed_by_var=var_guaranteed, lru=lru,
    )
    return CostReport(
        config=config,
        interval=interval,
        overflow_sets=pressures,
        per_variable=per_variable,
        reasons=list(image.reasons),
    )


def _per_variable(
    image: LayoutImage,
    config: CacheConfig,
    set_blocks: Dict[int, Set[int]],
    insert_sets: Dict[int, Set[int]],
    uncertain_sets: Set[int],
    *,
    guaranteed_by_var: Dict[Tuple[str, int], int],
    lru: bool,
) -> Dict[str, MissInterval]:
    """Attribute the interval to variables (sound per-variable bounds).

    A block shared between variables contributes its compulsory miss to
    neither lower bound (whoever touches it first takes the miss), and
    to both upper bounds.
    """
    n_sets = config.n_sets
    ways = config.ways
    owners: Dict[int, Set[str]] = {}
    for g in image.groups:
        if g.uncertain:
            continue
        label = g.variable if g.variable is not None else ANONYMOUS
        for b in g.distinct_blocks:
            owners.setdefault(b, set()).add(label)

    per: Dict[str, Dict[str, int]] = {}
    counted_by_label: Dict[str, Set[int]] = {}
    for g in image.groups:
        label = g.variable if g.variable is not None else ANONYMOUS
        acc = per.setdefault(
            label, {"lo": 0, "hi": 0, "events": 0, "compulsory": 0, "unc": 0}
        )
        if g.uncertain:
            bound = g.element.count * _worst_span(
                g.element.size, config.block_size
            )
            acc["hi"] += bound
            acc["events"] += bound
            acc["unc"] = 1
            continue
        blocks = set(g.distinct_blocks)
        # Compulsory dedup is per *variable*: a block shared by several
        # elements of the same variable still misses only once.
        counted = counted_by_label.setdefault(label, set())
        for slot in g.slots:
            for b in slot:
                s = b % n_sets
                acc["events"] += g.element.count
                exact_set = s not in uncertain_sets and len(set_blocks[s]) <= ways
                if b not in counted:
                    counted.add(b)
                    exclusive = owners.get(b) == {label}
                    if exclusive:
                        acc["compulsory"] += 1
                        acc["lo"] += 1
                if exact_set:
                    # Set never evicts: only first touches miss.
                    pass
        # hi: events minus (exact-set hits + guaranteed hits)
        exact_hits = 0
        for slot in g.slots:
            for b in slot:
                s = b % n_sets
                if s not in uncertain_sets and len(set_blocks[s]) <= ways:
                    exact_hits += g.element.count
        # First touches in exact sets still miss; subtract hits only.
        first_touches_exact = sum(
            1
            for b in blocks
            if b % n_sets not in uncertain_sets
            and len(set_blocks[b % n_sets]) <= ways
        )
        exact_hits -= first_touches_exact
        acc["hi"] += _group_events(g) - max(exact_hits, 0)
    for (label, _s), hits in guaranteed_by_var.items():
        if lru and label in per:
            per[label]["hi"] -= hits
    out: Dict[str, MissInterval] = {}
    for label, acc in per.items():
        out[label] = MissInterval(
            lo=acc["lo"],
            hi=max(acc["hi"], acc["lo"]),
            events=acc["events"],
            compulsory=acc["compulsory"],
            conservative=bool(acc["unc"]) or image.conservative,
        )
    return out


def _group_events(g: ElementGroup) -> int:
    return g.element.count * sum(len(slot) for slot in g.slots)
