"""Render a :class:`LintReport` as text, JSON, or SARIF 2.1.0.

SARIF is the interchange format GitHub code-scanning (and most CI
annotators) consume; the emitter includes the full rule catalogue so
viewers can show titles and default severities even for codes absent
from this particular run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.lint.diagnostics import CODES, Diagnostic, LintReport, summarize

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "tdst-lint"
TOOL_VERSION = "1.0"

#: SARIF result levels by our severity (identical names, but keep the
#: mapping explicit — SARIF also has "none"/"note")
_SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}


def render_text(report: LintReport) -> str:
    """gcc-style one-line-per-finding listing plus a summary line."""
    lines = [d.render() for d in report.sorted()]
    lines.append(summarize(report))
    return "\n".join(lines)


def to_json(report: LintReport) -> Dict[str, Any]:
    """A stable JSON document (schema: ``tdst-lint/1``)."""
    return {
        "schema": f"{TOOL_NAME}/1",
        "files": list(report.files),
        "summary": report.counts(),
        "diagnostics": [_diag_json(d) for d in report.sorted()],
    }


def _diag_json(d: Diagnostic) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "code": d.code,
        "severity": d.severity,
        "message": d.message,
    }
    if d.path is not None:
        out["path"] = d.path
    if d.line is not None:
        out["line"] = d.line
    if d.column is not None:
        out["column"] = d.column
    if d.hint is not None:
        out["hint"] = d.hint
    return out


def to_sarif(report: LintReport) -> Dict[str, Any]:
    """A SARIF 2.1.0 log with the full rule catalogue embedded."""
    rules = [
        {
            "id": info.code,
            "shortDescription": {"text": info.title},
            "defaultConfiguration": {"level": _SARIF_LEVEL[info.severity]},
        }
        for info in CODES.values()
    ]
    results = [_sarif_result(d) for d in report.sorted()]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://example.invalid/tdst",
                        "rules": rules,
                    }
                },
                "artifacts": [
                    {"location": {"uri": path}} for path in report.files
                ],
                "results": results,
            }
        ],
    }


def _sarif_result(d: Diagnostic) -> Dict[str, Any]:
    message = d.message if d.hint is None else f"{d.message} (hint: {d.hint})"
    result: Dict[str, Any] = {
        "ruleId": d.code,
        "level": _SARIF_LEVEL[d.severity],
        "message": {"text": message},
    }
    if d.path is not None:
        region: Dict[str, Any] = {}
        if d.line is not None:
            region["startLine"] = d.line
            if d.column is not None:
                region["startColumn"] = d.column
        location: Dict[str, Any] = {
            "physicalLocation": {"artifactLocation": {"uri": d.path}}
        }
        if region:
            location["physicalLocation"]["region"] = region
        result["locations"] = [location]
    return result


def render(report: LintReport, fmt: str = "text") -> str:
    """Render in the chosen format (``text`` / ``json`` / ``sarif``)."""
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        return json.dumps(to_json(report), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(to_sarif(report), indent=2, sort_keys=True)
    raise ValueError(f"unknown lint output format {fmt!r}")


def write_report(report: LintReport, fmt: str, path: Optional[str]) -> None:
    """Write the rendered report to ``path`` atomically (stdout if None)."""
    text = render(report, fmt) + "\n"
    if path is None:
        import sys

        sys.stdout.write(text)
        return
    from repro.obsv.atomic import atomic_write

    with atomic_write(path) as handle:
        handle.write(text)
