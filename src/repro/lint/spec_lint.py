"""Lint campaign TOML specs before the scheduler spends anything.

Catches the failure classes the scheduler would otherwise surface one
worker-crash at a time: malformed TOML (TDST020), dangling ``file:``
rule references (TDST021 — deliberately *not* checked by
``validate_rule_ref``, which treats it as an execution-time concern),
invalid cache geometries (TDST023) and duplicate grid points (TDST022).
The ``[batch]`` table gets its own pass: invalid batch options are
TDST024 (checked *before* the whole-spec parse so one mistake yields one
diagnostic, not a TDST020/TDST024 pair), and batch setups that can never
group anything — ``max_configs = 1``, or a grid whose geometries the
batched kernel cannot cover — warn with TDST025.  The ``[service]``
table follows the same pattern under TDST026: unknown keys and bad shard
counts are errors (again stripped before the whole-spec parse), and
configurations that run but misbehave — knobs set while disabled,
``chunk_shards = 1`` chunk parallelism, a queue smaller than the shard
pool, a spec directory so deep the Unix-socket path overflows the OS
budget — warn.  Cross-file socket collisions (two enabled services under
one campaign name) are a corpus-level concern checked in
:func:`repro.lint.runner.lint_paths`.  Referenced rule files
are recursively linted with the full rule pass so a campaign fails fast
on an unsound rule file, not at job time.
"""

from __future__ import annotations

import tomllib
from pathlib import Path
from typing import Optional, Tuple

from repro.errors import CampaignError
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.obsv import get_telemetry


def lint_spec_text(
    text: str,
    *,
    path: Optional[str] = None,
    base_dir: Optional[Path] = None,
    lint_rule_refs: bool = True,
) -> LintReport:
    """Lint one campaign spec's TOML text.  Never raises on bad input.

    ``base_dir`` anchors relative ``file:`` references (defaults to the
    spec file's directory when ``path`` is given, else the cwd).
    """
    from repro.campaign.spec import BatchOptions, CampaignSpec, ServiceOptions

    tele = get_telemetry()
    report = LintReport()
    report.note_file(path)
    # Recursively linted rule files count their own diagnostics; track
    # them so the final tally only adds this spec's findings once.
    sub_counts = {sev: 0 for sev in ("error", "warning", "info")}
    if base_dir is None:
        base_dir = Path(path).parent if path else Path(".")

    with tele.phase("lint.spec", file=path or "<input>"):
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            report.add(
                Diagnostic(
                    code="TDST020",
                    message=f"invalid TOML: {exc}",
                    path=path,
                )
            )
            _count(tele, report)
            return report
        # [batch] table first, on its own code: a bad batch option should
        # read as TDST024, not as a generic TDST020 spec failure.  When it
        # is invalid, parse the rest of the spec without it so the other
        # passes still run (and no duplicate TDST020 is emitted).
        batch_opts: Optional[BatchOptions] = None
        try:
            batch_opts = BatchOptions.from_dict(data.get("batch", {}))
        except CampaignError as exc:
            report.add(
                Diagnostic(
                    code="TDST024",
                    message=str(exc),
                    path=path,
                    hint="known [batch] keys: enabled, chunk, max_configs",
                )
            )
            data = {k: v for k, v in data.items() if k != "batch"}
        # [service] table, same pattern: one bad option is one TDST026.
        service_table = data.get("service", {})
        service_opts: Optional[ServiceOptions] = None
        try:
            service_opts = ServiceOptions.from_dict(service_table)
        except CampaignError as exc:
            report.add(
                Diagnostic(
                    code="TDST026",
                    message=str(exc),
                    path=path,
                    hint=(
                        "known [service] keys: enabled, shards, "
                        "queue_capacity, chunk_parallel, chunk_shards, "
                        "min_chunk_records"
                    ),
                )
            )
            data = {k: v for k, v in data.items() if k != "service"}
        try:
            spec = CampaignSpec.from_dict(data)
        except CampaignError as exc:
            report.add(
                Diagnostic(code="TDST020", message=str(exc), path=path)
            )
            _count(tele, report)
            return report

        _lint_batch(report, spec, batch_opts, path)
        _lint_service(report, spec, service_opts, service_table, path, base_dir)

        # Cache geometries: CacheSpec construction is lazy about
        # legality; realise each one.
        seen_cache_errors = set()
        for cache in set(spec.caches) | {
            c for e in spec.grid for c in e.caches
        }:
            try:
                cache.to_config()
            except Exception as exc:
                key = str(exc)
                if key not in seen_cache_errors:
                    seen_cache_errors.add(key)
                    report.add(
                        Diagnostic(
                            code="TDST023",
                            message=f"cache {cache.label()!r}: {exc}",
                            path=path,
                        )
                    )

        # Duplicate grid points: the scheduler dedupes by artifact key,
        # so duplicates silently waste spec lines — warn.
        seen_points = set()
        for entry in spec.grid:
            for rule in entry.rules:
                for cache in spec.caches_for(entry):
                    for mode in spec.attribution:
                        point = (entry.kernel.lower(), entry.length, rule, cache, mode)
                        if point in seen_points:
                            report.add(
                                Diagnostic(
                                    code="TDST022",
                                    message=(
                                        f"grid point kernel={entry.kernel} "
                                        f"length={entry.length} rules={rule!r} "
                                        f"cache={cache.label()} appears more "
                                        "than once"
                                    ),
                                    path=path,
                                )
                            )
                        seen_points.add(point)

        # file: rule references — resolve and recursively lint.
        seen_refs = set()
        for entry in spec.grid:
            for rule in entry.rules:
                if not rule.startswith("file:"):
                    continue
                ref = rule[len("file:") :].strip()
                if ref in seen_refs:
                    continue
                seen_refs.add(ref)
                rule_path = Path(ref)
                if not rule_path.is_absolute():
                    rule_path = base_dir / rule_path
                if not rule_path.is_file():
                    report.add(
                        Diagnostic(
                            code="TDST021",
                            message=(
                                f"rule file {ref!r} not found "
                                f"(resolved to {rule_path})"
                            ),
                            path=path,
                        )
                    )
                    continue
                if lint_rule_refs:
                    from repro.lint.rules_lint import lint_rules_text

                    sub = lint_rules_text(
                        rule_path.read_text(encoding="utf-8"),
                        path=str(rule_path),
                    )
                    for severity, count in sub.counts().items():
                        sub_counts[severity] += count
                    report.extend(sub)

    _count(tele, report, sub_counts)
    return report


def _lint_batch(report: LintReport, spec, batch_opts, path) -> None:
    """TDST025: batching enabled but configured so it can never group.

    Skipped entirely when the ``[batch]`` table itself was invalid
    (already a TDST024) or batching is explicitly disabled.
    """
    from repro.simbatch.plan import batch_eligible

    if batch_opts is None or not batch_opts.enabled:
        return
    if batch_opts.max_configs == 1:
        report.add(
            Diagnostic(
                code="TDST025",
                message=(
                    "batch max_configs = 1 makes every batch a singleton; "
                    "each grid point runs as an ordinary per-config job"
                ),
                path=path,
                hint="raise max_configs or set [batch] enabled = false",
            )
        )
    eligible = False
    for entry in spec.grid:
        for cache in spec.caches_for(entry):
            try:
                if batch_eligible(cache.to_config()):
                    eligible = True
                    break
            except Exception:
                continue  # invalid geometry: already a TDST023
        if eligible:
            break
    if not eligible and spec.grid:
        report.add(
            Diagnostic(
                code="TDST025",
                message=(
                    "batching is enabled but no grid cache geometry is "
                    "batch-eligible (write-allocate direct-mapped or "
                    "set-associative LRU); every point will run per-config"
                ),
                path=path,
                hint="use policy = \"lru\" geometries or set [batch] enabled = false",
            )
        )


def _lint_service(
    report: LintReport, spec, service_opts, service_table, path, base_dir
) -> None:
    """TDST026 warnings: service configurations that run but misbehave.

    Skipped when the table itself was invalid (already an error).
    """
    if service_opts is None:
        return
    if not service_opts.enabled:
        knobs = set(service_table) - {"enabled"}
        if knobs:
            report.add(
                Diagnostic(
                    code="TDST026",
                    message=(
                        f"[service] sets {sorted(knobs)} but enabled is "
                        "false; the options have no effect"
                    ),
                    path=path,
                    severity="warning",
                    hint="set [service] enabled = true or drop the table",
                )
            )
        return
    if service_opts.chunk_parallel and service_opts.chunk_shards == 1:
        report.add(
            Diagnostic(
                code="TDST026",
                message=(
                    "chunk_parallel is on but chunk_shards = 1; every "
                    "simulate stage runs as a single chunk"
                ),
                path=path,
                severity="warning",
                hint="raise chunk_shards or set chunk_parallel = false",
            )
        )
    if service_opts.shards > 0 and service_opts.queue_capacity < service_opts.shards:
        report.add(
            Diagnostic(
                code="TDST026",
                message=(
                    f"queue_capacity ({service_opts.queue_capacity}) is "
                    f"below the shard count ({service_opts.shards}); "
                    "backpressure will idle workers"
                ),
                path=path,
                severity="warning",
                hint="raise queue_capacity to at least the shard count",
            )
        )
    # Unix-socket path budget: the scheduler binds <campaign dir>/
    # service.sock; a campaign directory under a deep spec directory
    # overflows sun_path and silently falls back to a tempdir socket.
    from repro.campaign.service.server import (
        _SOCKET_PATH_BUDGET,
        service_socket_path,
    )

    probable_dir = (base_dir / spec.name).resolve()
    candidate = str(probable_dir / "service.sock")
    if len(candidate.encode("utf-8")) > _SOCKET_PATH_BUDGET:
        fallback = service_socket_path(probable_dir)
        report.add(
            Diagnostic(
                code="TDST026",
                message=(
                    f"socket path {candidate!r} exceeds the "
                    f"{_SOCKET_PATH_BUDGET}-byte sun_path budget; the "
                    "service will bind a tempdir socket instead "
                    f"(e.g. {fallback!r})"
                ),
                path=path,
                severity="warning",
                hint="run the campaign from a shallower directory",
            )
        )


def _count(tele, report: LintReport, sub_counts=None) -> None:
    for severity, count in report.counts().items():
        count -= (sub_counts or {}).get(severity, 0)
        if count > 0:
            tele.add(f"lint.diagnostics.{severity}", count)
