"""Command-line interface: ``tdst`` (trace-driven structure transforms).

Subcommands mirror the paper's analysis cycle (its Figure 2):

- ``tdst trace``     — run a built-in kernel and write its Gleipnir trace
  (stands in for running the application under Valgrind+Gleipnir);
- ``tdst stats``     — quick trace statistics;
- ``tdst simulate``  — DineroIV-style cache simulation of a trace file
  (alias ``sim``; ``--fast`` streams it through the vectorized fast path
  in bounded memory, ``--check`` cross-validates a sampled window);
- ``tdst transform`` — apply a rule file, write ``transformed_trace.out``;
- ``tdst diff``      — structural diff of two traces (Figures 5/8/9);
- ``tdst figure``    — per-set figure data (+ optional gnuplot output);
- ``tdst simbatch``  — simulate a whole grid of cache configs against
  one trace in a single batched pass (columnar traces stream zero-copy);
- ``tdst campaign``  — run a whole experiment grid (every paper figure)
  in parallel with artifact caching, retries and a JSONL run manifest;
- ``tdst commit``    — record a trace (or a rule application) as a
  content-addressed commit in a trace store; ``tdst log`` walks the
  chain; ``tdst resim`` re-simulates a commit incrementally, resuming
  from stored residency snapshots;
- ``tdst verify``    — differential verification: transform soundness
  oracle, golden figure corpus, kernel agreement and rule fuzzing;
- ``tdst obsv``      — read telemetry profiles back (summary table,
  Chrome ``trace_event`` export).

Every subcommand accepts ``--profile [PATH]`` / ``--profile-trace
[PATH]`` to record per-phase spans, counters and peak RSS to a JSONL
profile and/or a chrome://tracing-loadable trace file (see
``docs/OBSERVABILITY.md``).

Commands that read a trace auto-detect the format by magic bytes, so
text, gzipped text and compact binary (``TDST``) traces are
interchangeable everywhere.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.ascii_plot import render_figure
from repro.analysis.gnuplot import write_gnuplot_data, write_gnuplot_script
from repro.analysis.per_set import figure_series
from repro.analysis.report import simulation_report
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.cache.threec import classify_misses
from repro.memory.paging import PageTable
from repro.trace.diff import diff_traces
from repro.trace.physical import to_physical
from repro.trace.stats import compute_stats
from repro.trace.stream import Trace
from repro.tracer.interp import trace_program
from repro.transform.engine import TransformEngine
from repro.transform.rule_parser import parse_rules_file
from repro.workloads.paper_kernels import PAPER_KERNELS, paper_kernel


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", type=int, default=32 * 1024, help="cache bytes")
    parser.add_argument("--block", type=int, default=32, help="block bytes")
    parser.add_argument(
        "--assoc", type=int, default=1, help="ways per set (0 = fully associative)"
    )
    parser.add_argument(
        "--policy",
        default="lru",
        help="replacement policy: lru fifo round-robin random plru",
    )
    parser.add_argument(
        "--ppc440",
        action="store_true",
        help="use the paper's PowerPC 440 preset (32K/32B/64-way round-robin)",
    )
    parser.add_argument(
        "--attribution",
        choices=("base", "member"),
        default="base",
        help="per-variable stat granularity",
    )
    parser.add_argument(
        "--physical",
        choices=("identity", "sequential", "random", "coloring"),
        help="rewrite the trace to physical addresses first "
        "(shared-cache study; see memory.paging)",
    )
    parser.add_argument(
        "--colors", type=int, default=16, help="page colours for --physical coloring"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for --physical random"
    )


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("profiling")
    group.add_argument(
        "--profile",
        nargs="?",
        const="profile.jsonl",
        metavar="PATH",
        help="record telemetry (phase spans, counters, peak RSS) to a "
        "JSONL profile (default PATH: profile.jsonl); summary on stderr",
    )
    group.add_argument(
        "--profile-trace",
        nargs="?",
        const="profile_trace.json",
        metavar="PATH",
        help="also write a Chrome trace_event file loadable in "
        "chrome://tracing or Perfetto (default PATH: profile_trace.json)",
    )


def _cache_config(args: argparse.Namespace) -> CacheConfig:
    if getattr(args, "ppc440", False):
        return CacheConfig.ppc440()
    return CacheConfig(
        size=args.size,
        block_size=args.block,
        associativity=args.assoc,
        policy=args.policy,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    program = paper_kernel(args.kernel, length=args.length)
    trace = trace_program(program)
    if args.binary:
        from repro.trace.binformat import save_binary

        save_binary(trace, args.output)
    else:
        trace.save(args.output)
    print(f"wrote {len(trace)} records to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = Trace.load_any(args.trace)
    print(compute_stats(trace).summary())
    return 0


def _apply_physical(trace: Trace, args: argparse.Namespace) -> Trace:
    if not getattr(args, "physical", None):
        return trace
    table = PageTable(args.physical, colors=args.colors, seed=args.seed)
    return to_physical(trace, table)


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.fast:
        return _cmd_simulate_fast(args)
    if args.check:
        print("error: --check requires --fast")
        return 2
    trace = _apply_physical(Trace.load_any(args.trace), args)
    result = simulate(trace, _cache_config(args), attribution=args.attribution)
    print(simulation_report(result, title=str(args.trace), plot=args.plot))
    return 0


def _cmd_simulate_fast(args: argparse.Namespace) -> int:
    """``tdst simulate --fast``: vectorized, chunked, bounded memory."""
    from repro.cache.fastsim import supports_fast_path
    from repro.cache.simulator import simulate_stream

    config = _cache_config(args)
    if getattr(args, "physical", None):
        print("error: --fast streams the trace file; --physical needs a "
              "materialized trace (drop one of the two)")
        return 2
    if not supports_fast_path(config):
        print(
            "error: no fast path covers this config (direct-mapped or "
            "set-associative LRU with write-allocate only); "
            "rerun without --fast"
        )
        return 2
    result = simulate_stream(args.trace, config, chunk_records=args.chunk)
    print(f"{args.trace} (fast path, {result.chunks} chunks)")
    print(result.summary())
    if args.check:
        return _check_fast_window(args, config)
    return 0


def _check_fast_window(args, config) -> int:
    """Cross-validate the fast path against the reference simulator on a
    sampled window of the trace; nonzero exit on any count mismatch."""
    import itertools

    from repro.trace.stream import iter_records
    from repro.verify.agreement import check_kernel_agreement

    window = itertools.islice(iter_records(args.trace), args.check_window)
    report = check_kernel_agreement(window, config)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_threec(args: argparse.Namespace) -> int:
    trace = _apply_physical(Trace.load_any(args.trace), args)
    report = classify_misses(
        trace, _cache_config(args), attribution=args.attribution
    )
    print(report.summary())
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    trace = Trace.load_any(args.trace)
    rules = parse_rules_file(args.rules)
    engine = TransformEngine(rules, strict=args.strict)
    result = engine.transform(trace)
    result.write(args.output)
    print(result.report.summary())
    print(f"wrote {len(result.trace)} records to {args.output}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    original = Trace.load_any(args.original)
    transformed = Trace.load_any(args.transformed)
    diff = diff_traces(original, transformed)
    print(diff.render(context=args.context))
    print(diff.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import (
        associativity_sweep,
        sweep_configs,
        sweep_table,
    )

    trace = _apply_physical(Trace.load_any(args.trace), args)
    configs = associativity_sweep(
        args.size, args.block, max_ways=args.max_ways, policy=args.policy
    )
    points = sweep_configs(
        trace, configs, attribution=args.attribution, workers=args.workers
    )
    print(sweep_table(points))
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    from repro.analysis.heatmap import compute_heatmap

    trace = _apply_physical(Trace.load_any(args.trace), args)
    heat = compute_heatmap(
        trace,
        _cache_config(args),
        window=args.window,
        variable=args.variable,
    )
    print(heat.render(columns=args.columns, kind=args.kind))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.ctypes_model.parser import parse_declarations
    from repro.transform.advisor import (
        field_usage,
        generate_candidates,
        rank_candidates,
        suggest_field_order,
        suggest_hot_cold_split,
    )

    trace = Trace.load_any(args.trace)
    decls = parse_declarations(Path(args.layout).read_text(encoding="utf-8"))
    variables = dict(decls.variables)
    for tag, ctype in decls.structs.items():
        variables.setdefault(tag, ctype)
    try:
        layout = variables[args.variable]
    except KeyError:
        print(f"error: {args.variable!r} not declared in {args.layout}")
        return 1
    usage = field_usage(trace, args.variable)
    print(f"field usage for {args.variable}:")
    for name, count in usage.most_common():
        print(f"  {name:<20s} {count}")
    split = suggest_hot_cold_split(
        trace, args.variable, layout, cold_threshold=args.cold_threshold
    )
    if split is not None:
        print(f"\nhot/cold split suggestion (hot={split.hot} cold={split.cold}):")
        print(split.rule_text(layout))
    else:
        print("\nno hot/cold split warranted")
    order = suggest_field_order(trace, args.variable, layout)
    print(f"field-order suggestion: {order.order}")

    # Cost-ranked candidate pool: static intervals prune the simulations,
    # `--no-cost-prune` simulates every candidate (same top-1, slower).
    config = _cache_config(args)
    records = list(trace)
    candidates = generate_candidates(records, args.variable, layout)
    ranking = rank_candidates(
        records, candidates, config, prune=not args.no_cost_prune
    )
    print(f"\nranked candidates ({config.describe()}):")
    for line in ranking.lines():
        print(f"  {line}")
    top = ranking.top
    if args.rules_out:
        if not top.candidate.is_identity:
            Path(args.rules_out).write_text(
                top.candidate.rule_text, encoding="utf-8"
            )
            print(
                f"wrote top candidate {top.candidate.label!r} "
                f"to {args.rules_out}"
            )
        elif split is not None:
            # The ranking is indifferent (no candidate beats the
            # unchanged layout on this geometry); fall back to the
            # heuristic hot/cold suggestion, which other geometries
            # may still benefit from.
            Path(args.rules_out).write_text(
                split.rule_text(layout), encoding="utf-8"
            )
            print(
                "\nno candidate beats the unchanged layout here; "
                f"wrote the hot/cold suggestion to {args.rules_out}"
            )
        else:
            print(
                "\ntop recommendation is the unchanged layout; "
                f"not writing {args.rules_out}"
            )
    return 0


def _cmd_simbatch(args: argparse.Namespace) -> int:
    """``tdst simbatch``: N cache configs against one trace, one pass.

    The config grid is the cross product of ``--sets`` x ``--assocs`` x
    ``--blocks`` (LRU replacement, the batched kernel's coverage);
    columnar (v2) trace files stream zero-copy from the memory map.
    """
    import json

    from repro.errors import CacheConfigError
    from repro.simbatch import plan_batch, simulate_batch

    configs = [
        CacheConfig(
            size=block * n_sets * assoc,
            block_size=block,
            associativity=assoc,
            policy="lru",
        )
        for block in args.blocks
        for n_sets in args.sets
        for assoc in args.assocs
    ]
    try:
        result = simulate_batch(
            args.trace,
            configs,
            chunk_records=args.chunk,
            attribution=args.attribution if args.by_variable else None,
        )
    except CacheConfigError as exc:
        print(f"error: {exc}")
        return 2
    if args.json:
        rows = []
        for config, counts in zip(result.configs, result.results):
            row = {
                "config": config.describe(),
                "accesses": counts.demand_accesses,
                "hits": counts.demand_hits,
                "misses": counts.demand_misses,
                "miss_ratio": round(counts.demand_miss_ratio, 6),
                "evictions": counts.evictions,
                "compulsory_misses": counts.counts.compulsory_misses,
            }
            if args.by_variable:
                row["by_variable_misses"] = {
                    name: counts.per_variable.get(vid, (0, 0))[1]
                    for vid, name in enumerate(result.names)
                }
            rows.append(row)
        print(json.dumps({"accesses": result.accesses, "results": rows}, indent=2))
        return 0
    plan = plan_batch(configs)
    print(
        f"{args.trace}: {result.accesses} accesses, "
        f"{plan.describe()}, {result.chunks} chunk(s)"
        + (f", {result.bytes_mapped} bytes mapped" if result.bytes_mapped else "")
    )
    header = f"{'config':<36s} {'misses':>9s} {'ratio':>8s} {'evict':>9s}"
    print(header)
    print("-" * len(header))
    for config, counts in zip(result.configs, result.results):
        print(
            f"{config.describe():<36s} {counts.demand_misses:>9d} "
            f"{counts.demand_miss_ratio:>8.4f} {counts.evictions:>9d}"
        )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.trace.binformat import load_binary, save_binary
    from repro.trace.columnar import load_columnar, save_columnar
    from repro.trace.dinero import read_dinero, write_dinero

    readers = {
        "text": Trace.load,
        "binary": load_binary,
        "columnar": load_columnar,
        "din": read_dinero,
    }
    writers = {
        "text": lambda t, p: t.save(p),
        "binary": lambda t, p: save_binary(t, p),
        "columnar": lambda t, p: save_columnar(t, p),
        "din": lambda t, p: write_dinero(t, p),
    }
    trace = readers[args.from_format](args.input)
    writers[args.to_format](trace, args.output)
    print(
        f"converted {len(trace)} records: {args.input} ({args.from_format}) "
        f"-> {args.output} ({args.to_format})"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """``tdst lint``: static analysis of rule files, layouts and specs.

    Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 when
    diagnostics fail the run, 2 when an input cannot be read at all.
    """
    from repro.ctypes_model.parser import parse_declarations
    from repro.errors import LintError
    from repro.lint import lint_paths, render, write_report

    model = None
    if args.model:
        try:
            model = parse_declarations(
                Path(args.model).read_text(encoding="utf-8")
            )
        except Exception as exc:
            print(f"error: cannot load model {args.model}: {exc}")
            return 2
    cache_config = None if args.no_sets else _cache_config(args)
    if args.cost and not args.trace:
        print("error: --cost needs --trace <trace> to digest")
        return 2
    try:
        report = lint_paths(args.paths, model=model, cache_config=cache_config)
    except LintError as exc:
        print(f"error: {exc}")
        return 2
    if args.cost:
        _lint_cost_pass(args, report)
    write_report(report, args.format, args.output)
    if args.output:
        print(f"wrote {args.format} report to {args.output}")
    failed = bool(report.errors) or (args.strict and report.warnings)
    return 1 if failed else 0


def _lint_cost_pass(args: argparse.Namespace, report) -> None:
    """``tdst lint --cost --trace <t>``: price every rule file statically.

    Digests the trace once, then evaluates each *parseable* rule file
    among the inputs against the chosen cache geometry, folding
    TDST040-047 findings into the main report.  Files that already
    failed to parse are skipped (their errors are in the report).
    """
    from repro.lint.cost import lint_cost
    from repro.lint.runner import _expand, detect_kind
    from repro.trace.digest import compute_digest

    digest = compute_digest(Trace.load_any(args.trace))
    config = _cache_config(args)
    for path in _expand(args.paths):
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            continue
        if detect_kind(path, text) != "rules":
            continue
        try:
            report.extend(
                lint_cost(text, digest, [config], path=str(path))
            )
        except Exception:
            continue  # unparseable rules: the main pass reported them


def _preflight_lint(spec_path: Path) -> int:
    """Mandatory campaign pre-flight: lint the spec (and, recursively,
    its ``file:`` rule references) before the scheduler spawns anything.
    Returns the number of errors found (0 = proceed)."""
    from repro.lint import lint_spec_text, render_text

    report = lint_spec_text(
        spec_path.read_text(encoding="utf-8"), path=str(spec_path)
    )
    if report.errors:
        print(render_text(report))
        print(
            "error: campaign spec failed pre-flight lint "
            "(--no-lint to run anyway)"
        )
    return len(report.errors)


def _cmd_campaign(args: argparse.Namespace) -> int:
    import dataclasses
    import os

    from repro.analysis.report import campaign_report
    from repro.campaign import (
        CampaignSpec,
        RunManifest,
        Scheduler,
        paper_figures_spec,
    )
    from repro.campaign.jobs import NO_FAST_ENV
    from repro.errors import CampaignError

    if args.no_fast:
        # Workers inherit the environment (fork), so this reaches them.
        os.environ[NO_FAST_ENV] = "1"
    directory = Path(args.dir)
    manifest_path = directory / "manifest.jsonl"
    if args.report:
        if not manifest_path.exists():
            print(f"error: no manifest at {manifest_path}")
            return 1
        rows = RunManifest.result_rows(RunManifest.read(manifest_path))
        print(campaign_report(rows))
        return 0
    if args.spec == "paper":
        spec = paper_figures_spec(length=args.length)
    else:
        spec_path = Path(args.spec)
        if not args.no_lint:
            try:
                if _preflight_lint(spec_path):
                    return 1
            except OSError as exc:
                print(f"error: {exc}")
                return 1
        try:
            spec = CampaignSpec.load(args.spec)
        except (CampaignError, OSError) as exc:
            print(f"error: {exc}")
            return 1
    if args.verify:
        spec = dataclasses.replace(spec, verify=True)
    scheduler = Scheduler(
        spec,
        directory,
        workers=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        resume=args.resume,
        batch=False if args.no_batch else None,
        tracestore=False if args.no_tracestore else None,
        service=(
            True if args.service else (False if args.no_service else None)
        ),
    )
    result = scheduler.run()
    print(result.summary())
    print()
    rows = RunManifest.result_rows(RunManifest.read(manifest_path))
    print(campaign_report(rows))
    # Graceful degradation: failed points are recorded, not fatal — the
    # exit code only signals a campaign that produced nothing at all.
    return 0 if (result.n_done + result.n_skipped) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """``tdst serve``: run a campaign service until a shutdown frame."""
    from repro.campaign.service import (
        ServiceConfig,
        serve_forever,
        service_socket_path,
    )
    from repro.errors import CampaignError

    directory = Path(args.dir)
    socket_path = args.socket or service_socket_path(directory)
    try:
        config = ServiceConfig(
            socket_path=socket_path,
            store_root=str(directory / "artifacts"),
            shards=args.shards,
            queue_capacity=args.queue_capacity,
            retries=args.retries,
            timeout=args.timeout,
            chunk_parallel=not args.no_chunks,
            chunk_shards=args.chunk_shards,
        )
    except CampaignError as exc:
        print(f"error: {exc}")
        return 2
    print(f"campaign service listening on {socket_path}")
    print(f"artifact store: {config.store_root}")
    try:
        serve_forever(config)
    except KeyboardInterrupt:
        print("interrupted")
    print("campaign service stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """``tdst submit``: run one ad-hoc simulation through a service."""
    import asyncio
    import dataclasses
    import json

    from repro.campaign.service import ProtocolError, ServiceClient
    from repro.campaign.spec import CacheSpec

    cache = CacheSpec(
        size=args.size, block=args.block, assoc=args.assoc, policy=args.policy
    )
    trace_path = str(Path(args.trace).resolve())
    job = {
        "kind": "simulate",
        "trace": trace_path,
        "cache": dataclasses.asdict(cache),
        "attribution": args.attribution,
    }
    job_id = f"submit/{trace_path}/{cache.label()}/{args.attribution}"

    async def _run() -> int:
        client = ServiceClient(args.socket, timeout=args.timeout)
        await client.connect()
        try:
            await client.submit(job_id, job)
            result = await client.result(job_id)
        finally:
            await client.close()
        if result.get("status") != "done":
            print(f"error: {result.get('error') or result.get('status')}")
            return 1
        print(json.dumps(result["payload"], indent=2, sort_keys=True))
        return 0

    try:
        return asyncio.run(_run())
    except (ProtocolError, OSError) as exc:
        print(f"error: {exc}")
        return 1


def _cmd_status(args: argparse.Namespace) -> int:
    """``tdst status``: query (and optionally stop) a campaign service."""
    import asyncio
    import json

    from repro.campaign.service import ProtocolError, ServiceClient

    async def _run() -> int:
        client = ServiceClient(args.socket, timeout=args.timeout)
        await client.connect()
        try:
            status = await client.status()
            status.pop("type", None)
            status.pop("re", None)
            print(json.dumps(status, indent=2, sort_keys=True))
            if args.shutdown:
                await client.shutdown()
                print("shutdown requested")
        finally:
            await client.close()
        return 0

    try:
        return asyncio.run(_run())
    except (ProtocolError, OSError) as exc:
        print(f"error: {exc}")
        return 1


def _cmd_commit(args: argparse.Namespace) -> int:
    """``tdst commit``: record a trace or a rule application as a commit.

    Two modes:

    - ``tdst commit TRACE --store DIR`` chunks and stores a raw trace as
      a parentless snapshot commit (idempotent: re-committing identical
      content writes nothing and prints the same id);
    - ``tdst commit --rules FILE --onto BASE --store DIR`` applies a
      rule file on top of an existing commit.  When ``--ref`` names a
      previous application of the same lineage, chunks the edit provably
      missed are reused instead of re-transformed.
    """
    from repro.errors import RuleError, TraceFormatError
    from repro.tracestore import TraceStore, apply_rules

    store = TraceStore(args.store)
    if args.rules:
        if not args.onto:
            print("error: --rules needs --onto BASE (commit or ref to transform)")
            return 2
        try:
            base = store.resolve(args.onto)
        except TraceFormatError as exc:
            print(f"error: {exc}")
            return 1
        rule_text = Path(args.rules).read_text(encoding="utf-8")
        prev = None
        if args.ref:
            prev_cid = store.get_ref(args.ref)
            if prev_cid is not None and store.has_commit(prev_cid):
                prev = store.read_commit(prev_cid)
        try:
            result = apply_rules(
                store,
                base,
                rule_text,
                prev=prev,
                message=args.message or f"apply {args.rules}",
            )
        except RuleError as exc:
            print(f"error: {exc}")
            return 1
        if args.ref:
            store.set_ref(args.ref, result.commit.id)
        print(
            f"[{result.commit.short_id}] transform of {base.short_id}: "
            f"{result.chunks_total} chunk(s), {result.chunks_reused} "
            f"reused, {result.chunks_transformed} transformed"
        )
        return 0
    if not args.trace:
        print("error: commit needs a TRACE file or --rules/--onto")
        return 2
    trace = Trace.load_any(args.trace)
    commit = store.commit_trace(
        trace,
        chunk_records=args.chunk,
        message=args.message or f"trace {args.trace}",
    )
    if args.ref:
        store.set_ref(args.ref, commit.id)
    print(
        f"[{commit.short_id}] snapshot: {commit.records} records in "
        f"{len(commit.chunks)} chunk(s)"
    )
    return 0


def _cmd_log(args: argparse.Namespace) -> int:
    """``tdst log``: walk a commit chain (or summarise the store)."""
    from repro.errors import TraceFormatError
    from repro.tracestore import TraceStore

    store = TraceStore(args.store)
    if args.stats or not args.ref:
        stats = store.stats()
        print(f"{store.root}:")
        for area in ("blobs", "commits", "snaps"):
            print(
                f"  {area:<8s} {stats[area]:>6d} object(s)  "
                f"{stats[f'{area}_bytes']:>12d} bytes"
            )
        for name, cid in sorted(store.refs().items()):
            print(f"  ref {name} -> {cid[:12]}")
        return 0
    try:
        commits = list(store.log(args.ref))
    except TraceFormatError as exc:
        print(f"error: {exc}")
        return 1
    for commit in commits:
        line = (
            f"{commit.short_id} {commit.kind:<9s} "
            f"{commit.records:>9d} records  {len(commit.chunks):>4d} chunk(s)"
        )
        if commit.rule_sha:
            line += f"  rules {commit.rule_sha[:8]}"
        if commit.message:
            line += f"  {commit.message}"
        print(line)
    return 0


def _cmd_resim(args: argparse.Namespace) -> int:
    """``tdst resim``: incrementally re-simulate a commit's trace.

    Restores the deepest residency snapshot whose chunk prefix matches,
    feeds only the remaining chunks, and stores new snapshots for the
    next run — the numbers are bit-identical to a cold full pass.
    """
    from repro.cache.fastsim import supports_fast_path
    from repro.errors import TraceFormatError
    from repro.tracestore import TraceStore, simulate_chain

    config = _cache_config(args)
    if not supports_fast_path(config):
        print(
            "error: resumable simulation needs a fast-path config "
            "(direct-mapped or set-associative LRU, write-allocate)"
        )
        return 2
    store = TraceStore(args.store)
    try:
        result = simulate_chain(
            store,
            args.ref,
            config,
            attribution=args.attribution,
            snapshots=not args.cold,
        )
    except TraceFormatError as exc:
        print(f"error: {exc}")
        return 1
    fields = result.fields()
    print(
        f"[{result.commit_id[:12]}] {result.chunks_total} chunk(s): "
        f"{result.chunks_skipped} restored from snapshot, "
        f"{result.chunks_simulated} simulated, "
        f"{result.snapshots_saved} snapshot(s) saved"
    )
    print(f"config:            {fields['config']}")
    print(f"accesses:          {fields['accesses']}")
    print(f"hits:              {fields['hits']}")
    print(f"misses:            {fields['misses']}")
    print(f"miss ratio:        {fields['miss_ratio']:.6f}")
    print(f"evictions:         {fields['evictions']}")
    print(f"compulsory misses: {fields['compulsory_misses']}")
    if fields["by_variable_misses"]:
        print("per-variable misses:")
        for name, misses in fields["by_variable_misses"].items():
            print(f"  {name:<20s} {misses}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """``tdst verify``: soundness + golden corpus + kernel agreement.

    Three modes, combinable:

    - ``--paper`` (the default with no arguments) replays the paper's
      T1/T2/T3 pipelines against the checked-in golden corpus;
    - ``ORIGINAL TRANSFORMED RULES`` soundness-checks an ad-hoc
      transformed trace pair against its rule file;
    - ``--fuzz N`` runs the hypothesis-driven rule-mutation harness.
    """
    exit_code = 0
    if args.original and not (args.transformed and args.rules):
        print("error: ad-hoc verification needs ORIGINAL TRANSFORMED RULES")
        return 2
    if args.original:
        from repro.verify.soundness import check_transform

        report = check_transform(
            Trace.load_any(args.original),
            Trace.load_any(args.transformed),
            parse_rules_file(args.rules),
        )
        print(report.summary())
        exit_code = max(exit_code, 0 if report.ok else 1)
    if args.paper or not (args.original or args.fuzz):
        from repro.verify.runner import verify_paper

        outcome = verify_paper(
            update_golden=True if args.update_golden else None,
            golden_dir=Path(args.golden_dir) if args.golden_dir else None,
        )
        print(outcome.summary())
        exit_code = max(exit_code, 0 if outcome.ok else 1)
    if args.fuzz:
        from repro.errors import VerifyError
        from repro.verify.fuzz import run_fuzz

        try:
            fuzz_report = run_fuzz(
                program_examples=max(args.fuzz // 3, 5),
                mutation_examples=args.fuzz,
                seed=args.fuzz_seed,
            )
        except VerifyError as exc:
            print(f"error: {exc}")
            return 2
        print(fuzz_report.summary())
        exit_code = max(exit_code, 0 if fuzz_report.ok else 1)
    return exit_code


def _cmd_obsv(args: argparse.Namespace) -> int:
    """``tdst obsv``: read a recorded telemetry profile back.

    - ``summarize PROFILE.jsonl`` renders the per-phase/counter table;
    - ``export-trace PROFILE.jsonl -o OUT.json`` converts a JSONL
      profile to Chrome ``trace_event`` format after the fact.
    """
    from repro.errors import ObservabilityError
    from repro.obsv import (
        read_jsonl_profile,
        render_summary,
        write_chrome_trace,
    )

    try:
        snapshot = read_jsonl_profile(args.profile_file)
    except (ObservabilityError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    if args.action == "summarize":
        print(render_summary(snapshot, title=str(args.profile_file)))
        return 0
    write_chrome_trace(snapshot, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    trace = Trace.load_any(args.trace)
    result = simulate(trace, _cache_config(args), attribution=args.attribution)
    figure = figure_series(result, title=str(args.trace))
    print(render_figure(figure))
    if args.dat:
        write_gnuplot_data(figure, args.dat)
        print(f"wrote {args.dat}")
        if args.gp:
            write_gnuplot_script(figure, args.dat, args.gp)
            print(f"wrote {args.gp}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tdst",
        description="Trace-driven data structure transformations (SC 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="trace a built-in kernel")
    p.add_argument("kernel", choices=sorted(PAPER_KERNELS))
    p.add_argument("--length", type=int, default=16)
    p.add_argument("-o", "--output", default="trace.out")
    p.add_argument(
        "--binary",
        action="store_true",
        help="write the compact TDST binary format instead of text",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("stats", help="trace statistics")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("simulate", aliases=["sim"], help="cache-simulate a trace")
    p.add_argument("trace")
    _add_cache_args(p)
    p.add_argument("--plot", action="store_true", help="include ASCII per-set plot")
    p.add_argument(
        "--fast",
        action="store_true",
        help="vectorized chunked simulation in bounded memory "
        "(direct-mapped or set-associative LRU configs)",
    )
    p.add_argument(
        "--chunk",
        type=int,
        default=65536,
        help="records per streaming chunk with --fast",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="with --fast: cross-validate against the reference simulator "
        "on a sampled window (nonzero exit on mismatch)",
    )
    p.add_argument(
        "--check-window",
        type=int,
        default=65536,
        help="records in the --check validation window",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "threec", help="compulsory/capacity/conflict miss classification"
    )
    p.add_argument("trace")
    _add_cache_args(p)
    p.set_defaults(func=_cmd_threec)

    p = sub.add_parser("transform", help="apply a rule file to a trace")
    p.add_argument("trace")
    p.add_argument("rules", help="rule file (in:/out:/inject: sections)")
    p.add_argument("-o", "--output", default="transformed_trace.out")
    p.add_argument("--strict", action="store_true")
    p.set_defaults(func=_cmd_transform)

    p = sub.add_parser("diff", help="diff two traces")
    p.add_argument("original")
    p.add_argument("transformed")
    p.add_argument("--context", type=int, default=2)
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "sweep", help="parallel associativity sweep over one trace"
    )
    p.add_argument("trace")
    _add_cache_args(p)
    p.add_argument("--max-ways", type=int, default=16)
    p.add_argument(
        "--workers", type=int, default=0, help="0 = serial, N = processes"
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("heatmap", help="time x set traffic heatmap")
    p.add_argument("trace")
    _add_cache_args(p)
    p.add_argument("--window", type=int, default=1000, help="accesses per row")
    p.add_argument("--columns", type=int, default=96)
    p.add_argument(
        "--kind", choices=("accesses", "hits", "misses"), default="accesses"
    )
    p.add_argument("--variable", help="restrict counting to one variable")
    p.set_defaults(func=_cmd_heatmap)

    p = sub.add_parser(
        "advise",
        help="suggest transformations for a structure from its trace",
    )
    p.add_argument("trace")
    p.add_argument("layout", help="C declaration file defining the structure")
    p.add_argument("variable", help="structure variable to analyse")
    p.add_argument("--cold-threshold", type=float, default=0.2)
    p.add_argument("--rules-out", help="write the best suggestion's rule file")
    p.add_argument(
        "--no-cost-prune",
        action="store_true",
        help="simulate every candidate instead of letting the static "
        "cost model skip provably-worse and provably-equivalent ones",
    )
    _add_cache_args(p)
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser(
        "convert", help="convert between text, binary and din trace formats"
    )
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument(
        "--from", dest="from_format",
        choices=("text", "binary", "columnar", "din"),
        default="text",
    )
    p.add_argument(
        "--to", dest="to_format",
        choices=("text", "binary", "columnar", "din"),
        default="binary",
    )
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser(
        "simbatch",
        help="simulate a grid of cache configs against one trace in a "
        "single batched pass",
    )
    p.add_argument("trace", help="trace file (columnar v2 streams zero-copy)")
    p.add_argument(
        "--sets", type=int, nargs="+", default=[128, 256, 512],
        help="numbers of sets to sweep",
    )
    p.add_argument(
        "--assocs", type=int, nargs="+", default=[1, 2, 4, 8],
        help="associativities to sweep (LRU replacement)",
    )
    p.add_argument(
        "--blocks", type=int, nargs="+", default=[32, 64],
        help="block sizes to sweep",
    )
    p.add_argument(
        "--chunk", type=int, default=65536,
        help="records per streamed chunk",
    )
    p.add_argument(
        "--by-variable", action="store_true",
        help="include per-variable miss counts (JSON output)",
    )
    p.add_argument(
        "--attribution", choices=("base", "member"), default="base",
        help="per-variable granularity with --by-variable",
    )
    p.add_argument("--json", action="store_true", help="JSON output")
    p.set_defaults(func=_cmd_simbatch)

    p = sub.add_parser(
        "campaign",
        help="run a declarative experiment grid with caching and retries",
    )
    p.add_argument(
        "spec",
        help="TOML campaign spec path, or the literal 'paper' for the "
        "built-in spec reproducing the paper's T1/T2/T3 studies",
    )
    p.add_argument(
        "--dir",
        default="campaign_out",
        help="campaign directory (artifacts/ + manifest.jsonl)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = inline)"
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds (needs --jobs >= 2)",
    )
    p.add_argument(
        "--retries", type=int, default=1, help="re-attempts per failing job"
    )
    p.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        help="base retry delay in seconds (doubles per attempt)",
    )
    p.add_argument(
        "--length",
        type=int,
        default=1024,
        help="array length for the built-in 'paper' spec",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs already completed in the existing manifest",
    )
    p.add_argument(
        "--report",
        action="store_true",
        help="render the before/after table from the manifest and exit",
    )
    p.add_argument(
        "--no-fast",
        action="store_true",
        help="force every grid point through the reference simulator "
        "instead of the vectorized fast path",
    )
    p.add_argument(
        "--no-batch",
        action="store_true",
        help="run every grid point as its own job instead of batching "
        "points that share a trace (also: TDST_NO_BATCH=1)",
    )
    p.add_argument(
        "--no-tracestore",
        action="store_true",
        help="run file: rule points through the classic transform+simulate "
        "stages instead of the incremental trace commit store "
        "(also: TDST_NO_TRACESTORE=1)",
    )
    p.add_argument(
        "--service",
        action="store_true",
        help="drive the run through the local asyncio campaign service "
        "(work-stealing shard workers, chunk-parallel simulation)",
    )
    p.add_argument(
        "--no-service",
        action="store_true",
        help="force the one-shot scheduler even when the spec's [service] "
        "table enables the service route (also: TDST_NO_SERVICE=1)",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="soundness-check every transformed trace as a post-job step "
        "(unsound points fail instead of charting bad numbers)",
    )
    p.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the mandatory pre-flight lint of the spec and its "
        "file: rule references",
    )
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the local campaign service (asyncio shard workers, "
        "work stealing, chunk-parallel simulation)",
    )
    p.add_argument(
        "--dir",
        default="campaign_out",
        help="service directory (artifacts/ + default socket location)",
    )
    p.add_argument(
        "--socket",
        default=None,
        help="unix socket path (default: DIR/service.sock, with a "
        "temp-dir fallback when the path is too long)",
    )
    p.add_argument(
        "--shards", type=int, default=2, help="shard workers"
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=1024,
        help="bounded job-queue capacity (the backpressure knob)",
    )
    p.add_argument(
        "--retries", type=int, default=1, help="re-attempts per failing job"
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds",
    )
    p.add_argument(
        "--no-chunks",
        action="store_true",
        help="disable trace-chunk-level parallel simulation",
    )
    p.add_argument(
        "--chunk-shards",
        type=int,
        default=4,
        help="chunk ranges per eligible simulate stage",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit one ad-hoc trace simulation to a running service",
    )
    p.add_argument("trace", help="trace file to simulate")
    p.add_argument("--socket", required=True, help="service unix socket path")
    p.add_argument("--size", type=int, default=32 * 1024, help="cache bytes")
    p.add_argument("--block", type=int, default=32, help="line bytes")
    p.add_argument("--assoc", type=int, default=1, help="ways per set")
    p.add_argument("--policy", default="lru", help="replacement policy")
    p.add_argument(
        "--attribution",
        default="base",
        choices=["base", "member"],
        help="per-variable miss attribution granularity",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="reply deadline per request in seconds",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "status",
        help="query a running campaign service (queue depths, counters)",
    )
    p.add_argument("--socket", required=True, help="service unix socket path")
    p.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the service to stop after reporting",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="reply deadline per request in seconds",
    )
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser(
        "commit",
        help="record a trace or a rule application as a content-addressed "
        "commit in a trace store",
    )
    p.add_argument(
        "trace", nargs="?", help="trace file to commit as a snapshot"
    )
    p.add_argument(
        "--store", default="tracestore", help="trace store directory"
    )
    p.add_argument(
        "--ref", help="ref name to point at the new commit (e.g. trace/main)"
    )
    p.add_argument(
        "--rules", help="rule file to apply (transform mode; needs --onto)"
    )
    p.add_argument(
        "--onto",
        help="base commit/ref the rule file applies to (transform mode)",
    )
    p.add_argument(
        "--chunk",
        type=int,
        default=65536,
        help="records per chunk blob when committing a snapshot",
    )
    p.add_argument("-m", "--message", help="commit message")
    p.set_defaults(func=_cmd_commit)

    p = sub.add_parser(
        "log",
        help="walk a trace-store commit chain (no REF: store summary)",
    )
    p.add_argument("ref", nargs="?", help="commit id, id prefix or ref name")
    p.add_argument(
        "--store", default="tracestore", help="trace store directory"
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print object counts, byte totals and refs instead of a chain",
    )
    p.set_defaults(func=_cmd_log)

    p = sub.add_parser(
        "resim",
        help="incrementally re-simulate a trace-store commit, resuming "
        "from stored residency snapshots",
    )
    p.add_argument("ref", help="commit id, id prefix or ref name")
    p.add_argument(
        "--store", default="tracestore", help="trace store directory"
    )
    _add_cache_args(p)
    p.add_argument(
        "--cold",
        action="store_true",
        help="ignore and do not write snapshots (full cold pass)",
    )
    p.set_defaults(func=_cmd_resim)

    p = sub.add_parser(
        "lint",
        help="static analysis of rule files, layout declarations and "
        "campaign specs (no trace needed)",
    )
    p.add_argument(
        "paths",
        nargs="+",
        help="files or directories (.rules / .toml / declaration files; "
        "directories recurse over *.rules and *.toml)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif = SARIF 2.1.0 for CI annotation)",
    )
    p.add_argument(
        "-o", "--output", help="write the report here instead of stdout"
    )
    p.add_argument(
        "--model",
        help="C declaration file; rule in: names and field paths are "
        "cross-checked against it (TDST013)",
    )
    p.add_argument(
        "--no-sets",
        action="store_true",
        help="skip the static cache-set footprint/conflict analysis",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the run (exit 1)",
    )
    p.add_argument(
        "--cost",
        action="store_true",
        help="run the static cost model (TDST040-047): predict miss-count "
        "intervals for each rule file against --trace without simulating",
    )
    p.add_argument(
        "--trace",
        help="trace file to digest for the --cost pass",
    )
    _add_cache_args(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "verify",
        help="differential verification: soundness oracle, golden corpus, "
        "kernel agreement, rule fuzzing",
    )
    p.add_argument(
        "original", nargs="?", help="original trace (ad-hoc mode)"
    )
    p.add_argument(
        "transformed", nargs="?", help="transformed trace (ad-hoc mode)"
    )
    p.add_argument("rules", nargs="?", help="rule file (ad-hoc mode)")
    p.add_argument(
        "--paper",
        action="store_true",
        help="verify the paper's T1/T2/T3 pipelines against the golden "
        "corpus (the default when no other mode is selected)",
    )
    p.add_argument(
        "--update-golden",
        action="store_true",
        help="regenerate the golden corpus instead of comparing "
        "(equivalent to UPDATE_GOLDEN=1)",
    )
    p.add_argument(
        "--golden-dir",
        help="read/write golden files here instead of the package data",
    )
    p.add_argument(
        "--fuzz",
        type=int,
        metavar="N",
        help="run N rule-mutation fuzz examples (plus N//3 random "
        "programs); needs the hypothesis package",
    )
    p.add_argument(
        "--fuzz-seed",
        type=int,
        help="randomize fuzzing with this seed (default: derandomized)",
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("figure", help="per-set figure data for a trace")
    p.add_argument("trace")
    _add_cache_args(p)
    p.add_argument("--dat", help="write gnuplot data file")
    p.add_argument("--gp", help="write gnuplot script (needs --dat)")
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "obsv", help="read telemetry profiles (summarize, export-trace)"
    )
    obsv_sub = p.add_subparsers(dest="action", required=True)
    q = obsv_sub.add_parser(
        "summarize", help="render the summary table of a JSONL profile"
    )
    q.add_argument("profile_file", help="profile written by --profile")
    q.set_defaults(func=_cmd_obsv)
    q = obsv_sub.add_parser(
        "export-trace",
        help="convert a JSONL profile to Chrome trace_event format",
    )
    q.add_argument("profile_file", help="profile written by --profile")
    q.add_argument("-o", "--output", default="profile_trace.json")
    q.set_defaults(func=_cmd_obsv)

    # Every subcommand records a profile on request; aliases (e.g.
    # ``sim``) share their parser object, hence the set().
    for sub_parser in set(sub.choices.values()):
        _add_profile_args(sub_parser)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse and dispatch; with ``--profile`` the run is telemetered.

    Profiling wraps the whole command in a ``tdst.<command>`` root span,
    samples peak RSS, writes the requested sink files (atomically, even
    when the command raises) and prints the summary table to stderr so
    stdout stays parseable.
    """
    args = build_parser().parse_args(argv)
    profile = getattr(args, "profile", None)
    profile_trace = getattr(args, "profile_trace", None)
    if not (profile or profile_trace):
        return args.func(args)

    from repro.obsv import (
        get_telemetry,
        render_summary,
        write_chrome_trace,
        write_jsonl_profile,
    )

    telemetry = get_telemetry()
    owned = not telemetry.enabled
    if owned:
        telemetry.reset()
        telemetry.enable()
    try:
        with telemetry.span(f"tdst.{args.command}", cat="cli"):
            return args.func(args)
    finally:
        telemetry.sample_rss()
        snapshot = telemetry.snapshot()
        if owned:
            telemetry.disable()
        if profile:
            write_jsonl_profile(snapshot, profile)
        if profile_trace:
            write_chrome_trace(snapshot, profile_trace)
        print(
            render_summary(snapshot, title=f"tdst {args.command}"),
            file=sys.stderr,
        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
