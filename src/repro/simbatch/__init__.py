"""Batched multi-config simulation over columnar traces.

The paper's methodology is a grid sweep: one trace, re-simulated under
dozens of cache geometries.  Run naively that re-reads, re-decodes and
re-expands the identical trace once per grid point.  This package
factors the shared work out:

- :mod:`repro.simbatch.plan` groups configurations by *geometry*
  (``block_size``, ``n_sets``) — members of a group share block
  expansion, set indexing, and one LRU stack-distance pass;
- :mod:`repro.simbatch.kernel` runs a single chunked pass over the
  address stream computing hit/miss/eviction and per-variable counts
  for every configuration simultaneously, bit-identical to
  :func:`repro.cache.fastsim.fast_trace_counts` per config;
- :mod:`repro.simbatch.runner` feeds the kernel from any trace source —
  a memory-mapped :class:`~repro.trace.columnar.ColumnarTrace` is the
  zero-copy fast path — and exposes the campaign-facing helpers.
"""

from repro.simbatch.kernel import MultiConfigSimulator, batch_trace_counts
from repro.simbatch.plan import (
    BatchPlan,
    GeometryGroup,
    batch_eligible,
    plan_batch,
)
from repro.simbatch.runner import (
    BatchResult,
    batch_simulation_fields,
    simulate_batch,
)

__all__ = [
    "BatchPlan",
    "BatchResult",
    "GeometryGroup",
    "MultiConfigSimulator",
    "batch_eligible",
    "batch_simulation_fields",
    "batch_trace_counts",
    "plan_batch",
    "simulate_batch",
]
