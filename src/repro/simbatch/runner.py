"""Feed the batched kernel from any trace source.

Three entry shapes, one kernel:

- :func:`simulate_batch` — the CLI/API front door.  Takes a path (a
  memory-mapped :class:`~repro.trace.columnar.ColumnarTrace` is the
  zero-copy fast path; v1 binary and text traces stream record by
  record), an open ``ColumnarTrace``, or any record iterable.
- :func:`batch_simulation_fields` — the campaign-facing form: produces
  per-config payload dicts *field-identical* to
  :func:`repro.campaign.jobs.simulation_fields`, so a batched grid
  point stores exactly the artifact a per-config run would.
- :class:`BatchResult` — counts per config plus the streaming telemetry
  (chunks, mapped bytes) the obsv layer reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.fastsim import FastTraceCounts
from repro.obsv.telemetry import get_telemetry
from repro.simbatch.kernel import MultiConfigSimulator
from repro.trace.record import AccessType, TraceRecord
from repro.trace.stream import DEFAULT_CHUNK_RECORDS, Trace

TraceSource = Union[str, Path, "ColumnarTrace", Trace, Iterable[TraceRecord]]


@dataclass(frozen=True)
class BatchResult:
    """Everything one batched pass produced."""

    configs: Tuple[CacheConfig, ...]
    #: per-config totals, parallel to ``configs``
    results: Tuple[FastTraceCounts, ...]
    #: demand accesses streamed (X records excluded)
    accesses: int
    chunks: int
    #: bytes memory-mapped (0 for non-columnar sources)
    bytes_mapped: int
    #: attribution-label table; per-config ``per_variable`` ids index it
    names: Tuple[str, ...] = ()

    def by_config(self) -> Dict[str, FastTraceCounts]:
        """``{config.describe(): counts}`` view."""
        return {
            c.describe(): r for c, r in zip(self.configs, self.results)
        }


def _feed_columnar(
    sim: MultiConfigSimulator,
    columnar,
    chunk_records: int,
    attribution: Optional[str],
) -> Tuple[int, List[str]]:
    """Stream a mapped columnar trace through the kernel in slices."""
    indices = columnar.data_indices()
    if attribution is not None:
        names, all_ids = columnar.attribution_ids(attribution)
    else:
        names, all_ids = [], None
    addrs = columnar.addrs
    sizes = columnar.sizes
    for start in range(0, len(indices), chunk_records):
        sel = indices[start : start + chunk_records]
        sim.feed(
            addrs[sel],
            sizes[sel],
            None if all_ids is None else all_ids[sel],
        )
    return len(indices), list(names)


def _feed_records(
    sim: MultiConfigSimulator,
    records: Iterable[TraceRecord],
    chunk_records: int,
    attribution: Optional[str],
) -> Tuple[int, List[str]]:
    """Stream decoded records through the kernel, interning labels."""
    from repro.cache.simulator import attribution_label

    name_ids: Dict[str, int] = {}
    names: List[str] = []
    addrs: List[int] = []
    sizes: List[int] = []
    var_ids: List[int] = []
    total = 0

    def flush() -> None:
        sim.feed(
            np.array(addrs, dtype=np.uint64),
            np.array(sizes, dtype=np.uint32),
            np.array(var_ids, dtype=np.int64) if attribution else None,
        )
        addrs.clear()
        sizes.clear()
        var_ids.clear()

    for record in records:
        if record.op is AccessType.MISC:
            continue
        addrs.append(record.addr)
        sizes.append(record.size)
        if attribution is not None:
            label = attribution_label(record, attribution)
            if label is None:
                var_ids.append(-1)
            else:
                vid = name_ids.get(label)
                if vid is None:
                    vid = name_ids[label] = len(names)
                    names.append(label)
                var_ids.append(vid)
        total += 1
        if len(addrs) >= chunk_records:
            flush()
    if addrs:
        flush()
    return total, names


def simulate_batch(
    source: TraceSource,
    configs: Sequence[CacheConfig],
    *,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    attribution: Optional[str] = None,
) -> BatchResult:
    """Simulate every config against one trace in a single pass.

    ``source`` may be a trace file path (columnar v2 streams zero-copy
    from the map; v1 binary and text decode record by record), an open
    :class:`~repro.trace.columnar.ColumnarTrace`, a :class:`Trace`, or
    any record iterable.  ``attribution`` (``"base"``/``"member"``)
    turns on per-variable counts; the returned
    :attr:`BatchResult.names` table maps their integer ids back to
    labels.
    """
    if chunk_records <= 0:
        raise ValueError(
            f"chunk_records must be positive, got {chunk_records}"
        )
    from repro.trace.columnar import ColumnarTrace, is_columnar

    tele = get_telemetry()
    sim = MultiConfigSimulator(configs)
    with tele.span(
        "simbatch.batch",
        cat="simbatch",
        configs=len(configs),
        groups=len(sim.plan.groups),
    ):
        opened: Optional[ColumnarTrace] = None
        bytes_mapped = 0
        try:
            if isinstance(source, (str, Path)) and is_columnar(source):
                source = opened = ColumnarTrace(source)
            if isinstance(source, ColumnarTrace):
                bytes_mapped = source.nbytes_mapped
                accesses, names = _feed_columnar(
                    sim, source, chunk_records, attribution
                )
            else:
                if isinstance(source, (str, Path)):
                    from repro.trace.stream import iter_records

                    source = iter_records(source)
                accesses, names = _feed_records(
                    sim, source, chunk_records, attribution
                )
        finally:
            if opened is not None:
                opened.close()
        results = sim.results()
    tele.add("simbatch.configs_per_batch", len(configs))
    tele.add("simbatch.chunks_streamed", sim.chunks_fed)
    tele.add("simbatch.bytes_mapped", bytes_mapped)
    tele.add("simbatch.cache_lookups", accesses * len(configs))
    return BatchResult(
        configs=tuple(configs),
        results=tuple(results),
        accesses=accesses,
        chunks=sim.chunks_fed,
        bytes_mapped=bytes_mapped,
        names=tuple(names),
    )


def batch_simulation_fields(
    trace: Trace,
    configs: Sequence[CacheConfig],
    attribution: str,
    *,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> List[Dict[str, Any]]:
    """Per-config simulation payloads from one shared pass.

    Each returned dict carries exactly the fields (names, rounding,
    ordering) of :func:`repro.campaign.jobs.simulation_fields`, so the
    batched campaign route stores byte-identical artifacts — the
    expensive per-record decode/label loop runs once for the whole
    config list instead of once per grid point.
    """
    result = simulate_batch(
        trace,
        configs,
        chunk_records=chunk_records,
        attribution=attribution,
    )
    name_ids = {name: vid for vid, name in enumerate(result.names)}
    payloads: List[Dict[str, Any]] = []
    for config, counts in zip(result.configs, result.results):
        payloads.append(
            {
                "config": config.describe(),
                "accesses": result.accesses,
                "hits": counts.demand_hits,
                "misses": counts.demand_misses,
                "miss_ratio": round(counts.demand_miss_ratio, 6),
                "evictions": counts.evictions,
                "compulsory_misses": counts.counts.compulsory_misses,
                "by_variable_misses": {
                    name: counts.per_variable[vid][1]
                    for name, vid in sorted(name_ids.items())
                },
            }
        )
    return payloads
