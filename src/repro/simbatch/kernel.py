"""The multi-config kernel: one pass, N configurations of answers.

Built directly on the fast-path machinery of
:mod:`repro.cache.fastsim`, with one twist: instead of a boolean hit
mask for a single associativity, :func:`_stack_positions` runs the same
time-step loop at the *group's* stack depth and records each access's
LRU **stack position** (reuse distance over its set's block stream).
Stack inclusion then answers every member at once::

    hit in a w-way cache  <=>  position < w        (w == 1: direct-mapped)

Everything downstream of the position array — per-set tallies, demand
accounting, per-variable attribution, evictions — is per-config
bincount bookkeeping, identical in definition (and, by the cross
validation suite, in value) to a :func:`fast_trace_counts` run per
config.

:class:`MultiConfigSimulator` is the chunked-streaming form, carrying
per-group residency between :meth:`feed` calls exactly like
:class:`repro.cache.fastsim.FastSimulator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CacheConfigError
from repro.cache.config import CacheConfig
from repro.cache.fastsim import (
    FastCounts,
    FastTraceCounts,
    _evictions_from,
    _expand_blocks,
    _validate_fast_config,
)
from repro.cache.stats import PerSetCounts
from repro.simbatch.plan import BatchPlan, GeometryGroup, plan_batch


def _stack_positions(
    blocks: np.ndarray,
    sets: np.ndarray,
    depth: int,
    stacks: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Trace-order LRU stack position of every access, at ``depth``.

    Returns an ``int16`` array: position ``p < depth`` means the block
    was the ``p``-th most-recently-used distinct block of its set
    (0 = MRU); ``depth`` means "not among the top ``depth``" — a miss
    for every member of the group.  ``stacks`` (``(n_sets, depth)``,
    MRU first, ``-1`` invalid) carries residency across chunks and is
    updated in place when given.

    The loop is :func:`repro.cache.fastsim._lru_hit_mask` in algorithm
    — same longest-stream-first layout, same promote-to-MRU update, so
    a depth-``w`` run produces exactly the hit mask the single-config
    kernel produces for ``w`` ways — but restructured for throughput:
    the sort key packs ``(set, trace index)`` into one int64 so a single
    value sort replaces argsort plus two random gathers, the per-set
    streams are transposed into *step-major* order once so every time
    step reads and writes one contiguous slice instead of gather/scatter
    fancy indexing, the match matrix carries an always-true sentinel
    column so one ``argmax`` yields position-or-miss without a separate
    ``any`` pass, and positions travel as int16 (stack depth is tiny) to
    cut scatter bandwidth.
    """
    n = len(blocks)
    if n == 0:
        return np.empty(n, dtype=np.int16)
    # int64 throughout: a uint64 block column would promote every
    # window comparison below to float64 (NEP 50), which both costs a
    # conversion per step and risks precision above 2**53.
    blocks = np.asarray(blocks).astype(np.int64, copy=False)
    # Stable sort by set via one packed key: (set << shift) | index.
    # Sorting values is cheaper than argsort + gathers, and the low
    # bits hand back the permutation for free.
    shift = max(1, int(n - 1).bit_length())
    key = np.left_shift(np.asarray(sets, dtype=np.int64), shift)
    key += np.arange(n, dtype=np.int64)
    key.sort(kind="stable")
    order = key & np.int64((1 << shift) - 1)
    ss = key >> shift
    sb = blocks[order]
    # Run-collapse: a repeat of the immediately preceding block of the
    # same set is an MRU hit (position 0) that leaves the stack
    # untouched, so only the first access of each run enters the
    # time-step loop.  Sequential traffic collapses several-fold here.
    dup = np.empty(n, dtype=bool)
    dup[0] = False
    np.logical_and(ss[1:] == ss[:-1], sb[1:] == sb[:-1], out=dup[1:])
    keep = np.flatnonzero(~dup)
    ss = ss[keep]
    sb = sb[keep]
    n_kept = len(keep)
    # ``ss`` is sorted: group boundaries fall out of one diff, no
    # second sort (np.unique would re-sort what argsort just ordered).
    bounds = np.flatnonzero(ss[1:] != ss[:-1]) + 1
    group_start = np.concatenate(([0], bounds))
    group_sets = ss[group_start]
    group_count = np.diff(np.concatenate((group_start, [n_kept])))
    by_depth = np.argsort(-group_count, kind="stable")
    g_sets = group_sets[by_depth]
    g_count = group_count[by_depth]
    n_groups = len(g_sets)
    if stacks is None:
        local = np.full((n_groups, depth), -1, dtype=np.int64)
    else:
        local = stacks[g_sets].copy()
    # Step-major transpose: the step-t access of every active set (sets
    # ordered longest-stream-first, so the active ones are a prefix)
    # lands in one contiguous slice [offsets[t], offsets[t+1]).
    max_steps = int(g_count[0])
    active = np.searchsorted(
        -g_count, -np.arange(max_steps, dtype=np.int64), side="left"
    )
    offsets = np.empty(max_steps + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(active, out=offsets[1:])
    step_of = (
        np.arange(n_kept, dtype=np.int64) - np.repeat(group_start, group_count)
    )
    rank = np.empty(n_groups, dtype=np.int64)
    rank[by_depth] = np.arange(n_groups, dtype=np.int64)
    slot = offsets[step_of] + np.repeat(rank, group_count)
    sb_step = np.empty(n_kept, dtype=np.int64)
    sb_step[slot] = sb
    pos_step = np.empty(n_kept, dtype=np.int16)
    cols = np.arange(depth, dtype=np.int64)
    width = int(active[0])
    # Sentinel column: argmax over [match | True] returns the match
    # position, or ``depth`` when the block is absent — no ``any`` pass.
    match_buf = np.empty((width, depth + 1), dtype=bool)
    match_buf[:, depth] = True
    mask_buf = np.empty((width, depth), dtype=bool)
    shift_buf = np.empty((width, depth), dtype=np.int64)
    for t in range(max_steps):
        start, end = offsets[t], offsets[t + 1]
        na = end - start
        b = sb_step[start:end]
        window = local[:na]
        np.equal(window, b[:, None], out=match_buf[:na, :depth])
        matchpos = match_buf[:na].argmax(axis=1)
        pos_step[start:end] = matchpos
        shifted = shift_buf[:na]
        shifted[:, 0] = b
        shifted[:, 1:] = window[:, :-1]
        np.less_equal(cols, matchpos[:, None], out=mask_buf[:na])
        np.copyto(window, shifted, where=mask_buf[:na])
    # Collapsed repeats are position 0; everything else scatters back
    # through its original trace index (int16 keeps the traffic small).
    positions = np.zeros(n, dtype=np.int16)
    positions[order[keep]] = pos_step[slot]
    if stacks is not None:
        stacks[g_sets] = local
    return positions


class _GroupHistograms:
    """One chunk's position histograms for a geometry group.

    Stack inclusion turns every member question into a prefix sum over
    the position axis: a ``w``-way member's hits are the positions
    ``< w``.  So one pass over the group's blocks builds cumulative
    histograms along that axis — per set (for per-set tallies), per
    access (for demand accounting: an access hits iff the *max*
    position across its blocks is below ``ways``), and per owning
    variable — and every member then reads its answers from column
    ``ways - 1`` without touching the O(n) arrays again.
    """

    __slots__ = ("set_cum", "set_total", "access_cum", "owner_ids",
                 "owner_cum", "n_blocks")

    def __init__(
        self,
        sets: np.ndarray,
        pos: np.ndarray,
        access_index: np.ndarray,
        n_accesses: int,
        owners: Optional[np.ndarray],
        n_sets: int,
        depth: int,
    ) -> None:
        self.n_blocks = len(pos)
        width = depth + 1
        key = sets.astype(np.int64) * width
        key += pos
        set_hist = np.bincount(key, minlength=n_sets * width)
        self.set_cum = set_hist.reshape(n_sets, width).cumsum(axis=1)
        self.set_total = self.set_cum[:, -1]
        if len(pos) == n_accesses:
            maxpos = pos
        else:
            # ``access_index`` is non-decreasing (expansion preserves
            # trace order), so per-access segments are runs.
            starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(access_index)) + 1)
            )
            maxpos = np.maximum.reduceat(pos, starts)
        self.access_cum = np.bincount(maxpos, minlength=width).cumsum()
        if owners is None:
            self.owner_ids = None
            self.owner_cum = None
        else:
            self.owner_ids, inverse = np.unique(owners, return_inverse=True)
            okey = inverse.astype(np.int64) * width
            okey += pos
            owner_hist = np.bincount(
                okey, minlength=len(self.owner_ids) * width
            )
            self.owner_cum = owner_hist.reshape(-1, width).cumsum(axis=1)


class _MemberTotals:
    """Running per-config accumulators (one instance per member)."""

    __slots__ = (
        "config",
        "per_set",
        "block_hits",
        "block_misses",
        "demand_hits",
        "demand_accesses",
        "per_variable",
    )

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.per_set = PerSetCounts.zeros(config.n_sets)
        self.block_hits = 0
        self.block_misses = 0
        self.demand_hits = 0
        self.demand_accesses = 0
        self.per_variable: Dict[int, List[int]] = {}

    def absorb(self, hist: "_GroupHistograms", n_accesses: int) -> None:
        """Fold one chunk's group histograms in, thresholded at ``ways``.

        All the O(n) work happened once per *group* when ``hist`` was
        built; each member only reads tiny ``(n_sets, depth+1)`` and
        ``(depth+1,)`` tables here.
        """
        w = self.config.ways
        hits_per_set = hist.set_cum[:, w - 1]
        self.per_set.hits += hits_per_set
        self.per_set.misses += hist.set_total - hits_per_set
        block_hits = int(hits_per_set.sum())
        self.block_hits += block_hits
        self.block_misses += hist.n_blocks - block_hits
        # A demand access hits iff *every* block it touches hits, i.e.
        # iff the max stack position across its blocks is < ways.
        self.demand_hits += int(hist.access_cum[w - 1])
        self.demand_accesses += n_accesses
        if hist.owner_cum is not None:
            owner_hits = hist.owner_cum[:, w - 1]
            owner_total = hist.owner_cum[:, -1]
            for row, vid in enumerate(hist.owner_ids):
                entry = self.per_variable.setdefault(int(vid), [0, 0])
                entry[0] += int(owner_hits[row])
                entry[1] += int(owner_total[row] - owner_hits[row])

    def finish(self, compulsory: int) -> FastTraceCounts:
        per_set = PerSetCounts(
            hits=self.per_set.hits.copy(), misses=self.per_set.misses.copy()
        )
        counts = FastCounts(
            self.block_hits, self.block_misses, compulsory, per_set
        )
        return FastTraceCounts(
            counts=counts,
            demand_hits=self.demand_hits,
            demand_misses=self.demand_accesses - self.demand_hits,
            evictions=_evictions_from(per_set, self.config.ways),
            per_variable={
                vid: (h, m) for vid, (h, m) in self.per_variable.items()
            },
        )


class MultiConfigSimulator:
    """Stateful batched fast path: N configs, one chunked stream.

    Every config must satisfy
    :func:`repro.simbatch.plan.batch_eligible`.  All geometry groups
    share a *single* stack pass per chunk: each group's sets are mapped
    into a disjoint range of one virtual set space, the per-group block
    streams are concatenated, and one time-step loop (at the global
    ``max(ways)`` depth — stack inclusion makes extra depth harmless)
    answers every group at once.  Residency (one row of the fused stack
    matrix per virtual set) is carried between :meth:`feed` calls, so
    chunked totals equal a whole-trace pass — and equal a per-config
    :class:`FastSimulator` run, bit for bit.
    """

    def __init__(self, configs: Sequence[CacheConfig]) -> None:
        configs = list(configs)
        if not configs:
            raise CacheConfigError("batched simulation needs >= 1 config")
        for config in configs:
            _validate_fast_config(config)
        self.plan: BatchPlan = plan_batch(configs)
        if self.plan.ineligible:
            labels = ", ".join(
                m.config.describe() for m in self.plan.ineligible[:3]
            )
            raise CacheConfigError(
                f"{len(self.plan.ineligible)} config(s) have no batched "
                f"fast path ({labels}{'...' if len(self.plan.ineligible) > 3 else ''}); "
                "route them through the reference simulator instead"
            )
        self.configs = configs
        self._totals = [_MemberTotals(c) for c in configs]
        #: one stack depth for the fused pass: the deepest member anywhere
        self._depth = max(g.depth for g in self.plan.groups)
        #: each group's sets occupy [base, base + n_sets) of the virtual
        #: set space, so one stack matrix carries every group's residency
        self._bases: List[int] = []
        total_sets = 0
        for group in self.plan.groups:
            self._bases.append(total_sets)
            total_sets += group.n_sets
        self._stacks = np.full((total_sets, self._depth), -1, dtype=np.int64)
        #: per-block-size distinct blocks seen (compulsory misses)
        self._seen: Dict[int, set] = {bs: set() for bs in self.plan.block_sizes}
        self._compulsory: Dict[int, int] = {
            bs: 0 for bs in self.plan.block_sizes
        }
        self._chunks = 0

    @property
    def chunks_fed(self) -> int:
        return self._chunks

    def feed(
        self,
        addrs: np.ndarray,
        sizes: Optional[np.ndarray] = None,
        var_ids: Optional[np.ndarray] = None,
    ) -> None:
        """Advance every config through one chunk of the access stream.

        ``var_ids`` (optional int labels per access, negative =
        unattributed) enables per-variable attribution; expanded blocks
        inherit their owning access's label exactly like
        :func:`fast_trace_counts`.
        """
        addrs = np.asarray(addrs, dtype=np.uint64)
        n_accesses = len(addrs)
        self._chunks += 1
        if n_accesses == 0:
            return
        if sizes is None:
            sizes = np.ones(n_accesses, dtype=np.uint32)
        labels = (
            None if var_ids is None else np.asarray(var_ids, dtype=np.int64)
        )
        # Shared stage 1: block expansion, once per distinct block size.
        expanded: Dict[int, Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]] = {}
        for block_size in self.plan.block_sizes:
            blocks, access_index = _expand_blocks(addrs, sizes, block_size)
            blocks = blocks.astype(np.int64, copy=False)
            owners = None if labels is None else labels[access_index]
            expanded[block_size] = (blocks, access_index, owners)
            seen = self._seen[block_size]
            new = set(np.unique(blocks).tolist()) - seen
            seen |= new
            self._compulsory[block_size] += len(new)
        # Shared stage 2: ONE fused stack pass for every geometry group
        # (disjoint virtual set ranges), then one histogram build per
        # group and O(depth) bookkeeping per member.
        group_sets: List[np.ndarray] = []
        fused_blocks: List[np.ndarray] = []
        fused_vsets: List[np.ndarray] = []
        for group, base in zip(self.plan.groups, self._bases):
            blocks = expanded[group.block_size][0]
            local = blocks & np.int64(group.n_sets - 1)
            group_sets.append(local)
            fused_blocks.append(blocks)
            fused_vsets.append(local + base)
        positions = _stack_positions(
            np.concatenate(fused_blocks),
            np.concatenate(fused_vsets),
            self._depth,
            self._stacks,
        )
        offset = 0
        for group, sets in zip(self.plan.groups, group_sets):
            blocks, access_index, owners = expanded[group.block_size]
            pos = positions[offset : offset + len(blocks)]
            offset += len(blocks)
            hist = _GroupHistograms(
                sets, pos, access_index, n_accesses, owners,
                group.n_sets, self._depth,
            )
            for member in group.members:
                self._totals[member.index].absorb(hist, n_accesses)

    def results(self) -> List[FastTraceCounts]:
        """Per-config totals over everything fed, in input order."""
        return [
            totals.finish(self._compulsory[totals.config.block_size])
            for totals in self._totals
        ]


def batch_trace_counts(
    addrs: np.ndarray,
    configs: Sequence[CacheConfig],
    sizes: Optional[np.ndarray] = None,
    var_ids: Optional[np.ndarray] = None,
) -> List[FastTraceCounts]:
    """One-shot batched pass: whole stream, all configs, input order."""
    sim = MultiConfigSimulator(configs)
    sim.feed(addrs, sizes, var_ids)
    return sim.results()
