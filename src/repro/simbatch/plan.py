"""Batch planning: group cache configurations by shared geometry.

The batching algebra rests on two facts:

1. **Set indexing depends only on geometry.**  The set of a block is
   ``block & (n_sets - 1)`` and the block of an address is
   ``addr // block_size`` — so every config sharing ``(block_size,
   n_sets)`` sees the *identical* per-set access streams.

2. **LRU stack inclusion** (Mattson et al., 1970).  A ``w``-way LRU set
   always holds exactly the ``w`` most-recently-used distinct blocks of
   its stream — the top ``w`` entries of the unbounded LRU stack.  One
   stack-distance pass at depth ``max(ways)`` therefore answers *every*
   associativity in the group at once: an access hits a ``w``-way cache
   iff its block sits at stack position ``< w``, and direct-mapped is
   the ``w == 1`` special case.

So a grid of N configs collapses to one block expansion per distinct
``block_size`` and one stack pass per distinct ``(block_size, n_sets)``
— the per-config work left over is bincount bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.cache.config import CacheConfig
from repro.cache.fastsim import supports_fast_path


def batch_eligible(config: CacheConfig) -> bool:
    """Whether ``config`` can join a batched pass.

    Exactly the fast-path coverage matrix
    (:func:`repro.cache.fastsim.supports_fast_path`): write-allocate,
    direct-mapped or true-LRU, not fully associative.  Round-robin and
    PLRU configs break stack inclusion and must run per-config.
    """
    return supports_fast_path(config)


@dataclass(frozen=True)
class GroupMember:
    """One configuration inside a geometry group."""

    #: position in the caller's config list (results come back in order)
    index: int
    config: CacheConfig

    @property
    def ways(self) -> int:
        return self.config.ways


@dataclass(frozen=True)
class GeometryGroup:
    """Configs sharing ``(block_size, n_sets)`` — one stack pass total."""

    block_size: int
    n_sets: int
    members: Tuple[GroupMember, ...]

    @property
    def depth(self) -> int:
        """Stack depth of the shared pass: the group's deepest config."""
        return max(m.ways for m in self.members)

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class BatchPlan:
    """How a config list decomposes into shared-work groups."""

    groups: Tuple[GeometryGroup, ...]
    #: ``(index, config)`` pairs no batched kernel covers
    ineligible: Tuple[GroupMember, ...]

    @property
    def n_configs(self) -> int:
        return sum(len(g) for g in self.groups) + len(self.ineligible)

    @property
    def n_batched(self) -> int:
        return sum(len(g) for g in self.groups)

    @property
    def block_sizes(self) -> Tuple[int, ...]:
        """Distinct block sizes = number of block expansions needed."""
        return tuple(sorted({g.block_size for g in self.groups}))

    def describe(self) -> str:
        """One-line shape summary for logs and telemetry."""
        return (
            f"{self.n_batched} configs in {len(self.groups)} geometry "
            f"group(s) over {len(self.block_sizes)} block size(s)"
            + (f", {len(self.ineligible)} ineligible" if self.ineligible else "")
        )


def plan_batch(configs: Sequence[CacheConfig]) -> BatchPlan:
    """Group ``configs`` by shared geometry.

    Order within a group follows the input order, and result arrays are
    always indexed by the input position, so callers never re-match
    configs to results.  Ineligible configs are *planned around*, not
    rejected — the caller decides whether to fall back per-config or
    refuse.
    """
    by_geometry: dict = {}
    ineligible = []
    for index, config in enumerate(configs):
        member = GroupMember(index=index, config=config)
        if not batch_eligible(config):
            ineligible.append(member)
            continue
        key = (config.block_size, config.n_sets)
        by_geometry.setdefault(key, []).append(member)
    groups = tuple(
        GeometryGroup(block_size=bs, n_sets=ns, members=tuple(members))
        for (bs, ns), members in sorted(by_geometry.items())
    )
    return BatchPlan(groups=groups, ineligible=tuple(ineligible))
