"""The C type hierarchy and SysV x86-64 ABI layout computation.

Types are immutable value objects.  A type knows its ``size`` (``sizeof``),
its ``alignment`` (``_Alignof``) and how to navigate *into* itself:

- ``resolve(path_elements)`` walks a :class:`~repro.ctypes_model.path`
  element list and returns ``(offset, leaf_type)``;
- ``path_at(offset)`` does the inverse: given a byte offset it returns the
  deepest path that contains the offset, which is how the symbol table turns
  a raw address back into ``glStructArray[1].myArray[1]`` strings;
- ``iter_leaves()`` enumerates every scalar (primitive or pointer) component
  with its offset, which drives address-map construction in the
  transformation engine.

Layout rules implemented (System V AMD64 ABI §3.1):

- primitives have natural alignment equal to their size (with ``long double``
  at 16);
- a struct member is placed at the next multiple of its alignment;
- a struct's alignment is the maximum member alignment; its size is padded
  up to a multiple of that alignment;
- a union's size is the maximum member size padded to the maximum alignment;
- array alignment equals element alignment; the stride is exactly
  ``sizeof(element)`` (the element size already includes padding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

from repro.errors import LayoutError, PathError
from repro.ctypes_model.path import Field, Index, PathElement

#: Size (and alignment) of every data pointer on the modelled machine.
POINTER_SIZE = 8


def _align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise LayoutError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


class CType:
    """Abstract base for all C types.

    Subclasses must provide :attr:`size`, :attr:`alignment` and a C-ish
    spelling via :meth:`c_name`.
    """

    #: sizeof(T) in bytes.
    size: int
    #: _Alignof(T) in bytes.
    alignment: int

    def c_name(self) -> str:
        """Return the C spelling of this type (``int``, ``struct foo``...)."""
        raise NotImplementedError

    # -- navigation ------------------------------------------------------

    def resolve(self, elements: Sequence[PathElement]) -> Tuple[int, "CType"]:
        """Walk ``elements`` into this type.

        Returns ``(byte_offset, leaf_type)``.  Raises :class:`PathError` if
        an element does not apply (indexing a scalar, unknown field...).
        """
        offset = 0
        current: CType = self
        for elem in elements:
            step_offset, current = current._step(elem)
            offset += step_offset
        return offset, current

    def _step(self, elem: PathElement) -> Tuple[int, "CType"]:
        """Apply a single path element; overridden by aggregates."""
        raise PathError(f"cannot apply {elem!r} to {self.c_name()}")

    def path_at(self, offset: int) -> Tuple[PathElement, ...]:
        """Return the deepest path whose storage contains ``offset``.

        For scalars the path is empty.  ``offset`` that falls into struct
        padding resolves to the empty path at that aggregate level.
        """
        if not 0 <= offset < max(self.size, 1):
            raise PathError(
                f"offset {offset} outside {self.c_name()} of size {self.size}"
            )
        return ()

    def iter_leaves(self) -> Iterator[Tuple[Tuple[PathElement, ...], int, "CType"]]:
        """Yield ``(path, offset, scalar_type)`` for every scalar component."""
        yield (), 0, self

    # -- classification --------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        """True for primitives and pointers (directly load/storable)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.c_name()} size={self.size}>"


@dataclass(frozen=True)
class PrimitiveType(CType):
    """A fundamental C type (``int``, ``double``, ``char``...)."""

    name: str
    size: int
    alignment: int

    def c_name(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    """A data pointer.  All pointers are 8 bytes on the modelled machine.

    ``pointee_name`` is kept as a *name* rather than a type object so that
    rule files can reference structures that are declared later (and so that
    self-referential types such as linked-list nodes are representable).
    """

    pointee_name: str
    size: int = POINTER_SIZE
    alignment: int = POINTER_SIZE

    def c_name(self) -> str:
        return f"{self.pointee_name} *"


@dataclass(frozen=True)
class ArrayType(CType):
    """A fixed-length C array ``T[length]``."""

    element: CType
    length: int
    size: int = field(init=False)
    alignment: int = field(init=False)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise LayoutError(f"array length must be positive, got {self.length}")
        object.__setattr__(self, "size", self.element.size * self.length)
        object.__setattr__(self, "alignment", self.element.alignment)

    def c_name(self) -> str:
        return f"{self.element.c_name()}[{self.length}]"

    @property
    def stride(self) -> int:
        """Distance in bytes between consecutive elements."""
        return self.element.size

    @property
    def is_scalar(self) -> bool:
        return False

    def _step(self, elem: PathElement) -> Tuple[int, CType]:
        if not isinstance(elem, Index):
            raise PathError(f"expected an index into {self.c_name()}, got {elem!r}")
        if not 0 <= elem.value < self.length:
            raise PathError(
                f"index {elem.value} out of bounds for {self.c_name()}"
            )
        return elem.value * self.stride, self.element

    def path_at(self, offset: int) -> Tuple[PathElement, ...]:
        if not 0 <= offset < self.size:
            raise PathError(
                f"offset {offset} outside {self.c_name()} of size {self.size}"
            )
        index = offset // self.stride
        inner = self.element.path_at(offset - index * self.stride)
        return (Index(index), *inner)

    def iter_leaves(self) -> Iterator[Tuple[Tuple[PathElement, ...], int, CType]]:
        for i in range(self.length):
            base = i * self.stride
            for sub_path, sub_off, leaf in self.element.iter_leaves():
                yield (Index(i), *sub_path), base + sub_off, leaf


@dataclass(frozen=True)
class StructField:
    """A named member of a struct or union with its computed offset."""

    name: str
    ctype: CType
    offset: int

    @property
    def end(self) -> int:
        """One past the last byte occupied by this field."""
        return self.offset + self.ctype.size


class StructType(CType):
    """A C struct laid out with SysV ABI rules.

    Parameters
    ----------
    tag:
        The struct tag (``struct <tag>``); may be ``""`` for anonymous
        structs used inline inside other declarations.
    members:
        Ordered ``(name, ctype)`` pairs.
    packed:
        When true, emulates ``__attribute__((packed))``: every member is
        placed immediately after the previous one and the struct alignment
        is 1.  The paper's examples never pack, but the transformation
        engine uses packed layouts to model "ideal" transformed structures
        in ablations.
    """

    def __init__(
        self,
        tag: str,
        members: Sequence[Tuple[str, CType]],
        *,
        packed: bool = False,
    ) -> None:
        if not members:
            raise LayoutError(f"struct {tag or '<anon>'} must have members")
        seen: set[str] = set()
        fields: list[StructField] = []
        offset = 0
        max_align = 1
        for name, ctype in members:
            if name in seen:
                raise LayoutError(f"duplicate member {name!r} in struct {tag}")
            seen.add(name)
            align = 1 if packed else ctype.alignment
            offset = _align_up(offset, align)
            fields.append(StructField(name, ctype, offset))
            offset += ctype.size
            max_align = max(max_align, align)
        self.tag = tag
        self.packed = packed
        self.fields: Tuple[StructField, ...] = tuple(fields)
        self.alignment = max_align
        self.size = _align_up(offset, max_align)
        self._by_name = {f.name: f for f in self.fields}

    def c_name(self) -> str:
        return f"struct {self.tag}" if self.tag else "struct <anon>"

    @property
    def is_scalar(self) -> bool:
        return False

    def member(self, name: str) -> StructField:
        """Look up a member by name, raising :class:`PathError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise PathError(f"{self.c_name()} has no member {name!r}") from None

    def member_names(self) -> Tuple[str, ...]:
        """The member names in declaration order."""
        return tuple(f.name for f in self.fields)

    def _step(self, elem: PathElement) -> Tuple[int, CType]:
        if not isinstance(elem, Field):
            raise PathError(f"expected a field of {self.c_name()}, got {elem!r}")
        f = self.member(elem.name)
        return f.offset, f.ctype

    def path_at(self, offset: int) -> Tuple[PathElement, ...]:
        if not 0 <= offset < self.size:
            raise PathError(
                f"offset {offset} outside {self.c_name()} of size {self.size}"
            )
        for f in self.fields:
            if f.offset <= offset < f.end:
                inner = f.ctype.path_at(offset - f.offset)
                return (Field(f.name), *inner)
        # Offset lands in padding: attribute it to the struct itself.
        return ()

    def iter_leaves(self) -> Iterator[Tuple[Tuple[PathElement, ...], int, CType]]:
        for f in self.fields:
            for sub_path, sub_off, leaf in f.ctype.iter_leaves():
                yield (Field(f.name), *sub_path), f.offset + sub_off, leaf

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StructType)
            and self.tag == other.tag
            and self.packed == other.packed
            and self.fields == other.fields
        )

    def __hash__(self) -> int:
        return hash((self.tag, self.packed, self.fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = "; ".join(f"{f.ctype.c_name()} {f.name}@{f.offset}" for f in self.fields)
        return f"<struct {self.tag} {{ {inner} }} size={self.size}>"


class UnionType(CType):
    """A C union: all members at offset zero, size = max member size padded."""

    def __init__(self, tag: str, members: Sequence[Tuple[str, CType]]) -> None:
        if not members:
            raise LayoutError(f"union {tag or '<anon>'} must have members")
        seen: set[str] = set()
        fields: list[StructField] = []
        max_align = 1
        max_size = 0
        for name, ctype in members:
            if name in seen:
                raise LayoutError(f"duplicate member {name!r} in union {tag}")
            seen.add(name)
            fields.append(StructField(name, ctype, 0))
            max_align = max(max_align, ctype.alignment)
            max_size = max(max_size, ctype.size)
        self.tag = tag
        self.fields: Tuple[StructField, ...] = tuple(fields)
        self.alignment = max_align
        self.size = _align_up(max_size, max_align)
        self._by_name = {f.name: f for f in self.fields}

    def c_name(self) -> str:
        return f"union {self.tag}" if self.tag else "union <anon>"

    @property
    def is_scalar(self) -> bool:
        return False

    def member(self, name: str) -> StructField:
        """Look up a member by name, raising :class:`PathError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise PathError(f"{self.c_name()} has no member {name!r}") from None

    def _step(self, elem: PathElement) -> Tuple[int, CType]:
        if not isinstance(elem, Field):
            raise PathError(f"expected a field of {self.c_name()}, got {elem!r}")
        return 0, self.member(elem.name).ctype

    def path_at(self, offset: int) -> Tuple[PathElement, ...]:
        if not 0 <= offset < self.size:
            raise PathError(
                f"offset {offset} outside {self.c_name()} of size {self.size}"
            )
        # A union offset is ambiguous; attribute to the first member that
        # covers it, matching how debuggers display unions by default.
        for f in self.fields:
            if offset < f.ctype.size:
                inner = f.ctype.path_at(offset)
                return (Field(f.name), *inner)
        return ()

    def iter_leaves(self) -> Iterator[Tuple[Tuple[PathElement, ...], int, CType]]:
        for f in self.fields:
            for sub_path, sub_off, leaf in f.ctype.iter_leaves():
                yield (Field(f.name), *sub_path), sub_off, leaf

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnionType)
            and self.tag == other.tag
            and self.fields == other.fields
        )

    def __hash__(self) -> int:
        return hash((self.tag, self.fields))


# -- primitive registry ---------------------------------------------------

CHAR = PrimitiveType("char", 1, 1)
UCHAR = PrimitiveType("unsigned char", 1, 1)
SHORT = PrimitiveType("short", 2, 2)
USHORT = PrimitiveType("unsigned short", 2, 2)
INT = PrimitiveType("int", 4, 4)
UINT = PrimitiveType("unsigned int", 4, 4)
LONG = PrimitiveType("long", 8, 8)
ULONG = PrimitiveType("unsigned long", 8, 8)
FLOAT = PrimitiveType("float", 4, 4)
DOUBLE = PrimitiveType("double", 8, 8)
LONG_DOUBLE = PrimitiveType("long double", 16, 16)
BOOL = PrimitiveType("_Bool", 1, 1)

_PRIMITIVES: dict[str, PrimitiveType] = {
    t.name: t
    for t in (
        CHAR,
        UCHAR,
        SHORT,
        USHORT,
        INT,
        UINT,
        LONG,
        ULONG,
        FLOAT,
        DOUBLE,
        LONG_DOUBLE,
        BOOL,
    )
}
# Common aliases accepted by the declaration parser.
_PRIMITIVES["signed char"] = CHAR
_PRIMITIVES["signed int"] = INT
_PRIMITIVES["unsigned"] = UINT
_PRIMITIVES["long int"] = LONG
_PRIMITIVES["long long"] = LONG
_PRIMITIVES["unsigned long long"] = ULONG
_PRIMITIVES["size_t"] = ULONG
_PRIMITIVES["int8_t"] = CHAR
_PRIMITIVES["uint8_t"] = UCHAR
_PRIMITIVES["int16_t"] = SHORT
_PRIMITIVES["uint16_t"] = USHORT
_PRIMITIVES["int32_t"] = INT
_PRIMITIVES["uint32_t"] = UINT
_PRIMITIVES["int64_t"] = LONG
_PRIMITIVES["uint64_t"] = ULONG


def primitive(name: str) -> PrimitiveType:
    """Look up a primitive type by its C spelling (including aliases)."""
    try:
        return _PRIMITIVES[name]
    except KeyError:
        raise LayoutError(f"unknown primitive type {name!r}") from None


def primitive_names() -> tuple[str, ...]:
    """All spellings accepted by :func:`primitive` (for the parser)."""
    return tuple(_PRIMITIVES)
