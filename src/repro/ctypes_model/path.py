"""Structured variable access paths (``lAoS[3].mX``).

Gleipnir's trace lines identify the accessed data element with a nested
name such as ``glStructArray[0].myArray[0]``.  The transformation engine
needs to *parse* those names, match them against rules, rewrite indices and
fields, and re-serialize them.  This module is the single source of truth
for that syntax.

A path is a base variable name plus a tuple of :class:`PathElement`:

>>> p = VariablePath.parse("glStructArray[0].myArray[1]")
>>> p.base
'glStructArray'
>>> p.elements
(Index(0), Field('myArray'), Index(1))
>>> str(p)
'glStructArray[0].myArray[1]'
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Tuple, Union

from repro.errors import PathError

_IDENT = r"[A-Za-z_$][A-Za-z0-9_$]*"
_TOKEN_RE = re.compile(rf"({_IDENT})|\[(\d+)\]|(\.)|(->)")


@dataclass(frozen=True, order=True)
class Field:
    """A ``.name`` step into a struct or union."""

    name: str

    def __str__(self) -> str:
        return f".{self.name}"

    def __repr__(self) -> str:
        return f"Field({self.name!r})"


@dataclass(frozen=True, order=True)
class Index:
    """A ``[i]`` step into an array."""

    value: int

    def __str__(self) -> str:
        return f"[{self.value}]"

    def __repr__(self) -> str:
        return f"Index({self.value})"


@dataclass(frozen=True, order=True)
class Deref:
    """A ``->`` step through a pointer member.

    Gleipnir itself never emits ``->`` (it sees the concrete accessed
    object), but transformed traces describing indirect accesses keep the
    pointer hop explicit in intermediate form before the engine resolves it
    to the storage object's own path.
    """

    name: str

    def __str__(self) -> str:
        return f"->{self.name}"

    def __repr__(self) -> str:
        return f"Deref({self.name!r})"


PathElement = Union[Field, Index, Deref]


@dataclass(frozen=True)
class VariablePath:
    """A parsed variable access path.

    Immutable; all mutators return new paths.
    """

    base: str
    elements: Tuple[PathElement, ...] = ()

    # -- construction ----------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "VariablePath":
        """Parse the Gleipnir spelling of a path.

        Accepts ``name``, ``name[3]``, ``name.field``, ``name->field`` and
        arbitrary nesting thereof.  Raises :class:`PathError` on malformed
        input.
        """
        text = text.strip()
        if not text:
            raise PathError("empty variable path")
        pos = 0
        tokens: list[tuple[str, str]] = []
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise PathError(f"malformed path {text!r} at offset {pos}")
            if m.group(1) is not None:
                tokens.append(("ident", m.group(1)))
            elif m.group(2) is not None:
                tokens.append(("index", m.group(2)))
            elif m.group(3) is not None:
                tokens.append(("dot", "."))
            else:
                tokens.append(("arrow", "->"))
            pos = m.end()
        if tokens[0][0] != "ident":
            raise PathError(f"path {text!r} must start with an identifier")
        base = tokens[0][1]
        elements: list[PathElement] = []
        i = 1
        while i < len(tokens):
            kind, value = tokens[i]
            if kind == "index":
                elements.append(Index(int(value)))
                i += 1
            elif kind in ("dot", "arrow"):
                if i + 1 >= len(tokens) or tokens[i + 1][0] != "ident":
                    raise PathError(f"dangling {value!r} in path {text!r}")
                name = tokens[i + 1][1]
                elements.append(Field(name) if kind == "dot" else Deref(name))
                i += 2
            else:
                raise PathError(f"unexpected identifier {value!r} in {text!r}")
        return cls(base, tuple(elements))

    # -- queries ---------------------------------------------------------

    @property
    def is_bare(self) -> bool:
        """True when the path is just the base variable name."""
        return not self.elements

    @property
    def leading_index(self) -> int | None:
        """The value of the first element if it is an :class:`Index`."""
        if self.elements and isinstance(self.elements[0], Index):
            return self.elements[0].value
        return None

    def field_names(self) -> Tuple[str, ...]:
        """All field/deref names along the path, in order."""
        return tuple(
            e.name for e in self.elements if isinstance(e, (Field, Deref))
        )

    def indices(self) -> Tuple[int, ...]:
        """All array indices along the path, in order."""
        return tuple(e.value for e in self.elements if isinstance(e, Index))

    # -- derivation ------------------------------------------------------

    def child(self, element: PathElement) -> "VariablePath":
        """Return a new path extended by one element."""
        return VariablePath(self.base, (*self.elements, element))

    def extend(self, elements: Iterable[PathElement]) -> "VariablePath":
        """Return a new path extended by several elements."""
        return VariablePath(self.base, (*self.elements, *tuple(elements)))

    def with_base(self, base: str) -> "VariablePath":
        """Return the same path rooted at a different base variable."""
        return VariablePath(base, self.elements)

    def parent(self) -> "VariablePath":
        """Drop the last element; raises :class:`PathError` on bare paths."""
        if not self.elements:
            raise PathError(f"path {self} has no parent")
        return VariablePath(self.base, self.elements[:-1])

    # -- rendering -------------------------------------------------------

    def __str__(self) -> str:
        return self.base + "".join(str(e) for e in self.elements)

    def __repr__(self) -> str:
        return f"VariablePath({str(self)!r})"
