"""C type system with System-V x86-64 ABI layout rules.

This package plays the role of the compiler's type layout engine in the
paper's pipeline: Gleipnir reads gcc debug information to know where every
struct field and array element lives; we compute the same information from
first principles using the SysV ABI rules (natural alignment, struct padding,
trailing padding to the struct's own alignment).

Public surface:

- :class:`~repro.ctypes_model.types.CType` hierarchy
  (:class:`PrimitiveType`, :class:`PointerType`, :class:`ArrayType`,
  :class:`StructType`, :class:`UnionType`) and the primitive registry
  (:func:`primitive`, ``INT``, ``DOUBLE``...).
- :class:`~repro.ctypes_model.path.VariablePath` — structured access paths
  such as ``lAoS[3].mX`` with parse/format round-trip.
- :func:`~repro.ctypes_model.parser.parse_declarations` — a C declaration
  parser covering the subset used by the paper's rule files.
"""

from repro.ctypes_model.path import Field, Index, PathElement, VariablePath
from repro.ctypes_model.types import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    POINTER_SIZE,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    ArrayType,
    CType,
    PointerType,
    PrimitiveType,
    StructField,
    StructType,
    UnionType,
    primitive,
)
from repro.ctypes_model.parser import parse_declaration, parse_declarations

__all__ = [
    "CType",
    "PrimitiveType",
    "PointerType",
    "ArrayType",
    "StructField",
    "StructType",
    "UnionType",
    "primitive",
    "CHAR",
    "UCHAR",
    "SHORT",
    "USHORT",
    "INT",
    "UINT",
    "LONG",
    "ULONG",
    "FLOAT",
    "DOUBLE",
    "POINTER_SIZE",
    "VariablePath",
    "PathElement",
    "Field",
    "Index",
    "parse_declaration",
    "parse_declarations",
]
