"""A C declaration parser for the subset used by the paper's rule files.

The transformation rules in the paper (Listings 5, 8 and 11) describe
structures with plain C declaration syntax::

    struct lSoA {
        int mX[16];
        double mY[16];
    };

    struct lAoS {
        int mX;
        double mY;
    }[16];                      # <- array suffix on the closing brace

    struct lS1 {
        int mFrequentlyUsed;
        struct mRarelyUsed;     # <- embed a previously declared struct,
    }[16];                      #    member name defaults to the tag

This module parses that subset (plus pointers, multi-dimensional arrays,
inline anonymous structs, unions, and top-level variable declarations) into
:mod:`repro.ctypes_model.types` objects.

Notes on fidelity: the paper's listings use identifiers such as ``lSoA``
(lowercase-L prefix for "local").  The tokenizer also tolerates identifiers
with leading digits so that files transcribed from the paper's PDF (where
``l`` is easily confused with ``1``) still parse.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DeclarationSyntaxError, LayoutError
from repro.ctypes_model.types import (
    ArrayType,
    CType,
    PointerType,
    StructType,
    UnionType,
    primitive,
    primitive_names,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*|/\*.*?\*/)
  | (?P<ident>[A-Za-z0-9_$]+)
  | (?P<punct>[{}\[\];,*:+])
    """,
    re.VERBOSE | re.DOTALL,
)

# Multi-word primitive spellings, longest first so "unsigned long long"
# wins over "unsigned long" over "unsigned".
_MULTIWORD = sorted((n.split() for n in primitive_names()), key=len, reverse=True)


@dataclass
class Token:
    """A lexed token with position information for error messages."""

    kind: str  # "num" | "ident" | "punct" | "eof"
    text: str
    line: int


@dataclass(frozen=True)
class _ForwardStruct(CType):
    """An incomplete struct reference (``Node *next;`` inside ``Node``).

    Only valid behind a pointer; the declarator rejects it otherwise.
    """

    tag: str
    size: int = 0
    alignment: int = 1

    def c_name(self) -> str:
        return self.tag


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into tokens, skipping whitespace and comments."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise DeclarationSyntaxError(
                f"unexpected character {source[pos]!r}", line
            )
        text = m.group(0)
        if m.lastgroup not in ("ws", "comment"):
            kind = m.lastgroup or "punct"
            # Treat pure numbers as "num"; identifiers may contain digits.
            if kind == "ident" and text.isdigit():
                kind = "num"
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = m.end()
    tokens.append(Token("eof", "", line))
    return tokens


@dataclass
class Declaration:
    """A single top-level declaration: a named variable (or bare struct).

    ``name`` is empty for pure type declarations (``struct foo {...};``)
    that introduce a tag without declaring a variable.
    """

    name: str
    ctype: CType


@dataclass
class DeclarationSet:
    """The result of parsing a declaration source.

    Attributes
    ----------
    structs:
        Struct/union tag -> type object, in declaration order.
    variables:
        Top-level declared variable name -> type object.
    order:
        All declarations in source order (for deterministic layout).
    """

    structs: Dict[str, CType] = field(default_factory=dict)
    variables: Dict[str, CType] = field(default_factory=dict)
    order: List[Declaration] = field(default_factory=list)

    def struct(self, tag: str) -> CType:
        try:
            return self.structs[tag]
        except KeyError:
            raise DeclarationSyntaxError(f"unknown struct tag {tag!r}") from None

    def variable(self, name: str) -> CType:
        try:
            return self.variables[name]
        except KeyError:
            raise DeclarationSyntaxError(f"unknown variable {name!r}") from None


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: Sequence[Token], registry: Optional[Dict[str, CType]] = None):
        self.tokens = tokens
        self.pos = 0
        self.result = DeclarationSet()
        if registry:
            self.result.structs.update(registry)

    # -- token helpers ---------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise DeclarationSyntaxError(
                f"expected {text!r}, found {tok.text or '<eof>'!r}", tok.line
            )
        return tok

    def error(self, message: str) -> DeclarationSyntaxError:
        return DeclarationSyntaxError(message, self.peek().line)

    # -- grammar ---------------------------------------------------------

    def parse(self) -> DeclarationSet:
        while self.peek().kind != "eof":
            self.declaration()
        return self.result

    def declaration(self) -> None:
        """Parse one top-level declaration and record it."""
        base = self.type_specifier()
        # Bare `struct foo { ... };` or `struct foo { ... }[16];`
        if self.peek().text == "[":
            line = self.peek().line
            dims = self.array_dims()
            try:
                ctype = _wrap_array(base, dims)
            except LayoutError as exc:
                raise DeclarationSyntaxError(str(exc), line) from exc
            self.expect(";")
            tag = base.tag if isinstance(base, (StructType, UnionType)) else ""
            decl = Declaration(tag, ctype)
            self.result.order.append(decl)
            if tag:
                # An arrayed struct declaration also declares a variable
                # named after the tag (this is the rule-file convention:
                # `struct lAoS { ... }[16];` *is* the transformed object).
                self.result.variables[tag] = ctype
            return
        if self.peek().text == ";":
            tok = self.next()
            if not isinstance(base, (StructType, UnionType)) or not base.tag:
                raise DeclarationSyntaxError(
                    "declaration declares nothing", tok.line
                )
            self.result.order.append(Declaration("", base))
            return
        # Declarator list: `int a, *b, c[4];`
        while True:
            name, ctype = self.declarator(base)
            self.result.variables[name] = ctype
            self.result.order.append(Declaration(name, ctype))
            tok = self.next()
            if tok.text == ";":
                break
            if tok.text != ",":
                raise DeclarationSyntaxError(
                    f"expected ',' or ';', found {tok.text!r}", tok.line
                )

    def type_specifier(self) -> CType:
        """Parse a type specifier: primitive, struct/union def or reference."""
        tok = self.peek()
        if tok.text in ("struct", "union"):
            return self.struct_or_union()
        if tok.kind != "ident":
            raise self.error(f"expected a type, found {tok.text!r}")
        return self.primitive_specifier()

    def primitive_specifier(self) -> CType:
        """Parse a (possibly multi-word) primitive type name."""
        for words in _MULTIWORD:
            if all(
                self.peek(i).text == w for i, w in enumerate(words)
            ):
                for _ in words:
                    self.next()
                return primitive(" ".join(words))
        tok = self.peek()
        # Unknown single identifier: could be a previously declared tag used
        # without the `struct` keyword (typedef-style reference).
        if tok.text in self.result.structs:
            self.next()
            return self.result.structs[tok.text]
        # A name only used behind a pointer may be the struct currently
        # being defined (self-referential node types) or any forward tag.
        if tok.kind == "ident" and self.peek(1).text == "*":
            self.next()
            return _ForwardStruct(tok.text)
        raise self.error(f"unknown type name {tok.text!r}")

    def struct_or_union(self) -> CType:
        keyword = self.next().text  # struct | union
        tag = ""
        if self.peek().kind in ("ident", "num") and self.peek().text != "{":
            tag = self.next().text
        if self.peek().text != "{":
            # Reference to a previously declared tag.
            if not tag:
                raise self.error(f"anonymous {keyword} reference")
            try:
                return self.result.structs[tag]
            except KeyError:
                raise DeclarationSyntaxError(
                    f"reference to undeclared {keyword} {tag!r}",
                    self.peek().line,
                ) from None
        self.expect("{")
        members: List[Tuple[str, CType]] = []
        while self.peek().text != "}":
            members.extend(self.member_declaration())
        self.expect("}")
        try:
            ctype: CType = (
                StructType(tag, members)
                if keyword == "struct"
                else UnionType(tag, members)
            )
        except LayoutError as exc:
            raise DeclarationSyntaxError(str(exc), self.peek().line) from exc
        if tag:
            self.result.structs[tag] = ctype
        return ctype

    def member_declaration(self) -> List[Tuple[str, CType]]:
        """Parse one member line inside a struct/union body."""
        tok = self.peek()
        if tok.text in ("struct", "union"):
            base = self.struct_or_union()
            # `struct mRarelyUsed;` -- embed under the tag name (paper's
            # Listing 8 convention).
            if self.peek().text == ";":
                self.next()
                tag = base.tag if isinstance(base, (StructType, UnionType)) else ""
                if not tag:
                    raise self.error("anonymous embedded struct needs a name")
                return [(tag, base)]
        else:
            base = self.primitive_specifier()
        members: List[Tuple[str, CType]] = []
        while True:
            name, ctype = self.declarator(base)
            members.append((name, ctype))
            tok = self.next()
            if tok.text == ";":
                return members
            if tok.text != ",":
                raise DeclarationSyntaxError(
                    f"expected ',' or ';', found {tok.text!r}", tok.line
                )

    def declarator(self, base: CType) -> Tuple[str, CType]:
        """Parse ``*name[dims]`` and apply it to ``base``."""
        pointer_depth = 0
        while self.peek().text == "*":
            self.next()
            pointer_depth += 1
        tok = self.next()
        if tok.kind not in ("ident", "num") or tok.text.isdigit():
            raise DeclarationSyntaxError(
                f"expected a declarator name, found {tok.text!r}", tok.line
            )
        name = tok.text
        ctype: CType = base
        if isinstance(ctype, _ForwardStruct) and pointer_depth == 0:
            raise DeclarationSyntaxError(
                f"incomplete type {ctype.tag!r} is only valid behind a pointer",
                tok.line,
            )
        for _ in range(pointer_depth):
            pointee = ctype.c_name() if pointer_depth == 1 else "void"
            ctype = PointerType(pointee)
        dims = self.array_dims()
        try:
            ctype = _wrap_array(ctype, dims)
        except LayoutError as exc:
            raise DeclarationSyntaxError(str(exc), tok.line) from exc
        return name, ctype

    def array_dims(self) -> List[int]:
        """Parse zero or more ``[N]`` suffixes."""
        dims: List[int] = []
        while self.peek().text == "[":
            self.next()
            tok = self.next()
            if tok.kind != "num":
                raise DeclarationSyntaxError(
                    f"expected an array length, found {tok.text!r}", tok.line
                )
            dims.append(int(tok.text))
            self.expect("]")
        return dims


def _wrap_array(base: CType, dims: Sequence[int]) -> CType:
    """Apply array dimensions outermost-first: ``int a[2][3]`` is 2 rows."""
    ctype = base
    for dim in reversed(dims):
        ctype = ArrayType(ctype, dim)
    return ctype


def parse_declarations(
    source: str, *, registry: Optional[Dict[str, CType]] = None
) -> DeclarationSet:
    """Parse a block of C declarations.

    Parameters
    ----------
    source:
        C declaration text (struct definitions and variable declarations).
    registry:
        Optional pre-existing tag registry, so rule files can reference
        structs declared in an earlier section.
    """
    return _Parser(tokenize(source), registry).parse()


def parse_declaration(source: str) -> Declaration:
    """Parse exactly one declaration; convenience for tests and the CLI."""
    decls = parse_declarations(source)
    if len(decls.order) != 1:
        raise DeclarationSyntaxError(
            f"expected exactly one declaration, found {len(decls.order)}"
        )
    return decls.order[0]
