"""One-pass trace digests: per-variable reuse-distance histograms.

The cost model (:mod:`repro.lint.cost`) predicts miss-count intervals
for candidate rule files *without re-simulating*.  Everything it needs
from the trace is collected here in a single pass and is — by
construction — **layout-invariant**: a digest records *which element*
was accessed and *how many distinct other elements* intervened between
consecutive accesses (a Mattson stack distance at element granularity),
never the element's address-derived cache placement.  Any injective
re-layout of the elements (what a sound rule file performs) preserves
both, so one digest prices every candidate.

An *element* is a distinct ``(addr, size)`` access identity; each keeps
a representative variable path so the evaluator can push it through
``rule.translate`` exactly as the transform engine would.  Records
without debug info (``var is None``) digest under the anonymous
variable ``None`` and always pass through untransformed.

Digests serialize to canonical JSON and are content-addressed
(:meth:`TraceDigest.digest_id`), which is how the tracestore caches
them (:mod:`repro.tracestore.digests`).
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obsv import get_telemetry
from repro.trace.record import AccessType, TraceRecord

#: serialization format version (bump on any incompatible change; the
#: version participates in the content address, so stale cache entries
#: simply miss instead of deserializing wrongly)
DIGEST_VERSION = 1


@dataclass(frozen=True)
class ElementStats:
    """One distinct ``(addr, size)`` access identity of a variable."""

    addr: int
    size: int
    #: representative variable path (``lAoS[3].mX``); ``None`` when the
    #: record carried no debug info
    path: Optional[str]
    #: total accesses to this element
    count: int
    #: element-granularity reuse distances: ``(distance, occurrences)``
    #: pairs, ascending, where *distance* is the number of distinct
    #: other elements accessed since the previous access.  First touches
    #: are excluded, so occurrences sum to ``count - 1``.
    distances: Tuple[Tuple[int, int], ...]

    @property
    def reuses(self) -> int:
        """Accesses after the first (the events a cache could hit)."""
        return sum(n for _, n in self.distances)

    def reuses_within(self, bound: int) -> int:
        """How many reuses have distance strictly below ``bound``."""
        return sum(n for d, n in self.distances if d < bound)


@dataclass(frozen=True)
class VariableDigest:
    """Everything one variable contributed to the trace."""

    name: Optional[str]
    elements: Tuple[ElementStats, ...]

    @property
    def accesses(self) -> int:
        return sum(e.count for e in self.elements)

    def blocks(self, block_size: int) -> Tuple[int, ...]:
        """Distinct blocks the variable's *original* addresses touch."""
        touched = set()
        for e in self.elements:
            first = e.addr // block_size
            last = (e.addr + max(e.size, 1) - 1) // block_size
            touched.update(range(first, last + 1))
        return tuple(sorted(touched))


@dataclass(frozen=True)
class TraceDigest:
    """The layout-invariant one-pass summary of a whole trace."""

    records: int
    variables: Tuple[VariableDigest, ...]

    @property
    def accesses(self) -> int:
        return sum(v.accesses for v in self.variables)

    @property
    def distinct_elements(self) -> int:
        return sum(len(v.elements) for v in self.variables)

    def variable(self, name: Optional[str]) -> Optional[VariableDigest]:
        for v in self.variables:
            if v.name == name:
                return v
        return None

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.variables if v.name is not None)

    # -- serialization ---------------------------------------------------

    def to_json(self) -> Dict:
        return {
            "version": DIGEST_VERSION,
            "records": self.records,
            "variables": [
                {
                    "name": v.name,
                    "elements": [
                        {
                            "addr": e.addr,
                            "size": e.size,
                            "path": e.path,
                            "count": e.count,
                            "distances": [list(p) for p in e.distances],
                        }
                        for e in v.elements
                    ],
                }
                for v in self.variables
            ],
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "TraceDigest":
        if doc.get("version") != DIGEST_VERSION:
            raise ValueError(
                f"unsupported digest version {doc.get('version')!r}"
            )
        variables = tuple(
            VariableDigest(
                name=v["name"],
                elements=tuple(
                    ElementStats(
                        addr=e["addr"],
                        size=e["size"],
                        path=e["path"],
                        count=e["count"],
                        distances=tuple(
                            (int(d), int(n)) for d, n in e["distances"]
                        ),
                    )
                    for e in v["elements"]
                ),
            )
            for v in doc["variables"]
        )
        return cls(records=doc["records"], variables=variables)

    def digest_id(self) -> str:
        """Content address of the digest (stable across processes)."""
        payload = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(b"tdst-digest\n" + payload).hexdigest()


def compute_digest(records: Iterable[TraceRecord]) -> TraceDigest:
    """Digest a trace in one pass.

    Maintains an LRU stack of element identities; an element's reuse
    distance is its stack depth at re-access — the number of distinct
    other elements touched since its previous access.  The same
    move-to-front technique as :func:`repro.trace.stats.reuse_distances`,
    at element rather than block granularity.
    """
    tele = get_telemetry()
    with tele.phase("cost.digest"):
        stack: List[Tuple[int, int]] = []  # MRU first
        meta: Dict[Tuple[int, int], List] = {}  # key -> [var, path, count]
        hists: Dict[Tuple[int, int], Counter] = {}
        n = 0
        for record in records:
            n += 1
            # Instruction-fetch / misc records are skipped by every
            # simulator (demand accesses only) — skip them here too so
            # digest events line up with simulated events.
            if record.op is AccessType.MISC:
                continue
            key = (record.addr, record.size)
            entry = meta.get(key)
            if entry is None:
                var = record.base_name
                path = str(record.var) if record.var is not None else None
                meta[key] = [var, path, 1]
                stack.insert(0, key)
            else:
                entry[2] += 1
                depth = stack.index(key)
                hists.setdefault(key, Counter())[depth] += 1
                del stack[depth]
                stack.insert(0, key)
        by_var: Dict[Optional[str], List[ElementStats]] = {}
        for key, (var, path, count) in meta.items():
            addr, size = key
            hist = hists.get(key, Counter())
            by_var.setdefault(var, []).append(
                ElementStats(
                    addr=addr,
                    size=size,
                    path=path,
                    count=count,
                    distances=tuple(sorted(hist.items())),
                )
            )
        variables = tuple(
            VariableDigest(name=name, elements=tuple(sorted(elems, key=lambda e: (e.addr, e.size))))
            for name, elems in sorted(
                by_var.items(), key=lambda kv: (kv[0] is None, kv[0] or "")
            )
        )
        tele.add("cost.digest.records", n)
        tele.add("cost.digest.elements", sum(len(v.elements) for v in variables))
        return TraceDigest(records=n, variables=variables)
