"""The Gleipnir trace model: records, text format, streams, stats, diff.

A *trace* is an ordered sequence of :class:`~repro.trace.record.TraceRecord`
objects, each describing one memory access with the metadata Gleipnir
attaches (function, scope, frame, thread, variable path).  The subpackage
provides:

- :mod:`repro.trace.record` — the record dataclass and access-type enum;
- :mod:`repro.trace.format` — parse/emit the text format shown in the
  paper's Figure 1 and Listing 2 (round-trip safe);
- :mod:`repro.trace.stream` — the :class:`~repro.trace.stream.Trace`
  container plus filtering/windowing helpers;
- :mod:`repro.trace.stats` — footprint and access-mix statistics;
- :mod:`repro.trace.diff` — the structural diff used for Figures 5/8/9.
"""

from repro.trace.record import AccessType, TraceRecord
from repro.trace.format import (
    format_record,
    format_trace,
    parse_line,
    parse_trace,
    read_trace,
    write_trace,
)
from repro.trace.stream import Trace
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.diff import DiffEntry, DiffOp, TraceDiff, diff_traces
from repro.trace.physical import iter_physical, to_physical
from repro.trace.dinero import from_dinero, read_dinero, to_dinero, write_dinero
from repro.trace.binformat import load_binary, save_binary

__all__ = [
    "AccessType",
    "TraceRecord",
    "Trace",
    "format_record",
    "format_trace",
    "parse_line",
    "parse_trace",
    "read_trace",
    "write_trace",
    "TraceStats",
    "compute_stats",
    "DiffOp",
    "DiffEntry",
    "TraceDiff",
    "diff_traces",
    "to_physical",
    "iter_physical",
    "to_dinero",
    "from_dinero",
    "read_dinero",
    "write_dinero",
    "save_binary",
    "load_binary",
]
