"""Trace records: one memory access with Gleipnir metadata.

The paper's Figure 1 format::

    [ S ] 7ff000108 [ malloc ] [ LS ] [ 0 ] [ 1 ] [ _zzq_args[5] ]

maps onto :class:`TraceRecord` fields as:

========  =======================================================
``op``    access type: ``L`` Load, ``S`` Store, ``M`` Modify,
          ``X`` miscellaneous/other instructions
``addr``  virtual address of the accessed data
``size``  access size in bytes
``func``  function whose code performed the access
``scope`` ``LV``/``LS``/``GV``/``GS`` (+ ``HV``/``HS`` heap
          extension), or ``None`` when no debug info resolves
``frame`` activation distance (0 = executing function's own
          frame); ``None`` for globals, which the paper's traces
          omit "because global variables are globally visible"
``thread`` originating thread id (``None`` when omitted)
``var``   the accessed element's full path, e.g.
          ``glStructArray[0].myArray[0]``
========  =======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.ctypes_model.path import VariablePath


class AccessType(str, enum.Enum):
    """Gleipnir access types."""

    LOAD = "L"
    STORE = "S"
    MODIFY = "M"
    MISC = "X"

    @classmethod
    def parse(cls, text: str) -> "AccessType":
        try:
            return cls(text)
        except ValueError:
            raise ValueError(f"unknown access type {text!r}") from None

    @property
    def reads(self) -> bool:
        """Whether the access reads memory (Modify reads then writes)."""
        return self in (AccessType.LOAD, AccessType.MODIFY)

    @property
    def writes(self) -> bool:
        """Whether the access writes memory."""
        return self in (AccessType.STORE, AccessType.MODIFY)


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A single trace line.  Immutable; use :meth:`evolve` to derive."""

    op: AccessType
    addr: int
    size: int
    func: str = ""
    scope: Optional[str] = None
    frame: Optional[int] = None
    thread: Optional[int] = None
    var: Optional[VariablePath] = None

    def evolve(self, **changes) -> "TraceRecord":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # -- classification helpers -----------------------------------------

    @property
    def has_symbol(self) -> bool:
        """True when debug info resolved the access to a variable."""
        return self.var is not None

    @property
    def base_name(self) -> Optional[str]:
        """The root variable name (``lSoA`` for ``lSoA.mX[3]``)."""
        return self.var.base if self.var is not None else None

    @property
    def is_global(self) -> bool:
        return self.scope is not None and self.scope.startswith("G")

    @property
    def is_local(self) -> bool:
        return self.scope is not None and self.scope.startswith("L")

    @property
    def is_heap(self) -> bool:
        return self.scope is not None and self.scope.startswith("H")

    @property
    def is_aggregate(self) -> bool:
        """True for ``*S`` scopes (the element is part of a structure)."""
        return self.scope is not None and self.scope.endswith("S")

    @property
    def end(self) -> int:
        """One past the last byte touched by the access."""
        return self.addr + self.size

    def __str__(self) -> str:
        from repro.trace.format import format_record

        return format_record(self)
