"""The :class:`Trace` container and stream utilities.

A :class:`Trace` is an immutable-ish, list-backed sequence of records with
the common query/derivation operations the analysis and transformation
layers need: filtering by predicate, function, variable or scope; slicing
into windows; projecting addresses into numpy arrays for the vectorized
cache simulator.

For traces too large to materialize, :func:`iter_records` streams records
from any trace file (text, gzipped text, or ``TDST`` binary, auto-detected
by magic bytes) and :func:`iter_chunks` batches them into fixed-size
:class:`TraceChunk` array bundles — the bounded-memory input format of
:func:`repro.cache.simulator.simulate_stream`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.trace.format import iter_trace_lines, read_trace, write_trace
from repro.trace.record import AccessType, TraceRecord


class Trace(Sequence[TraceRecord]):
    """An ordered sequence of trace records.

    Supports the full :class:`Sequence` protocol plus trace-specific
    filters.  Derivation methods return new ``Trace`` objects and never
    mutate the receiver.
    """

    __slots__ = ("_records",)

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self._records: List[TraceRecord] = list(records)

    # -- Sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Trace(self._records[item])
        return self._records[item]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Trace):
            return self._records == other._records
        return NotImplemented

    def __repr__(self) -> str:
        return f"<Trace of {len(self._records)} records>"

    # -- construction -------------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Load a Gleipnir-format trace file."""
        return cls(read_trace(path))

    @classmethod
    def load_any(cls, path: Union[str, Path]) -> "Trace":
        """Load a trace file, auto-detecting the format by magic bytes.

        Files starting with the ``TDST`` magic load through the binary
        readers (version 1 = compact record stream, version 2 =
        columnar); everything else (including gzipped text) goes
        through the Gleipnir text parser.
        """
        version = _binary_version(path)
        if version == 2:
            from repro.trace.columnar import load_columnar

            return load_columnar(path)
        if version is not None:
            from repro.trace.binformat import load_binary

            return load_binary(path)
        return cls.load(path)

    def save(self, path: Union[str, Path], *, pid: int = 10000) -> None:
        """Write the trace in Gleipnir format."""
        write_trace(self._records, path, pid=pid)

    def append(self, record: TraceRecord) -> None:
        """Append a record (used by trace builders/tracers only)."""
        self._records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append many records."""
        self._records.extend(records)

    # -- derivation ----------------------------------------------------------

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> "Trace":
        """Records satisfying ``predicate``, in order."""
        return Trace(r for r in self._records if predicate(r))

    def only_ops(self, *ops: AccessType) -> "Trace":
        """Restrict to the given access types."""
        wanted = set(ops)
        return self.filter(lambda r: r.op in wanted)

    def data_accesses(self) -> "Trace":
        """Drop ``X`` (miscellaneous) lines; keep loads/stores/modifies."""
        return self.filter(lambda r: r.op is not AccessType.MISC)

    def in_function(self, func: str) -> "Trace":
        """Accesses performed while executing ``func``."""
        return self.filter(lambda r: r.func == func)

    def touching_variable(self, base_name: str) -> "Trace":
        """Accesses whose resolved variable has the given base name."""
        return self.filter(lambda r: r.base_name == base_name)

    def with_scope(self, *scopes: str) -> "Trace":
        """Restrict to the given Gleipnir scopes (``LV``, ``GS``...)."""
        wanted = set(scopes)
        return self.filter(lambda r: r.scope in wanted)

    def symbolized(self) -> "Trace":
        """Only records that resolved to a variable."""
        return self.filter(lambda r: r.var is not None)

    def window(self, start: int, length: int) -> "Trace":
        """A contiguous slice of the trace."""
        return self[start : start + length]

    def map(self, fn: Callable[[TraceRecord], TraceRecord]) -> "Trace":
        """Apply ``fn`` to every record."""
        return Trace(fn(r) for r in self._records)

    def concat(self, other: "Trace") -> "Trace":
        """This trace followed by ``other``."""
        return Trace([*self._records, *other._records])

    # -- projections ---------------------------------------------------------

    def addresses(self) -> np.ndarray:
        """All addresses as a ``uint64`` array (vectorized simulator input)."""
        return np.fromiter(
            (r.addr for r in self._records), dtype=np.uint64, count=len(self._records)
        )

    def sizes(self) -> np.ndarray:
        """All access sizes as a ``uint32`` array."""
        return np.fromiter(
            (r.size for r in self._records), dtype=np.uint32, count=len(self._records)
        )

    def write_mask(self) -> np.ndarray:
        """Boolean array marking accesses that write memory."""
        return np.fromiter(
            (r.op.writes for r in self._records), dtype=bool, count=len(self._records)
        )

    # -- quick queries ---------------------------------------------------------

    def functions(self) -> Tuple[str, ...]:
        """Distinct function names in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self._records:
            if r.func and r.func not in seen:
                seen[r.func] = None
        return tuple(seen)

    def variable_names(self) -> Tuple[str, ...]:
        """Distinct resolved base variable names in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self._records:
            name = r.base_name
            if name is not None and name not in seen:
                seen[name] = None
        return tuple(seen)

    def address_range(self) -> Optional[Tuple[int, int]]:
        """``(lowest address, highest end)`` over all records."""
        if not self._records:
            return None
        lo = min(r.addr for r in self._records)
        hi = max(r.end for r in self._records)
        return lo, hi


# -- chunked streaming --------------------------------------------------------

#: Default records per chunk: large enough to amortize numpy dispatch,
#: small enough that a chunk's arrays stay well under a megabyte.
DEFAULT_CHUNK_RECORDS = 65536


@dataclass(frozen=True)
class TraceChunk:
    """One fixed-size batch of a streamed trace, projected to arrays.

    Chunks carry only what the vectorized simulators consume (addresses,
    sizes, write mask) — never the :class:`TraceRecord` objects — so a
    multi-gigabyte trace streams through simulation with peak record
    residency bounded by the chunk size.
    """

    #: chunk ordinal, starting at 0
    index: int
    #: record offset of this chunk's first record within the stream
    start: int
    addrs: np.ndarray  #: uint64 access addresses
    sizes: np.ndarray  #: uint32 access sizes
    writes: np.ndarray  #: bool mask of accesses that write memory

    def __len__(self) -> int:
        return len(self.addrs)


def _binary_version(path: Union[str, Path]) -> Optional[int]:
    """The ``TDST`` container version of a file, or ``None`` for text."""
    with open(path, "rb") as handle:
        head = handle.read(5)
    if head[:4] != b"TDST" or len(head) < 5:
        return None
    return head[4]


def _iter_columnar_records(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream a columnar file's decoded records, closing the map at EOF."""
    from repro.trace.columnar import ColumnarTrace

    with ColumnarTrace(path) as columnar:
        yield from columnar.iter_records()


def iter_records(
    source: Union[str, Path, Iterable[TraceRecord]],
) -> Iterator[TraceRecord]:
    """Stream records from a trace file or pass an iterable through.

    Paths are auto-detected by magic bytes like :meth:`Trace.load_any`:
    ``TDST`` containers stream through the matching binary reader
    (version 1 record stream or version 2 columnar), everything else
    through the line-at-a-time text parser — none builds the full
    record list.
    """
    if isinstance(source, (str, Path)):
        version = _binary_version(source)
        if version == 2:
            return _iter_columnar_records(source)
        if version is not None:
            from repro.trace.binformat import iter_binary

            return iter_binary(source)
        return iter_trace_lines(source)
    return iter(source)


def iter_chunks(
    source: Union[str, Path, Iterable[TraceRecord]],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    *,
    data_only: bool = True,
) -> Iterator[TraceChunk]:
    """Batch a record stream into :class:`TraceChunk` array bundles.

    ``data_only`` drops ``X`` (miscellaneous) records, matching what the
    simulators consume.  At most ``chunk_records`` records are buffered
    at any moment.
    """
    if chunk_records <= 0:
        raise ValueError(f"chunk_records must be positive, got {chunk_records}")
    addrs: List[int] = []
    sizes: List[int] = []
    writes: List[bool] = []
    index = 0
    start = 0
    for record in iter_records(source):
        if data_only and record.op is AccessType.MISC:
            continue
        addrs.append(record.addr)
        sizes.append(record.size)
        writes.append(record.op.writes)
        if len(addrs) >= chunk_records:
            yield TraceChunk(
                index=index,
                start=start,
                addrs=np.array(addrs, dtype=np.uint64),
                sizes=np.array(sizes, dtype=np.uint32),
                writes=np.array(writes, dtype=bool),
            )
            start += len(addrs)
            index += 1
            addrs, sizes, writes = [], [], []
    if addrs:
        yield TraceChunk(
            index=index,
            start=start,
            addrs=np.array(addrs, dtype=np.uint64),
            sizes=np.array(sizes, dtype=np.uint32),
            writes=np.array(writes, dtype=bool),
        )


def iter_record_chunks(
    source: Union[str, Path, Iterable[TraceRecord]],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> Iterator[List[TraceRecord]]:
    """Batch a record stream into lists of ``chunk_records`` records.

    Unlike :func:`iter_chunks` this keeps the full records (every field,
    including ``X`` lines) — the input format of the tracestore's
    content-addressed chunk blobs, whose boundaries must be stable
    functions of record position alone so identical prefixes hash
    identically regardless of container format.
    """
    if chunk_records <= 0:
        raise ValueError(f"chunk_records must be positive, got {chunk_records}")
    batch: List[TraceRecord] = []
    for record in iter_records(source):
        batch.append(record)
        if len(batch) >= chunk_records:
            yield batch
            batch = []
    if batch:
        yield batch
