"""Gleipnir text format: parse and emit trace files.

Line grammar (whitespace separated), as printed in the paper's Listing 2
and Figures 5/8/9::

    START PID <pid>                                  # header
    <op> <addr> <size>                               # bare access
    <op> <addr> <size> <func>                        # no debug info
    <op> <addr> <size> <func> GV <name>              # global variable
    <op> <addr> <size> <func> GS <name[path]>        # global structure
    <op> <addr> <size> <func> LV <frame> <thread> <name>
    <op> <addr> <size> <func> LS <frame> <thread> <name[path]>

where ``<op>`` is one of ``L S M X`` and ``<addr>`` is lowercase hex,
zero-padded to 9 digits in our writer to match the paper's look
(``7ff0001b0``, ``000601040``).  Globals omit frame and thread, exactly as
the paper notes.  The parser is tolerant: it accepts unpadded hex, ``0x``
prefixes, and optional frame/thread on global lines.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import PathError, TraceFormatError
from repro.ctypes_model.path import VariablePath
from repro.trace.record import AccessType, TraceRecord

_SCOPES = {"LV", "LS", "GV", "GS", "HV", "HS"}
_OPS = {"L", "S", "M", "X"}

#: Default process id stamped on the ``START PID`` header by the writer.
DEFAULT_PID = 10000


def format_record(record: TraceRecord) -> str:
    """Render one record as a Gleipnir trace line."""
    parts: List[str] = [record.op.value, f"{record.addr:09x}", str(record.size)]
    if record.func:
        parts.append(record.func)
        if record.scope is not None:
            parts.append(record.scope)
            if not record.scope.startswith("G"):
                parts.append(str(record.frame if record.frame is not None else 0))
                parts.append(str(record.thread if record.thread is not None else 1))
            if record.var is not None:
                parts.append(str(record.var))
    return " ".join(parts)


def parse_line(line: str, *, line_number: Optional[int] = None) -> Optional[TraceRecord]:
    """Parse one trace line; returns ``None`` for headers/blank lines."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    if text.startswith("START"):
        return None
    fields = text.split()
    if fields[0] not in _OPS:
        raise TraceFormatError(
            f"unknown access type {fields[0]!r}", line_number
        )
    if len(fields) < 3:
        raise TraceFormatError("need at least op, address, size", line_number)
    op = AccessType(fields[0])
    addr_text = fields[1].lower().removeprefix("0x")
    try:
        addr = int(addr_text, 16)
    except ValueError:
        raise TraceFormatError(f"bad address {fields[1]!r}", line_number) from None
    try:
        size = int(fields[2])
    except ValueError:
        raise TraceFormatError(f"bad size {fields[2]!r}", line_number) from None
    func = fields[3] if len(fields) > 3 else ""
    scope: Optional[str] = None
    frame: Optional[int] = None
    thread: Optional[int] = None
    var: Optional[VariablePath] = None
    rest = fields[4:]
    if rest:
        if rest[0] not in _SCOPES:
            raise TraceFormatError(f"unknown scope {rest[0]!r}", line_number)
        scope = rest[0]
        rest = rest[1:]
        # Local/heap lines carry frame and thread; global lines may.
        if len(rest) >= 2 and rest[0].isdigit() and rest[1].isdigit():
            frame = int(rest[0])
            thread = int(rest[1])
            rest = rest[2:]
        if rest:
            try:
                var = VariablePath.parse(" ".join(rest))
            except PathError as exc:
                raise TraceFormatError(str(exc), line_number) from exc
    return TraceRecord(
        op=op,
        addr=addr,
        size=size,
        func=func,
        scope=scope,
        frame=frame,
        thread=thread,
        var=var,
    )


def parse_trace(text: str) -> List[TraceRecord]:
    """Parse a whole trace file's text into records (headers skipped)."""
    records: List[TraceRecord] = []
    for i, line in enumerate(text.splitlines(), start=1):
        record = parse_line(line, line_number=i)
        if record is not None:
            records.append(record)
    return records


def format_trace(
    records: Iterable[TraceRecord], *, pid: int = DEFAULT_PID, header: bool = True
) -> str:
    """Render records as trace-file text (with the ``START PID`` header)."""
    out = io.StringIO()
    if header:
        out.write(f"START PID {pid}\n")
    for record in records:
        out.write(format_record(record))
        out.write("\n")
    return out.getvalue()


def _open_text(path: Union[str, Path], mode: str):
    """Open a trace file, transparently gzipped when it ends in ``.gz``."""
    if str(path).endswith(".gz"):
        import gzip

        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_trace(
    records: Iterable[TraceRecord],
    destination: Union[str, Path, TextIO],
    *,
    pid: int = DEFAULT_PID,
) -> None:
    """Write records to a path (``.gz`` compresses) or open text file.

    Path destinations are written atomically (temp file + rename), so a
    crash mid-write never leaves a torn trace behind.
    """
    if isinstance(destination, (str, Path)):
        from repro.obsv.atomic import atomic_write

        with atomic_write(destination, "wb") as raw:
            if str(destination).endswith(".gz"):
                import gzip

                with gzip.open(raw, "wt", encoding="utf-8") as handle:
                    _write(records, handle, pid)
            else:
                handle = io.TextIOWrapper(raw, encoding="utf-8")
                _write(records, handle, pid)
                handle.flush()
                handle.detach()
    else:
        _write(records, destination, pid)


def _write(records: Iterable[TraceRecord], handle: TextIO, pid: int) -> None:
    handle.write(f"START PID {pid}\n")
    for record in records:
        handle.write(format_record(record))
        handle.write("\n")


def read_trace(source: Union[str, Path, TextIO]) -> List[TraceRecord]:
    """Read records from a path (``.gz`` decompresses) or open file."""
    if isinstance(source, (str, Path)):
        with _open_text(source, "r") as handle:
            return parse_trace(handle.read())
    return parse_trace(source.read())


def iter_trace_lines(source: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records from a file without loading it whole (large traces)."""
    with _open_text(source, "r") as handle:
        for i, line in enumerate(handle, start=1):
            record = parse_line(line, line_number=i)
            if record is not None:
                yield record
