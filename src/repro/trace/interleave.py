"""Interleaving traces from multiple "threads" or co-running programs.

Gleipnir's trace format carries a thread id; combined with the physical
address mapping this lets shared-cache studies run in the same pipeline:
interleave two programs' traces (each tagged with its thread and shifted
into its own address region), map them through per-process page tables,
and feed the merged stream to a shared cache level.

Two merge disciplines are provided:

- :func:`round_robin` — k records from each trace in turn (a simple
  fine-grained SMT-style interleave);
- :func:`proportional` — interleave proportionally to trace lengths so
  both traces finish together (a fair-share quantum schedule).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def tag_thread(
    records: Iterable[TraceRecord],
    thread: int,
    *,
    address_offset: int = 0,
) -> Trace:
    """Stamp a thread id on every record (and optionally shift addresses
    into a per-process region, emulating distinct address spaces)."""
    return Trace(
        r.evolve(thread=thread, addr=r.addr + address_offset)
        for r in records
    )


def round_robin(
    traces: Sequence[Sequence[TraceRecord]], *, quantum: int = 1
) -> Trace:
    """Merge traces ``quantum`` records at a time, round robin.

    Exhausted traces drop out; the rest keep rotating.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    positions = [0] * len(traces)
    merged: List[TraceRecord] = []
    live = [i for i, t in enumerate(traces) if len(t)]
    while live:
        next_live = []
        for i in live:
            trace = traces[i]
            start = positions[i]
            end = min(start + quantum, len(trace))
            merged.extend(trace[start:end])
            positions[i] = end
            if end < len(trace):
                next_live.append(i)
        live = next_live
    return Trace(merged)


def proportional(traces: Sequence[Sequence[TraceRecord]]) -> Trace:
    """Merge so that all traces progress at the same *relative* rate.

    Uses largest-remainder scheduling over trace lengths: after the merge,
    any prefix contains each trace's records in proportion to its length.
    """
    total = sum(len(t) for t in traces)
    merged: List[TraceRecord] = []
    positions = [0] * len(traces)
    for _ in range(total):
        # Advance the trace with the least relative progress (ties break
        # by index, keeping the merge deterministic).
        best = None
        best_progress = None
        for i, trace in enumerate(traces):
            if positions[i] >= len(trace):
                continue
            progress = positions[i] / len(trace)
            if best is None or progress < best_progress:
                best = i
                best_progress = progress
        if best is None:  # pragma: no cover - defensive
            break
        merged.append(traces[best][positions[best]])
        positions[best] += 1
    return Trace(merged)
