"""Structural trace diff — the machine-checkable form of Figures 5/8/9.

The paper compares an original trace with its transformed counterpart in a
graphical diff tool.  The transformation engine preserves the untouched
lines verbatim, rewrites lines that match a rule (same op/size, new
address and variable path), and *inserts* extra lines for pointer
indirection (T2) and index arithmetic (T3).  This module aligns the two
streams and classifies every position:

- ``EQUAL``    — byte-for-byte identical record;
- ``CHANGED``  — aligned pair whose address/path differ (a remapped line);
- ``INSERTED`` — present only in the transformed trace (injected access);
- ``DELETED``  — present only in the original trace.

Alignment walks both traces with a windowed-resync scan over a
configurable *key* projection; the default key ``(op, size, func)``
matches how remapped lines keep everything except address and variable,
so rewrites align as CHANGED rather than delete+insert pairs, just as the
paper's figures show the ``=>`` changed-line markers with inserted green
lines in between.  The scan is O(n * window) — transformation diffs are
*local* edits (a remap or a short insertion run), so a small window
resynchronises exactly where a general LCS would, without the quadratic
blow-up ``difflib`` hits on long, highly repetitive traces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.trace.record import TraceRecord
from repro.trace.format import format_record


class DiffOp(enum.Enum):
    """Classification of one aligned diff position."""

    EQUAL = "equal"
    CHANGED = "changed"
    INSERTED = "inserted"
    DELETED = "deleted"


@dataclass(frozen=True)
class DiffEntry:
    """One aligned position of the diff."""

    op: DiffOp
    original: Optional[TraceRecord]
    transformed: Optional[TraceRecord]

    def render(self) -> str:
        """One line in a unified-diff-like text rendering."""
        marker = {
            DiffOp.EQUAL: "  ",
            DiffOp.CHANGED: "=>",
            DiffOp.INSERTED: "++",
            DiffOp.DELETED: "--",
        }[self.op]
        left = format_record(self.original) if self.original else ""
        right = format_record(self.transformed) if self.transformed else ""
        if self.op is DiffOp.EQUAL:
            return f"{marker} {left}"
        if self.op is DiffOp.INSERTED:
            return f"{marker} {'':<52s} | {right}"
        if self.op is DiffOp.DELETED:
            return f"{marker} {left}"
        return f"{marker} {left:<52s} | {right}"


@dataclass
class TraceDiff:
    """The full diff with summary counters."""

    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def equal(self) -> int:
        return sum(1 for e in self.entries if e.op is DiffOp.EQUAL)

    @property
    def changed(self) -> int:
        return sum(1 for e in self.entries if e.op is DiffOp.CHANGED)

    @property
    def inserted(self) -> int:
        return sum(1 for e in self.entries if e.op is DiffOp.INSERTED)

    @property
    def deleted(self) -> int:
        return sum(1 for e in self.entries if e.op is DiffOp.DELETED)

    def changed_pairs(self) -> List[Tuple[TraceRecord, TraceRecord]]:
        """All (original, transformed) pairs for CHANGED positions."""
        return [
            (e.original, e.transformed)
            for e in self.entries
            if e.op is DiffOp.CHANGED
            and e.original is not None
            and e.transformed is not None
        ]

    def inserted_records(self) -> List[TraceRecord]:
        """All records injected by the transformation."""
        return [
            e.transformed
            for e in self.entries
            if e.op is DiffOp.INSERTED and e.transformed is not None
        ]

    def render(self, *, context: Optional[int] = None) -> str:
        """Text rendering; ``context`` limits EQUAL runs around changes."""
        entries = self.entries
        if context is not None:
            keep = [False] * len(entries)
            for i, e in enumerate(entries):
                if e.op is not DiffOp.EQUAL:
                    for j in range(max(0, i - context), min(len(entries), i + context + 1)):
                        keep[j] = True
            lines: List[str] = []
            skipping = False
            for flag, e in zip(keep, entries):
                if flag:
                    lines.append(e.render())
                    skipping = False
                elif not skipping:
                    lines.append("   ...")
                    skipping = True
            return "\n".join(lines)
        return "\n".join(e.render() for e in entries)

    def summary(self) -> str:
        """One-line counts of the four diff classes."""
        return (
            f"equal={self.equal} changed={self.changed} "
            f"inserted={self.inserted} deleted={self.deleted}"
        )


def _default_key(record: TraceRecord) -> Hashable:
    """Alignment key: remaps keep op/size/func, so exclude addr/var."""
    return (record.op, record.size, record.func)


def diff_traces(
    original: Sequence[TraceRecord],
    transformed: Sequence[TraceRecord],
    *,
    key: Callable[[TraceRecord], Hashable] = _default_key,
    window: int = 64,
) -> TraceDiff:
    """Align two traces and classify every position.

    ``key`` controls alignment granularity; records whose keys match are
    candidates for pairing.  Paired records that are not identical are
    CHANGED; unpaired records are INSERTED/DELETED.  ``window`` bounds how
    far ahead the scan looks to resynchronise after an insertion or
    deletion run; transformation edits are local, so the default is ample.
    """
    a = list(original)
    b = list(transformed)
    a_keys = [key(r) for r in a]
    b_keys = [key(r) for r in b]
    diff = TraceDiff()
    entries = diff.entries
    i = j = 0
    n_a, n_b = len(a), len(b)
    while i < n_a and j < n_b:
        if a_keys[i] == b_keys[j]:
            op = DiffOp.EQUAL if a[i] == b[j] else DiffOp.CHANGED
            entries.append(DiffEntry(op, a[i], b[j]))
            i += 1
            j += 1
            continue
        # Resynchronise: the smallest skip on either side wins.  Prefer
        # insertions at equal distance — transformed traces grow.
        resynced = False
        for d in range(1, window + 1):
            if j + d < n_b and a_keys[i] == b_keys[j + d]:
                for k in range(d):
                    entries.append(DiffEntry(DiffOp.INSERTED, None, b[j + k]))
                j += d
                resynced = True
                break
            if i + d < n_a and a_keys[i + d] == b_keys[j]:
                for k in range(d):
                    entries.append(DiffEntry(DiffOp.DELETED, a[i + k], None))
                i += d
                resynced = True
                break
        if not resynced:
            # No nearby anchor: pair positionally as CHANGED.
            entries.append(DiffEntry(DiffOp.CHANGED, a[i], b[j]))
            i += 1
            j += 1
    for k in range(i, n_a):
        entries.append(DiffEntry(DiffOp.DELETED, a[k], None))
    for k in range(j, n_b):
        entries.append(DiffEntry(DiffOp.INSERTED, None, b[k]))
    return diff
