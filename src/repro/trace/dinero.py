"""DineroIV ``din`` format interoperability.

The *original* DineroIV consumes plain three-field traces — the paper:
"for rudimentary analysis it is sufficient to analyze a trace consisting
of a 3-tuple trace-line consisting of an access type, address, and the
size of the data access".  The din format spells that as::

    <label> <hex-address> <size>

with label ``0`` = data read, ``1`` = data write, ``2`` = instruction
fetch.  Exporting drops the Gleipnir metadata (that is the point: it is
what the unmodified simulator would see); importing synthesises
metadata-free records.  A Gleipnir ``M`` (modify) exports as a write,
matching how cachegrind-style modifies collapse.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from repro.errors import TraceFormatError
from repro.trace.record import AccessType, TraceRecord
from repro.trace.stream import Trace

_EXPORT_LABEL = {
    AccessType.LOAD: "0",
    AccessType.STORE: "1",
    AccessType.MODIFY: "1",
    AccessType.MISC: "2",
}

_IMPORT_OP = {
    "0": AccessType.LOAD,
    "1": AccessType.STORE,
    "2": AccessType.MISC,
}


def to_dinero(records: Iterable[TraceRecord]) -> str:
    """Render records as din text (label, hex address, size)."""
    lines = [
        f"{_EXPORT_LABEL[r.op]} {r.addr:x} {r.size}" for r in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_dinero(
    records: Iterable[TraceRecord], path: Union[str, Path]
) -> Path:
    """Write a din-format trace file."""
    target = Path(path)
    target.write_text(to_dinero(records), encoding="utf-8")
    return target


def from_dinero(text: str) -> Trace:
    """Parse din text into metadata-free records."""
    records: List[TraceRecord] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 2:
            raise TraceFormatError("din line needs label and address", lineno)
        op = _IMPORT_OP.get(fields[0])
        if op is None:
            raise TraceFormatError(f"unknown din label {fields[0]!r}", lineno)
        try:
            addr = int(fields[1], 16)
        except ValueError:
            raise TraceFormatError(f"bad din address {fields[1]!r}", lineno) from None
        size = 4
        if len(fields) > 2:
            try:
                size = int(fields[2])
            except ValueError:
                raise TraceFormatError(f"bad din size {fields[2]!r}", lineno) from None
        records.append(TraceRecord(op, addr, size))
    return Trace(records)


def read_dinero(path: Union[str, Path]) -> Trace:
    """Read a din-format trace file."""
    return from_dinero(Path(path).read_text(encoding="utf-8"))
