"""Columnar (struct-of-arrays) binary trace store — format version 2.

The v1 container (:mod:`repro.trace.binformat`) is a zlib-compressed
*record stream*: 20 bytes per record, decoded one Python object at a
time.  That layout is ideal for archival but wrong for simulation — the
vectorized kernels want *columns* (one contiguous ``addr`` array, one
``size`` array, ...), and a campaign re-decodes the identical stream
once per grid point.

Version 2 lays the trace out struct-of-arrays::

    TDST \\x02 COL                                  8-byte header
    addr    column   uint64[n]   (8-byte aligned)
    size    column   uint32[n]
    kind    column   uint8[n]    index into "LSMX"
    scope   column   uint8[n]    index into the Gleipnir scope table
    frame   column   uint8[n]    0xFF = absent
    thread  column   uint8[n]    0xFF = absent
    func_id column   uint16[n]   0xFFFF = absent
    var_id  column   int32[n]    -1 = absent
    zlib function-name table, zlib variable-path table
    footer  (column offsets/lengths + record count)
    u32 footer length, 8-byte trailer magic "TDSTCOLF"

Columns are stored raw (uncompressed) and 8-byte aligned, so
:class:`ColumnarTrace` opens the file with ``mmap`` and exposes every
column as a zero-copy numpy view — loading a 10M-access trace costs one
``mmap`` call and eight ``np.frombuffer`` slices, not 10M object
constructions.  The footer lives at the *end* so writers stream columns
sequentially and readers seek backwards from EOF.

Round-trip is exact: ``records -> save_columnar -> iter_records`` yields
the identical record sequence (same guarantee v1 gives), and
:func:`upgrade_binary` converts any existing trace file (text, gzipped
text, or v1 ``TDST``) in one pass through the same atomic
temp-file+rename path every other artifact writer uses.
"""

from __future__ import annotations

import mmap
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.ctypes_model.path import VariablePath
from repro.trace.binformat import (
    _NO_FIELD,
    _NO_FUNC,
    _OPS,
    _SCOPE_ID,
    _SCOPES,
)
from repro.trace.record import AccessType, TraceRecord

_MAGIC = b"TDST"
_VERSION = 2
#: Full 8-byte header: shared TDST magic, version byte, "COL" pad.
_HEADER = _MAGIC + bytes([_VERSION]) + b"COL"
#: Trailer magic closing every columnar file.
_TRAILER_MAGIC = b"TDSTCOLF"
#: ``<u32 footer length><trailer magic>`` at the very end of the file.
_TRAILER = struct.Struct("<I8s")

#: ``(name, numpy dtype)`` per column, in on-disk order.
_COLUMNS: Tuple[Tuple[str, np.dtype], ...] = (
    ("addr", np.dtype("<u8")),
    ("size", np.dtype("<u4")),
    ("kind", np.dtype("<u1")),
    ("scope", np.dtype("<u1")),
    ("frame", np.dtype("<u1")),
    ("thread", np.dtype("<u1")),
    ("func_id", np.dtype("<u2")),
    ("var_id", np.dtype("<i4")),
)
#: Footer: record count + ``(offset, length)`` per column and per string
#: table (functions, then variables).
_FOOTER = struct.Struct("<Q" + "QQ" * (len(_COLUMNS) + 2))

#: sentinel for "no variable" in the ``var_id`` column
_NO_VAR = -1

#: Op code of miscellaneous (``X``) records within the ``kind`` column.
MISC_KIND = _OPS.index("X")


def _pad8(n: int) -> int:
    """Bytes of zero padding that 8-align an offset of ``n``."""
    return (-n) % 8


def save_columnar(
    records: Iterable[TraceRecord], path: Union[str, Path]
) -> Path:
    """Write records in the columnar v2 format (atomic temp+rename).

    Accepts any record iterable — a :class:`~repro.trace.stream.Trace`,
    a generator from :func:`~repro.trace.stream.iter_records`, a list —
    and interns function names and variable paths exactly like the v1
    writer, so ids are assigned in first-appearance order.
    """
    addrs: List[int] = []
    sizes: List[int] = []
    kinds: List[int] = []
    scopes: List[int] = []
    frames: List[int] = []
    threads: List[int] = []
    func_ids: List[int] = []
    var_ids: List[int] = []
    func_table: Dict[str, int] = {}
    funcs: List[str] = []
    var_table: Dict[str, int] = {}
    variables: List[str] = []
    for r in records:
        addrs.append(r.addr)
        sizes.append(r.size)
        kinds.append(_OPS.index(r.op.value))
        scopes.append(_SCOPE_ID.get(r.scope or "", 0))
        frames.append(r.frame if r.frame is not None else _NO_FIELD)
        threads.append(r.thread if r.thread is not None else _NO_FIELD)
        if r.func:
            fid = func_table.get(r.func)
            if fid is None:
                fid = func_table[r.func] = len(funcs)
                funcs.append(r.func)
        else:
            fid = _NO_FUNC
        func_ids.append(fid)
        if r.var is not None:
            text = str(r.var)
            vid = var_table.get(text)
            if vid is None:
                vid = var_table[text] = len(variables)
                variables.append(text)
        else:
            vid = _NO_VAR
        var_ids.append(vid)

    columns = (
        np.asarray(addrs, dtype=_COLUMNS[0][1]),
        np.asarray(sizes, dtype=_COLUMNS[1][1]),
        np.asarray(kinds, dtype=_COLUMNS[2][1]),
        np.asarray(scopes, dtype=_COLUMNS[3][1]),
        np.asarray(frames, dtype=_COLUMNS[4][1]),
        np.asarray(threads, dtype=_COLUMNS[5][1]),
        np.asarray(func_ids, dtype=_COLUMNS[6][1]),
        np.asarray(var_ids, dtype=_COLUMNS[7][1]),
    )
    func_blob = zlib.compress("\n".join(funcs).encode("utf-8"))
    var_blob = zlib.compress("\n".join(variables).encode("utf-8"))

    target = Path(path)
    from repro.obsv.atomic import atomic_write

    with atomic_write(target, "wb") as handle:
        position = handle.write(_HEADER)
        spans: List[Tuple[int, int]] = []
        for column in columns:
            pad = _pad8(position)
            if pad:
                position += handle.write(b"\0" * pad)
            blob = column.tobytes()
            spans.append((position, len(blob)))
            position += handle.write(blob)
        for blob in (func_blob, var_blob):
            spans.append((position, len(blob)))
            position += handle.write(blob)
        footer = _FOOTER.pack(
            len(columns[0]), *(v for span in spans for v in span)
        )
        handle.write(footer)
        handle.write(_TRAILER.pack(len(footer), _TRAILER_MAGIC))
    return target


def is_columnar(path: Union[str, Path]) -> bool:
    """True when ``path`` starts with the v2 columnar header."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(_HEADER)) == _HEADER
    except OSError:
        return False


class ColumnarTrace:
    """A memory-mapped columnar trace: zero-copy numpy column views.

    Use as a context manager (or call :meth:`close`) to release the
    mapping; the column arrays are *views into the map* and must not
    outlive it.  Decoded forms (:meth:`iter_records`, :meth:`to_trace`)
    are built on demand — the cheap path is to hand the raw columns
    straight to the vectorized simulators.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            try:
                self._mm: Optional[mmap.mmap] = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError as exc:
                raise TraceFormatError(
                    f"{self.path}: cannot map columnar trace: {exc}"
                ) from exc
        try:
            self._parse_footer()
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the mapping (column views become invalid).

        Cached column views are dropped first; if the *caller* still
        holds a view, the map cannot be unmapped eagerly (numpy exports
        a pointer into it), so the reference is released and the OS
        mapping goes away when the last view is garbage-collected.
        """
        if self._mm is not None:
            self._cols = {}
            try:
                self._mm.close()
            except BufferError:
                pass
            self._mm = None

    def __enter__(self) -> "ColumnarTrace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- parsing -------------------------------------------------------------

    def _fail(self, message: str) -> TraceFormatError:
        return TraceFormatError(f"{self.path}: {message}")

    def _parse_footer(self) -> None:
        mm = self._mm
        assert mm is not None
        size = len(mm)
        if size < len(_HEADER) or mm[:4] != _MAGIC:
            raise self._fail("not a TDST trace file")
        if mm[4] != _VERSION:
            raise self._fail(
                f"version {mm[4]} is not the columnar format "
                f"(expected {_VERSION}; version-1 streams go through "
                "repro.trace.binformat)"
            )
        if size < len(_HEADER) + _TRAILER.size:
            raise self._fail(
                f"truncated at offset {size}: no room for the "
                f"{_TRAILER.size}-byte trailer"
            )
        footer_len, trailer_magic = _TRAILER.unpack_from(
            mm, size - _TRAILER.size
        )
        if trailer_magic != _TRAILER_MAGIC:
            raise self._fail(
                f"bad trailer magic at offset {size - 8}: "
                f"{trailer_magic!r} (file truncated or overwritten?)"
            )
        footer_off = size - _TRAILER.size - footer_len
        if footer_len != _FOOTER.size or footer_off < len(_HEADER):
            raise self._fail(
                f"footer length {footer_len} at offset {footer_off} is "
                f"invalid (expected {_FOOTER.size})"
            )
        fields = _FOOTER.unpack_from(mm, footer_off)
        self._count = fields[0]
        spans = list(zip(fields[1::2], fields[2::2]))
        names = [name for name, _ in _COLUMNS] + ["functions", "variables"]
        for name, (off, length) in zip(names, spans):
            if off + length > footer_off:
                raise self._fail(
                    f"truncated at offset {footer_off}: {name} column "
                    f"needs bytes [{off}, {off + length})"
                )
        self._spans = dict(zip(names, spans))
        view = memoryview(mm)
        self._cols: Dict[str, np.ndarray] = {}
        for name, dtype in _COLUMNS:
            off, length = self._spans[name]
            if length != self._count * dtype.itemsize:
                raise self._fail(
                    f"{name} column length {length} does not match "
                    f"{self._count} records of {dtype.itemsize} bytes"
                )
            self._cols[name] = np.frombuffer(
                view, dtype=dtype, count=self._count, offset=off
            )
        self._funcs: Optional[List[str]] = None
        self._vars: Optional[List[str]] = None

    def _strings(self, which: str) -> List[str]:
        mm = self._mm
        if mm is None:
            raise self._fail("columnar trace is closed")
        off, length = self._spans[which]
        try:
            blob = zlib.decompress(mm[off : off + length])
        except zlib.error as exc:
            raise self._fail(
                f"corrupt {which} table at offset {off}: {exc}"
            ) from exc
        return blob.decode("utf-8").split("\n") if blob else []

    # -- columns (zero-copy views) -------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def addrs(self) -> np.ndarray:
        """``uint64[n]`` access addresses."""
        return self._cols["addr"]

    @property
    def sizes(self) -> np.ndarray:
        """``uint32[n]`` access sizes."""
        return self._cols["size"]

    @property
    def kinds(self) -> np.ndarray:
        """``uint8[n]`` op codes (index into ``"LSMX"``)."""
        return self._cols["kind"]

    @property
    def var_ids(self) -> np.ndarray:
        """``int32[n]`` variable-path ids (``-1`` = unresolved)."""
        return self._cols["var_id"]

    @property
    def func_ids(self) -> np.ndarray:
        """``uint16[n]`` function ids (``0xFFFF`` = absent)."""
        return self._cols["func_id"]

    @property
    def nbytes_mapped(self) -> int:
        """Total bytes of the underlying map (telemetry)."""
        return len(self._mm) if self._mm is not None else 0

    @property
    def functions(self) -> List[str]:
        """The interned function-name table."""
        if self._funcs is None:
            self._funcs = self._strings("functions")
        return self._funcs

    @property
    def variables(self) -> List[str]:
        """The interned variable-path table."""
        if self._vars is None:
            self._vars = self._strings("variables")
        return self._vars

    def data_indices(self) -> np.ndarray:
        """Indices of demand accesses (``X`` records dropped)."""
        return np.nonzero(self.kinds != MISC_KIND)[0]

    def attribution_ids(
        self, attribution: str = "base"
    ) -> Tuple[List[str], np.ndarray]:
        """Per-record attribution labels as ``(names, int64 ids)``.

        Maps the ``var_id`` column through
        :func:`repro.cache.simulator.attribution_label` — each distinct
        variable path is parsed once, so the cost is O(distinct vars +
        n), not O(n) path parses.  Ids are assigned in first-appearance
        order over the *record stream* (the same order the per-record
        pipeline produces); ``-1`` marks unattributed records.
        """
        from repro.cache.simulator import attribution_label

        # Label per table entry, computed once per distinct path.
        table = self.variables
        entry_labels: List[Optional[str]] = []
        for text in table:
            record = TraceRecord(
                op=AccessType.LOAD,
                addr=0,
                size=1,
                var=VariablePath.parse(text),
            )
            entry_labels.append(attribution_label(record, attribution))
        names: List[str] = []
        name_ids: Dict[str, int] = {}
        entry_ids = np.full(len(table) + 1, -1, dtype=np.int64)
        for i, label in enumerate(entry_labels):
            if label is None:
                continue
            lid = name_ids.get(label)
            if lid is None:
                lid = name_ids[label] = len(names)
                names.append(label)
            entry_ids[i] = lid
        # var_id -1 indexes the sentinel slot at the end of entry_ids.
        return names, entry_ids[self.var_ids]

    # -- decoded views -------------------------------------------------------

    def iter_records(self) -> Iterator[TraceRecord]:
        """Yield decoded :class:`TraceRecord` objects, one at a time."""
        funcs = self.functions
        variables = self.variables
        parsed: Dict[int, VariablePath] = {}
        cols = self._cols
        addrs = cols["addr"]
        sizes = cols["size"]
        kinds = cols["kind"]
        scopes = cols["scope"]
        frames = cols["frame"]
        threads = cols["thread"]
        func_ids = cols["func_id"]
        var_ids = cols["var_id"]
        for i in range(self._count):
            vid = int(var_ids[i])
            var: Optional[VariablePath] = None
            if vid != _NO_VAR:
                var = parsed.get(vid)
                if var is None:
                    var = VariablePath.parse(variables[vid])
                    parsed[vid] = var
            fid = int(func_ids[i])
            frame = int(frames[i])
            thread = int(threads[i])
            scope = int(scopes[i])
            yield TraceRecord(
                op=AccessType(_OPS[int(kinds[i])]),
                addr=int(addrs[i]),
                size=int(sizes[i]),
                func=funcs[fid] if fid != _NO_FUNC else "",
                scope=_SCOPES[scope] if scope else None,
                frame=frame if frame != _NO_FIELD else None,
                thread=thread if thread != _NO_FIELD else None,
                var=var,
            )

    def to_trace(self):
        """Materialise the full record list as a ``Trace``."""
        from repro.trace.stream import Trace

        return Trace(self.iter_records())


def open_columnar(path: Union[str, Path]) -> ColumnarTrace:
    """Open a columnar trace for zero-copy column access."""
    return ColumnarTrace(path)


def load_columnar(path: Union[str, Path]):
    """Read a columnar trace fully into a ``Trace`` (decoded records)."""
    with ColumnarTrace(path) as columnar:
        return columnar.to_trace()


def upgrade_binary(
    source: Union[str, Path], target: Union[str, Path]
) -> Path:
    """One-shot upgrade: any trace file -> columnar v2.

    ``source`` may be a v1 ``TDST`` stream, plain or gzipped Gleipnir
    text — anything :func:`repro.trace.stream.iter_records` reads.  The
    record sequence is preserved exactly; upgrading an already-columnar
    file is a plain rewrite.
    """
    from repro.trace.stream import iter_records

    return save_columnar(iter_records(source), target)
