"""Trace-level statistics (pre-simulation).

These are the "rudimentary analysis" numbers the paper's introduction
mentions: access mix, footprint, per-variable and per-function access
counts, and a reuse-distance style locality indicator.  They require no
cache model and are cheap enough to compute on every trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.trace.record import AccessType, TraceRecord


@dataclass
class TraceStats:
    """Aggregate statistics over one trace."""

    total: int = 0
    loads: int = 0
    stores: int = 0
    modifies: int = 0
    misc: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: distinct byte addresses touched (footprint in bytes)
    footprint_bytes: int = 0
    #: accesses per function name
    by_function: Dict[str, int] = field(default_factory=dict)
    #: accesses per resolved base variable name
    by_variable: Dict[str, int] = field(default_factory=dict)
    #: accesses per scope code
    by_scope: Dict[str, int] = field(default_factory=dict)

    @property
    def symbol_coverage(self) -> float:
        """Fraction of accesses that resolved to a variable."""
        if self.total == 0:
            return 0.0
        return sum(self.by_variable.values()) / self.total

    def top_variables(self, n: int = 10) -> Tuple[Tuple[str, int], ...]:
        """The ``n`` most-accessed variables (name, count), descending."""
        return tuple(
            sorted(self.by_variable.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        )

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"accesses    : {self.total}",
            f"  loads     : {self.loads}",
            f"  stores    : {self.stores}",
            f"  modifies  : {self.modifies}",
            f"  misc      : {self.misc}",
            f"bytes read  : {self.bytes_read}",
            f"bytes written: {self.bytes_written}",
            f"footprint   : {self.footprint_bytes} bytes",
            f"symbol cover: {self.symbol_coverage:.1%}",
        ]
        if self.by_variable:
            lines.append("top variables:")
            for name, count in self.top_variables(5):
                lines.append(f"  {name:<24s} {count}")
        return "\n".join(lines)


def compute_stats(records: Iterable[TraceRecord]) -> TraceStats:
    """Compute :class:`TraceStats` in one pass."""
    stats = TraceStats()
    touched: set[int] = set()
    by_function: Counter[str] = Counter()
    by_variable: Counter[str] = Counter()
    by_scope: Counter[str] = Counter()
    for r in records:
        stats.total += 1
        if r.op is AccessType.LOAD:
            stats.loads += 1
            stats.bytes_read += r.size
        elif r.op is AccessType.STORE:
            stats.stores += 1
            stats.bytes_written += r.size
        elif r.op is AccessType.MODIFY:
            stats.modifies += 1
            stats.bytes_read += r.size
            stats.bytes_written += r.size
        else:
            stats.misc += 1
        touched.update(range(r.addr, r.end))
        if r.func:
            by_function[r.func] += 1
        if r.var is not None:
            by_variable[r.var.base] += 1
        if r.scope is not None:
            by_scope[r.scope] += 1
    stats.footprint_bytes = len(touched)
    stats.by_function = dict(by_function)
    stats.by_variable = dict(by_variable)
    stats.by_scope = dict(by_scope)
    return stats


def reuse_distances(records: Iterable[TraceRecord], *, block_size: int = 1) -> list[int]:
    """LRU reuse distance of each access at ``block_size`` granularity.

    The reuse distance of an access is the number of *distinct* blocks
    touched since the previous access to the same block (``-1`` encodes a
    cold first touch).  A fully-associative LRU cache of capacity ``C``
    blocks hits exactly the accesses with distance ``< C``, which makes
    this the classic one-pass locality characterisation.

    The implementation keeps an ordered dict as an LRU stack; distances are
    positions from the top.  O(n * d) worst case but fine at trace scale.
    """
    stack: list[int] = []  # most recent block last
    seen: set[int] = set()
    distances: list[int] = []
    for r in records:
        block = r.addr // block_size
        if block in seen:
            idx = stack.index(block)
            distances.append(len(stack) - 1 - idx)
            stack.pop(idx)
        else:
            distances.append(-1)
            seen.add(block)
        stack.append(block)
    return distances
