"""Rewriting a virtual trace to physical addresses.

Implements the paper's proposed remedy for shared-cache simulation:
"mapping kernel page-maps information directly into the trace".  Every
record's address goes through a :class:`~repro.memory.paging.PageTable`;
the variable metadata is preserved (symbolisation remains virtual — the
page map only changes *where* the bytes live, not what they are).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.memory.paging import PageTable
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def to_physical(
    records: Iterable[TraceRecord], page_table: PageTable
) -> Trace:
    """Translate every record's address through ``page_table``.

    Accesses never straddle pages in practice (the tracer emits <= 16-byte
    scalar accesses with natural alignment); an access that *does* cross
    a page boundary is split into per-page records, since its pieces may
    land in unrelated frames.
    """
    return Trace(iter_physical(records, page_table))


def iter_physical(
    records: Iterable[TraceRecord], page_table: PageTable
) -> Iterator[TraceRecord]:
    """Streaming variant of :func:`to_physical`."""
    page_size = page_table.page_size
    for record in records:
        first_page = record.addr // page_size
        last_page = (record.addr + max(record.size, 1) - 1) // page_size
        if first_page == last_page:
            yield record.evolve(addr=page_table.translate(record.addr))
            continue
        # Split a page-straddling access at page boundaries.
        cursor = record.addr
        remaining = record.size
        while remaining > 0:
            page_end = (cursor // page_size + 1) * page_size
            chunk = min(remaining, page_end - cursor)
            yield record.evolve(
                addr=page_table.translate(cursor), size=chunk
            )
            cursor += chunk
            remaining -= chunk
