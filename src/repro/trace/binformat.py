"""Compact binary trace format for large traces.

The text format is human-auditable but ~50 bytes/record; kernels at
figure scale produce multi-million-line traces where parse time dominates
(the repro-band's "slow simulation of large traces" concern).  This
module defines a compact container:

- magic ``TDST``, version byte;
- two zlib-compressed string tables (function names, variable paths);
- a zlib-compressed record array of fixed 20-byte entries:
  ``op(1) scope(1) frame(1) thread(1) size(2) func_id(2) var_id(4) addr(8)``.

Round-trip is exact (same records in, same records out); a 1M-record
trace stores in ~2-6 MB depending on path diversity and loads ~5x faster
than text.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import TraceFormatError
from repro.ctypes_model.path import VariablePath
from repro.trace.record import AccessType, TraceRecord
from repro.trace.stream import Trace

_MAGIC = b"TDST"
_VERSION = 1
_RECORD = struct.Struct("<BBBBHHIQ")

_OPS = "LSMX"
_SCOPES = ["", "LV", "LS", "GV", "GS", "HV", "HS"]
_SCOPE_ID = {name: i for i, name in enumerate(_SCOPES)}

#: sentinel ids for "absent" fields
_NO_FIELD = 0xFF
_NO_VAR = 0xFFFFFFFF
_NO_FUNC = 0xFFFF


def _intern(table: Dict[str, int], items: List[str], value: str) -> int:
    index = table.get(value)
    if index is None:
        index = len(items)
        table[value] = index
        items.append(value)
    return index


def save_binary(records: Iterable[TraceRecord], path: Union[str, Path]) -> Path:
    """Write records in the compact binary format."""
    func_table: Dict[str, int] = {}
    funcs: List[str] = []
    var_table: Dict[str, int] = {}
    variables: List[str] = []
    body = bytearray()
    count = 0
    for r in records:
        func_id = _intern(func_table, funcs, r.func) if r.func else _NO_FUNC
        var_id = (
            _intern(var_table, variables, str(r.var))
            if r.var is not None
            else _NO_VAR
        )
        scope_id = _SCOPE_ID.get(r.scope or "", 0)
        body += _RECORD.pack(
            _OPS.index(r.op.value),
            scope_id,
            r.frame if r.frame is not None else _NO_FIELD,
            r.thread if r.thread is not None else _NO_FIELD,
            r.size,
            func_id,
            var_id,
            r.addr,
        )
        count += 1
    func_blob = zlib.compress("\n".join(funcs).encode("utf-8"))
    var_blob = zlib.compress("\n".join(variables).encode("utf-8"))
    body_blob = zlib.compress(bytes(body))
    target = Path(path)
    from repro.obsv.atomic import atomic_write

    with atomic_write(target, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(bytes([_VERSION]))
        for blob in (func_blob, var_blob, body_blob):
            handle.write(struct.pack("<I", len(blob)))
        handle.write(struct.pack("<I", count))
        handle.write(func_blob)
        handle.write(var_blob)
        handle.write(body_blob)
    return target


#: Compressed bytes fed to the streaming decompressor per step.
_DECOMPRESS_CHUNK = 1 << 18

#: File-layout offsets: magic+version header, then three blob lengths
#: and the record count.
_HEADER_SIZE = 5
_COUNTS_SIZE = 16
_BODY_PREFIX = _HEADER_SIZE + _COUNTS_SIZE


def _decompress_blob(
    mm, start: int, length: int, what: str, path: Path
) -> bytes:
    try:
        return zlib.decompress(mm[start : start + length])
    except zlib.error as exc:
        raise TraceFormatError(
            f"{path}: corrupt {what} at offset {start}: {exc}"
        ) from exc


def iter_binary(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Yield records from a compact binary trace one at a time.

    The file is memory-mapped and the zlib-compressed record body is
    decompressed *incrementally*, so peak resident memory is one
    decompression window plus one record — not the whole file and not
    the full 20-byte-per-record body (a 100M-record trace used to pin
    ~2 GiB before the first record came out).

    Truncated or corrupt files raise :class:`TraceFormatError` naming
    the byte offset where the file stopped making sense, so a torn
    download or interrupted copy is diagnosable from the message alone.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        if os.fstat(handle.fileno()).st_size == 0:
            raise TraceFormatError(f"{path}: not a TDST binary trace (empty file)")
        mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        size = len(mm)
        if size < _HEADER_SIZE or mm[:4] != _MAGIC:
            raise TraceFormatError(f"{path}: not a TDST binary trace")
        if mm[4] != _VERSION:
            hint = (
                " (version 2 is the columnar format; "
                "use repro.trace.columnar)"
                if mm[4] == 2
                else ""
            )
            raise TraceFormatError(
                f"{path}: unsupported version {mm[4]} "
                f"(expected {_VERSION}){hint}"
            )
        if size < _BODY_PREFIX:
            raise TraceFormatError(
                f"{path}: truncated at offset {size}: header needs "
                f"{_BODY_PREFIX} bytes"
            )
        func_len, var_len, body_len = struct.unpack_from(
            "<III", mm, _HEADER_SIZE
        )
        (count,) = struct.unpack_from("<I", mm, _HEADER_SIZE + 12)
        offset = _BODY_PREFIX
        for what, length in (
            ("function table", func_len),
            ("variable table", var_len),
            ("record body", body_len),
        ):
            if offset + length > size:
                raise TraceFormatError(
                    f"{path}: truncated at offset {size}: {what} needs "
                    f"bytes [{offset}, {offset + length})"
                )
            offset += length
        func_off = _BODY_PREFIX
        var_off = func_off + func_len
        body_off = var_off + var_len
        func_blob = _decompress_blob(
            mm, func_off, func_len, "function table", path
        )
        var_blob = _decompress_blob(
            mm, var_off, var_len, "variable table", path
        )
        funcs = func_blob.decode("utf-8").split("\n") if func_blob else []
        variables = var_blob.decode("utf-8").split("\n") if var_blob else []

        parsed_paths: Dict[int, VariablePath] = {}
        decomp = zlib.decompressobj()
        buffer = bytearray()
        yielded = 0
        rec_size = _RECORD.size
        position = body_off
        body_end = body_off + body_len
        while position < body_end or buffer:
            if position < body_end:
                step = min(_DECOMPRESS_CHUNK, body_end - position)
                try:
                    buffer += decomp.decompress(mm[position : position + step])
                except zlib.error as exc:
                    raise TraceFormatError(
                        f"{path}: corrupt record body at offset "
                        f"{position}: {exc}"
                    ) from exc
                position += step
                if position >= body_end:
                    buffer += decomp.flush()
            n_full = len(buffer) // rec_size
            if n_full:
                window = bytes(buffer[: n_full * rec_size])
                del buffer[: n_full * rec_size]
                for fields in _RECORD.iter_unpack(window):
                    op_i, scope_i, frame, thread, size_, func_id, var_id, addr = fields
                    if yielded >= count:
                        raise TraceFormatError(
                            f"{path}: record body at offset {body_off} "
                            f"holds more than the declared {count} records"
                        )
                    var: Optional[VariablePath] = None
                    if var_id != _NO_VAR:
                        var = parsed_paths.get(var_id)
                        if var is None:
                            var = VariablePath.parse(variables[var_id])
                            parsed_paths[var_id] = var
                    yielded += 1
                    yield TraceRecord(
                        op=AccessType(_OPS[op_i]),
                        addr=addr,
                        size=size_,
                        func=funcs[func_id] if func_id != _NO_FUNC else "",
                        scope=_SCOPES[scope_i] if scope_i else None,
                        frame=frame if frame != _NO_FIELD else None,
                        thread=thread if thread != _NO_FIELD else None,
                        var=var,
                    )
            elif position >= body_end:
                break
        if buffer:
            raise TraceFormatError(
                f"{path}: record body at offset {body_off} ends with "
                f"{len(buffer)} trailing bytes (not a whole "
                f"{rec_size}-byte record)"
            )
        if yielded != count:
            raise TraceFormatError(
                f"{path}: record body at offset {body_off} decoded "
                f"{yielded} records but the header declares {count}"
            )
    finally:
        mm.close()


def load_binary(path: Union[str, Path]) -> Trace:
    """Read a compact binary trace."""
    return Trace(iter_binary(path))
