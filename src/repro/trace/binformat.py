"""Compact binary trace format for large traces.

The text format is human-auditable but ~50 bytes/record; kernels at
figure scale produce multi-million-line traces where parse time dominates
(the repro-band's "slow simulation of large traces" concern).  This
module defines a compact container:

- magic ``TDST``, version byte;
- two zlib-compressed string tables (function names, variable paths);
- a zlib-compressed record array of fixed 20-byte entries:
  ``op(1) scope(1) frame(1) thread(1) size(2) func_id(2) var_id(4) addr(8)``.

Round-trip is exact (same records in, same records out); a 1M-record
trace stores in ~2-6 MB depending on path diversity and loads ~5x faster
than text.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import TraceFormatError
from repro.ctypes_model.path import VariablePath
from repro.trace.record import AccessType, TraceRecord
from repro.trace.stream import Trace

_MAGIC = b"TDST"
_VERSION = 1
_RECORD = struct.Struct("<BBBBHHIQ")

_OPS = "LSMX"
_SCOPES = ["", "LV", "LS", "GV", "GS", "HV", "HS"]
_SCOPE_ID = {name: i for i, name in enumerate(_SCOPES)}

#: sentinel ids for "absent" fields
_NO_FIELD = 0xFF
_NO_VAR = 0xFFFFFFFF
_NO_FUNC = 0xFFFF


def _intern(table: Dict[str, int], items: List[str], value: str) -> int:
    index = table.get(value)
    if index is None:
        index = len(items)
        table[value] = index
        items.append(value)
    return index


def save_binary(records: Iterable[TraceRecord], path: Union[str, Path]) -> Path:
    """Write records in the compact binary format."""
    func_table: Dict[str, int] = {}
    funcs: List[str] = []
    var_table: Dict[str, int] = {}
    variables: List[str] = []
    body = bytearray()
    count = 0
    for r in records:
        func_id = _intern(func_table, funcs, r.func) if r.func else _NO_FUNC
        var_id = (
            _intern(var_table, variables, str(r.var))
            if r.var is not None
            else _NO_VAR
        )
        scope_id = _SCOPE_ID.get(r.scope or "", 0)
        body += _RECORD.pack(
            _OPS.index(r.op.value),
            scope_id,
            r.frame if r.frame is not None else _NO_FIELD,
            r.thread if r.thread is not None else _NO_FIELD,
            r.size,
            func_id,
            var_id,
            r.addr,
        )
        count += 1
    func_blob = zlib.compress("\n".join(funcs).encode("utf-8"))
    var_blob = zlib.compress("\n".join(variables).encode("utf-8"))
    body_blob = zlib.compress(bytes(body))
    target = Path(path)
    from repro.obsv.atomic import atomic_write

    with atomic_write(target, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(bytes([_VERSION]))
        for blob in (func_blob, var_blob, body_blob):
            handle.write(struct.pack("<I", len(blob)))
        handle.write(struct.pack("<I", count))
        handle.write(func_blob)
        handle.write(var_blob)
        handle.write(body_blob)
    return target


def iter_binary(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Yield records from a compact binary trace one at a time.

    The compressed file and its decompressed 20-byte-per-record body are
    held in memory (they are the compact representation); the expensive
    Python-object form is materialized one record at a time, so peak
    memory stays bounded by the packed body plus one record — not by the
    full :class:`TraceRecord` list ``load_binary`` builds.
    """
    data = Path(path).read_bytes()
    if data[:4] != _MAGIC:
        raise TraceFormatError(f"{path}: not a TDST binary trace")
    if data[4] != _VERSION:
        raise TraceFormatError(
            f"{path}: unsupported version {data[4]} (expected {_VERSION})"
        )
    offset = 5
    lengths = struct.unpack_from("<III", data, offset)
    offset += 12
    (count,) = struct.unpack_from("<I", data, offset)
    offset += 4
    blobs = []
    for length in lengths:
        blobs.append(zlib.decompress(data[offset : offset + length]))
        offset += length
    del data
    func_blob, var_blob, body = blobs
    funcs = func_blob.decode("utf-8").split("\n") if func_blob else []
    variables = var_blob.decode("utf-8").split("\n") if var_blob else []
    if len(body) != count * _RECORD.size:
        raise TraceFormatError(
            f"{path}: body length {len(body)} does not match {count} records"
        )
    parsed_paths: Dict[int, VariablePath] = {}
    for i in range(count):
        op_i, scope_i, frame, thread, size, func_id, var_id, addr = (
            _RECORD.unpack_from(body, i * _RECORD.size)
        )
        var: Optional[VariablePath] = None
        if var_id != _NO_VAR:
            var = parsed_paths.get(var_id)
            if var is None:
                var = VariablePath.parse(variables[var_id])
                parsed_paths[var_id] = var
        yield TraceRecord(
            op=AccessType(_OPS[op_i]),
            addr=addr,
            size=size,
            func=funcs[func_id] if func_id != _NO_FUNC else "",
            scope=_SCOPES[scope_i] if scope_i else None,
            frame=frame if frame != _NO_FIELD else None,
            thread=thread if thread != _NO_FIELD else None,
            var=var,
        )


def load_binary(path: Union[str, Path]) -> Trace:
    """Read a compact binary trace."""
    return Trace(iter_binary(path))
