"""The paper's example programs, expressed in the tracer's C dialect.

Naming follows the paper's Section V:

- **1A** (`kernel_1a`): the structure-of-arrays original — a struct with
  ``int mX[LEN]`` and ``double mY[LEN]`` filled in one loop (the paper's
  Listing 4 code; the listing labels 3/4 are typeset inconsistently in the
  paper, but Figure 5's left-hand trace shows ``lSoA`` is the original).
- **1B** (`kernel_1b`): the hand-transformed array-of-structures version.
- **2A** (`kernel_2a`): nested hot/cold struct (``mFrequentlyUsed`` inline
  with a rarely used nested struct).
- **2B** (`kernel_2b`): the hand-outlined version — cold fields moved to
  ``lStorageForRarelyUsed`` and reached through the ``mRarelyUsed``
  pointer; the pointer-setup loop runs *before* instrumentation starts,
  exactly as in Listing 7.
- **3A** (`kernel_3a`): contiguous array fill.
- **3B** (`kernel_3b`): the set-pinning stride version with the
  ``(lI/ITEMSPERLINE)*(SETS*ITEMSPERLINE) + (lI%ITEMSPERLINE)`` index
  formula of Listing 10/11 (the paper's Listing 10 prints the first ``*``
  as ``%``; Listing 11's rule and the 64 KiB size calculation in the text
  confirm multiplication).
- `listing1_program`: the paper's Listing 1 (globals, ``foo``, structure
  parameters) used to validate trace shape against Listing 2.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.ctypes_model.types import (
    ArrayType,
    DOUBLE,
    INT,
    PointerType,
    StructType,
)
from repro.tracer.expr import Cast, Const, V
from repro.tracer.program import Function, Parameter, Program
from repro.tracer.stmt import (
    Assign,
    Block,
    Call,
    DeclLocal,
    For,
    AugAssign,
    StartInstrumentation,
    StopInstrumentation,
    simple_for,
)

#: Default array length; the paper's rules use 16, its cache figures use
#: larger arrays so the structures span many cache sets.
DEFAULT_LEN = 16

#: Cache-geometry constants of the paper's Listing 10 (PowerPC 440 study).
SETS = 16
CACHELINE = 32
ITEMS_PER_LINE = CACHELINE // INT.size  # 8


def kernel_1a(length: int = DEFAULT_LEN) -> Program:
    """T1 original: structure of arrays (``lSoA.mX[i]``, ``lSoA.mY[i]``)."""
    soa = StructType(
        "MyStructOfArrays",
        [("mX", ArrayType(INT, length)), ("mY", ArrayType(DOUBLE, length))],
    )
    body = [
        DeclLocal("lSoA", soa),
        DeclLocal("lI", INT),
        StartInstrumentation(),
        *simple_for(
            "lI",
            0,
            length,
            [
                Assign(V("lSoA").fld("mX")[V("lI")], Cast(INT, V("lI"))),
                Assign(V("lSoA").fld("mY")[V("lI")], Cast(DOUBLE, V("lI"))),
            ],
        ),
        StopInstrumentation(),
    ]
    program = Program()
    program.register_struct("MyStructOfArrays", soa)
    program.add_function(Function("main", body=body))
    return program


def kernel_1b(length: int = DEFAULT_LEN) -> Program:
    """T1 hand-transformed: array of structures (``lAoS[i].mX``...)."""
    elem = StructType("MyStruct", [("mX", INT), ("mY", DOUBLE)])
    body = [
        DeclLocal("lAoS", ArrayType(elem, length)),
        DeclLocal("lI", INT),
        StartInstrumentation(),
        *simple_for(
            "lI",
            0,
            length,
            [
                Assign(V("lAoS")[V("lI")].fld("mX"), Cast(INT, V("lI"))),
                Assign(V("lAoS")[V("lI")].fld("mY"), Cast(DOUBLE, V("lI"))),
            ],
        ),
        StopInstrumentation(),
    ]
    program = Program()
    program.register_struct("MyStruct", elem)
    program.add_function(Function("main", body=body))
    return program


def kernel_2a(length: int = DEFAULT_LEN) -> Program:
    """T2 original: inline nested hot/cold struct (Listing 6)."""
    rarely = StructType("mRarelyUsed", [("mY", DOUBLE), ("mZ", INT)])
    inline = StructType(
        "MyInlineStruct", [("mFrequentlyUsed", INT), ("mRarelyUsed", rarely)]
    )
    body = [
        DeclLocal("lS1", ArrayType(inline, length)),
        DeclLocal("lI", INT),
        StartInstrumentation(),
        *simple_for(
            "lI",
            0,
            length,
            [
                Assign(V("lS1")[V("lI")].fld("mFrequentlyUsed"), V("lI")),
                Assign(V("lS1")[V("lI")].fld("mRarelyUsed").fld("mY"), V("lI")),
                Assign(V("lS1")[V("lI")].fld("mRarelyUsed").fld("mZ"), V("lI")),
            ],
        ),
        StopInstrumentation(),
    ]
    program = Program()
    program.register_struct("mRarelyUsed", rarely)
    program.register_struct("MyInlineStruct", inline)
    program.add_function(Function("main", body=body))
    return program


def kernel_2b(length: int = DEFAULT_LEN) -> Program:
    """T2 hand-transformed: outlined cold fields behind a pointer.

    The pointer-setup loop (``lS2[i].mRarelyUsed = lStorage + i``) runs
    before ``GLEIPNIR_START_INSTRUMENTATION`` so the measured region
    contains only the indirect accesses, as in Listing 7.
    """
    rarely = StructType("RarelyUsed", [("mY", DOUBLE), ("mZ", INT)])
    outlined = StructType(
        "MyOutlinedStruct",
        [("mFrequentlyUsed", INT), ("mRarelyUsed", PointerType("RarelyUsed"))],
    )
    body = [
        DeclLocal("lStorageForRarelyUsed", ArrayType(rarely, length)),
        DeclLocal("lS2", ArrayType(outlined, length)),
        DeclLocal("lI", INT),
        *simple_for(
            "lI",
            0,
            length,
            [
                Assign(
                    V("lS2")[V("lI")].fld("mRarelyUsed"),
                    V("lStorageForRarelyUsed") + V("lI"),
                ),
            ],
        ),
        StartInstrumentation(),
        *simple_for(
            "lI",
            0,
            length,
            [
                Assign(V("lS2")[V("lI")].fld("mFrequentlyUsed"), V("lI")),
                Assign(V("lS2")[V("lI")].fld("mRarelyUsed").arrow("mY"), V("lI")),
                Assign(V("lS2")[V("lI")].fld("mRarelyUsed").arrow("mZ"), V("lI")),
            ],
        ),
        StopInstrumentation(),
    ]
    program = Program()
    program.register_struct("RarelyUsed", rarely)
    program.register_struct("MyOutlinedStruct", outlined)
    program.add_function(Function("main", body=body))
    return program


def kernel_3a(length: int = 1024) -> Program:
    """T3 original: contiguous array fill (Listing 9)."""
    body = [
        DeclLocal("lContiguousArray", ArrayType(INT, length)),
        DeclLocal("lI", INT),
        StartInstrumentation(),
        *simple_for(
            "lI",
            0,
            length,
            [Assign(V("lContiguousArray")[V("lI")], V("lI"))],
        ),
        StopInstrumentation(),
    ]
    program = Program()
    program.add_function(Function("main", body=body))
    return program


def kernel_3b(
    length: int = 1024, *, sets: int = SETS, cacheline: int = CACHELINE
) -> Program:
    """T3 hand-transformed: set-pinning stride access (Listing 10).

    ``lSetHashingArray`` has ``length * sets`` elements; index
    ``(lI/IPL)*(sets*IPL) + (lI%IPL)`` places each cache-line-sized group
    of elements ``sets`` lines apart so every access maps to one set.
    """
    items_per_line = cacheline // INT.size
    idx = (
        (V("lI") / V("ITEMSPERLINE")) * (Const(sets) * V("ITEMSPERLINE"))
        + V("lI") % V("ITEMSPERLINE")
    )
    body = [
        DeclLocal("ITEMSPERLINE", INT, init=Const(items_per_line)),
        DeclLocal("lSetHashingArray", ArrayType(INT, length * sets)),
        DeclLocal("lI", INT),
        StartInstrumentation(),
        *simple_for(
            "lI",
            0,
            length,
            [Assign(V("lSetHashingArray")[idx], V("lI"))],
        ),
        StopInstrumentation(),
    ]
    program = Program()
    program.add_function(Function("main", body=body))
    return program


def listing1_program() -> Program:
    """The paper's Listing 1: globals, nested structs and a call to foo.

    Used to validate the trace shape against Listing 2: global scalar
    stores, loop-index traffic, the call-overhead stores, and ``foo``
    writing through its structure parameter into main's frame
    (``frame`` distance 1).
    """
    type_a = StructType("_typeA", [("dl", DOUBLE), ("myArray", ArrayType(INT, 10))])
    program = Program()
    program.register_struct("_typeA", type_a)
    program.add_global("glStruct", type_a)
    program.add_global("glStructArray", ArrayType(type_a, 10))
    program.add_global("glScalar", INT)
    program.add_global("glArray", ArrayType(INT, 10))

    foo_body = [
        DeclLocal("i", INT),
        *simple_for(
            "i",
            0,
            2,
            [
                Assign(
                    V("glStructArray")[V("i")].fld("dl"), V("glScalar")
                ),
                Assign(
                    V("glStructArray")[V("i")].fld("myArray")[V("i")],
                    V("glArray")[V("i") + 1],
                ),
                Assign(
                    V("StrcParam")[V("i")].fld("dl"), V("glArray")[V("i")]
                ),
            ],
        ),
    ]
    program.add_function(
        Function(
            "foo",
            params=[Parameter("StrcParam", PointerType("_typeA"))],
            body=foo_body,
        )
    )

    main_body = [
        StartInstrumentation(),
        DeclLocal("lcStrcArray", ArrayType(type_a, 5)),
        DeclLocal("i", INT),
        DeclLocal("lcScalar", INT),
        DeclLocal("lcArray", ArrayType(INT, 10)),
        Assign(V("glScalar"), Const(321)),
        Assign(V("lcScalar"), Const(123)),
        *simple_for("i", 0, 2, [Assign(V("lcArray")[V("i")], V("glScalar"))]),
        Call("foo", [V("lcStrcArray")]),
        StopInstrumentation(),
    ]
    program.add_function(Function("main", body=main_body))
    return program


#: Registry used by the CLI and the benchmarks: name -> factory(length).
PAPER_KERNELS: Dict[str, Callable[..., Program]] = {
    "1a": kernel_1a,
    "1b": kernel_1b,
    "2a": kernel_2a,
    "2b": kernel_2b,
    "3a": kernel_3a,
    "3b": kernel_3b,
    "listing1": lambda length=0: listing1_program(),
}


def paper_kernel(name: str, length: int = DEFAULT_LEN) -> Program:
    """Build a paper kernel by name (``"1a"`` ... ``"3b"``)."""
    try:
        factory = PAPER_KERNELS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {sorted(PAPER_KERNELS)}"
        ) from None
    return factory(length)
