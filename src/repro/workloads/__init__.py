"""Workload programs: the paper's kernels plus richer synthetic scenarios.

- :mod:`repro.workloads.paper_kernels` — Listings 1, 3/4 (T1), 6/7 (T2),
  9/10 (T3) from the paper, parameterised by array length.
- :mod:`repro.workloads.synthetic` — additional realistic kernels (linked
  list traversal, matrix multiply, stencil, particle update) used by the
  examples and the ablation benchmarks.
"""

from repro.workloads.paper_kernels import (
    kernel_1a,
    kernel_1b,
    kernel_2a,
    kernel_2b,
    kernel_3a,
    kernel_3b,
    listing1_program,
    paper_kernel,
    PAPER_KERNELS,
)
from repro.workloads.synthetic import (
    linked_list_traversal,
    matrix_multiply,
    particle_update,
    stencil_2d,
)

__all__ = [
    "kernel_1a",
    "kernel_1b",
    "kernel_2a",
    "kernel_2b",
    "kernel_3a",
    "kernel_3b",
    "listing1_program",
    "paper_kernel",
    "PAPER_KERNELS",
    "linked_list_traversal",
    "matrix_multiply",
    "particle_update",
    "stencil_2d",
]
