"""Additional realistic workloads beyond the paper's micro-kernels.

These drive the examples and the ablation benchmarks: they exhibit the
memory behaviours the paper's introduction motivates (structure layouts
interacting with cache geometry) at a more application-like scale.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.ctypes_model.types import ArrayType, DOUBLE, INT, PointerType, StructType
from repro.tracer.expr import Const, V
from repro.tracer.program import Function, Program
from repro.tracer.stmt import (
    Assign,
    AugAssign,
    Block,
    DeclLocal,
    HeapAlloc,
    StartInstrumentation,
    Stmt,
    StopInstrumentation,
    While,
    simple_for,
)


def matrix_multiply(n: int = 16, *, order: str = "ijk") -> Program:
    """Dense ``C += A * B`` on ``double[n][n]`` with a chosen loop order.

    ``order`` permutes the three loops (``"ijk"``, ``"ikj"``, ``"jki"``...)
    — the classic way loop order changes the stride pattern of the inner
    loop, which the cache simulator makes visible per variable.
    """
    if sorted(order) != ["i", "j", "k"]:
        raise ValueError(f"order must be a permutation of 'ijk', got {order!r}")
    mat = ArrayType(ArrayType(DOUBLE, n), n)
    update = AugAssign(
        V("C")[V("i")][V("j")],
        "+",
        V("A")[V("i")][V("k")] * V("B")[V("k")][V("j")],
    )
    inner: List[Stmt] = [update]
    for var in reversed(order):
        inner = list(simple_for(var, 0, n, inner))
    body: List[Stmt] = [
        DeclLocal("A", mat),
        DeclLocal("B", mat),
        DeclLocal("C", mat),
        DeclLocal("i", INT),
        DeclLocal("j", INT),
        DeclLocal("k", INT),
        StartInstrumentation(),
        *inner,
        StopInstrumentation(),
    ]
    program = Program()
    program.add_function(Function("main", body=body))
    return program


def stencil_2d(n: int = 32, *, iterations: int = 1) -> Program:
    """A 5-point Jacobi stencil over ``double grid[n][n]``.

    Reads four neighbours and writes ``out`` — row-major traversal with a
    vertical neighbour stride of one full row, a standard HPC access
    pattern for studying block reuse.
    """
    mat = ArrayType(ArrayType(DOUBLE, n), n)
    update = Assign(
        V("out")[V("i")][V("j")],
        (
            V("grid")[V("i") - 1][V("j")]
            + V("grid")[V("i") + 1][V("j")]
            + V("grid")[V("i")][V("j") - 1]
            + V("grid")[V("i")][V("j") + 1]
        )
        * Const(0.25),
    )
    sweep: List[Stmt] = list(
        simple_for("i", 1, n - 1, simple_for("j", 1, n - 1, [update]))
    )
    body: List[Stmt] = [
        DeclLocal("grid", mat),
        DeclLocal("out", mat),
        DeclLocal("i", INT),
        DeclLocal("j", INT),
        DeclLocal("t", INT),
        StartInstrumentation(),
        *simple_for("t", 0, iterations, sweep),
        StopInstrumentation(),
    ]
    program = Program()
    program.add_function(Function("main", body=body))
    return program


def linked_list_traversal(
    n: int = 64,
    *,
    shuffled: bool = False,
    seed: int = 0,
    passes: int = 1,
) -> Program:
    """Build an ``n``-node singly linked list on the heap, then traverse it.

    With ``shuffled=True`` the nodes are *allocated* in a random order but
    *linked* in logical order, destroying spatial locality — the scenario
    where collocating hot data into pools (the paper's T2 motivation,
    "collocate elements of similar temporal locality into unique spatial
    memory pools") pays off.  Building happens before instrumentation;
    only the traversal is traced.
    """
    node = StructType("Node", [("value", INT), ("next", PointerType("Node"))])
    alloc_order = list(range(n))
    if shuffled:
        random.Random(seed).shuffle(alloc_order)

    build: List[Stmt] = [
        DeclLocal("head", PointerType("Node")),
        DeclLocal("cursor", PointerType("Node")),
        DeclLocal("tmp", PointerType("Node")),
        DeclLocal("sum", INT),
        DeclLocal("p", INT),
    ]
    # Allocate in alloc_order; remember each node's handle variable name.
    for k in alloc_order:
        build.append(HeapAlloc(V("tmp"), f"node{k}", node))
        build.append(DeclLocal(f"h{k}", PointerType("Node")))
        build.append(Assign(V(f"h{k}"), V("tmp")))
    # Link in logical order and set values.
    build.append(Assign(V("head"), V("h0")))
    for k in range(n):
        build.append(Assign(V(f"h{k}").arrow("value"), Const(k)))
        if k + 1 < n:
            build.append(Assign(V(f"h{k}").arrow("next"), V(f"h{k+1}")))
        else:
            build.append(Assign(V(f"h{k}").arrow("next"), Const(0)))

    traverse: List[Stmt] = [
        Assign(V("sum"), Const(0)),
        *simple_for(
            "p",
            0,
            passes,
            [
                Assign(V("cursor"), V("head")),
                While(
                    V("cursor").ne(Const(0)),
                    Block(
                        [
                            AugAssign(V("sum"), "+", V("cursor").arrow("value")),
                            Assign(V("cursor"), V("cursor").arrow("next")),
                        ]
                    ),
                ),
            ],
        ),
    ]
    body = [*build, StartInstrumentation(), *traverse, StopInstrumentation()]
    program = Program()
    program.register_struct("Node", node)
    program.add_function(Function("main", body=body))
    return program


def particle_update(
    n: int = 128, *, steps: int = 1, touch_cold: bool = False
) -> Program:
    """An N-body-style particle array with hot and cold fields.

    Each particle has hot position/velocity fields and a cold block
    (mass, charge, id).  The update loop touches only the hot fields
    unless ``touch_cold`` — the exact hot/cold-splitting scenario the
    paper's T2 addresses.
    """
    cold = StructType("ColdData", [("mass", DOUBLE), ("charge", DOUBLE), ("id", INT)])
    particle = StructType(
        "Particle",
        [
            ("x", DOUBLE),
            ("vx", DOUBLE),
            ("cold", cold),
        ],
    )
    hot_updates: List[Stmt] = [
        AugAssign(V("parts")[V("i")].fld("x"), "+", V("parts")[V("i")].fld("vx")),
    ]
    if touch_cold:
        hot_updates.append(
            AugAssign(V("parts")[V("i")].fld("cold").fld("mass"), "+", Const(0.0))
        )
    body: List[Stmt] = [
        DeclLocal("parts", ArrayType(particle, n)),
        DeclLocal("i", INT),
        DeclLocal("t", INT),
        StartInstrumentation(),
        *simple_for("t", 0, steps, simple_for("i", 0, n, hot_updates)),
        StopInstrumentation(),
    ]
    program = Program()
    program.register_struct("ColdData", cold)
    program.register_struct("Particle", particle)
    program.add_function(Function("main", body=body))
    return program
