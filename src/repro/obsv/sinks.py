"""Telemetry sinks: JSONL event streams and Chrome ``trace_event`` files.

Two interchangeable on-disk shapes of one snapshot document:

- **JSONL profile** (``*.jsonl``): one JSON object per line.  The first
  line is a ``meta`` event carrying ``schema_version``; then one
  ``counter`` event per counter, one ``gauge`` event per gauge, one
  ``span`` event per span.  Line-oriented so crashed runs stay parseable
  and ``grep``/``jq`` pipelines work without loading anything.
- **Chrome trace** (``*.json``): the ``trace_event`` format's JSON
  object form, loadable in ``chrome://tracing`` and Perfetto.  Spans
  become complete (``"ph": "X"``) events, counters become ``"C"``
  events, and each process/track gets a metadata name event.

Both writers go through :func:`repro.obsv.atomic.atomic_write`, so a
crash mid-write never leaves a partial artifact.  The event schema is
pinned by golden files in ``tests/obsv/`` — bump
:data:`~repro.obsv.telemetry.SCHEMA_VERSION` when changing it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Union

from repro.errors import ObservabilityError
from repro.obsv.atomic import atomic_write
from repro.obsv.telemetry import SCHEMA_VERSION

#: ``generator`` field stamped into both sink formats.
GENERATOR = "tdst-obsv"


# -- JSONL profile ------------------------------------------------------------


def profile_events(snapshot: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """The JSONL event stream of one snapshot, in canonical order."""
    yield {
        "event": "meta",
        "schema_version": snapshot.get("schema_version", SCHEMA_VERSION),
        "generator": GENERATOR,
        "spans": len(snapshot.get("spans", [])),
    }
    for name in sorted(snapshot.get("counters", {})):
        yield {
            "event": "counter",
            "name": name,
            "value": snapshot["counters"][name],
        }
    for name in sorted(snapshot.get("gauges", {})):
        yield {
            "event": "gauge",
            "name": name,
            "value": snapshot["gauges"][name],
        }
    for span in snapshot.get("spans", ()):
        yield {"event": "span", **span}


def write_jsonl_profile(
    snapshot: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write a snapshot as a JSONL profile (atomically); returns the path."""
    target = Path(path)
    with atomic_write(target) as handle:
        for event in profile_events(snapshot):
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
    return target


def read_jsonl_profile(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a JSONL profile back into a snapshot document.

    Unknown event kinds are skipped (forward compatibility); a torn
    final line (crashed writer of a pre-atomic profile) is dropped.
    Raises :class:`~repro.errors.ObservabilityError` when the file has
    no ``meta`` event or a schema version newer than this reader.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, int] = {}
    spans: List[Dict[str, Any]] = []
    version = None
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        kind = event.get("event")
        if kind == "meta":
            version = event.get("schema_version")
        elif kind == "counter":
            counters[event["name"]] = event["value"]
        elif kind == "gauge":
            gauges[event["name"]] = event["value"]
        elif kind == "span":
            spans.append(
                {k: v for k, v in event.items() if k != "event"}
            )
    if version is None:
        raise ObservabilityError(
            f"{path}: not a telemetry profile (no meta event)"
        )
    if version > SCHEMA_VERSION:
        raise ObservabilityError(
            f"{path}: profile schema_version {version} is newer than "
            f"this reader ({SCHEMA_VERSION})"
        )
    return {
        "schema_version": version,
        "counters": counters,
        "gauges": gauges,
        "spans": spans,
    }


# -- Chrome trace_event -------------------------------------------------------


def chrome_trace_document(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The ``trace_event`` JSON document of one snapshot.

    Spans map to complete events on their recorded ``pid``/``tid``
    tracks; counters map to one ``"C"`` event at the end of the
    timeline; every process gets a ``process_name`` metadata event so
    Perfetto labels the tracks.
    """
    spans = snapshot.get("spans", [])
    end_ts = max((s["start_us"] + s["dur_us"] for s in spans), default=0)
    events: List[Dict[str, Any]] = []
    for pid in sorted({s.get("pid", 0) for s in spans}):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": GENERATOR},
            }
        )
    for span in spans:
        events.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": span.get("cat", "phase"),
                "pid": span.get("pid", 0),
                "tid": span.get("tid", 0),
                "ts": span["start_us"],
                "dur": span["dur_us"],
                "args": dict(span.get("args", {}), id=span["id"]),
            }
        )
    for name in sorted(snapshot.get("counters", {})):
        events.append(
            {
                "ph": "C",
                "name": name,
                "pid": 0,
                "tid": 0,
                "ts": end_ts,
                "args": {"value": snapshot["counters"][name]},
            }
        )
    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": GENERATOR,
            "schema_version": snapshot.get("schema_version", SCHEMA_VERSION),
            "counters": dict(snapshot.get("counters", {})),
            "gauges": dict(snapshot.get("gauges", {})),
        },
        "traceEvents": events,
    }


def write_chrome_trace(
    snapshot: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write a snapshot as a Chrome trace file (atomically); returns the path."""
    target = Path(path)
    with atomic_write(target) as handle:
        json.dump(chrome_trace_document(snapshot), handle, sort_keys=True)
        handle.write("\n")
    return target
