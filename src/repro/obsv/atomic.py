"""Atomic file writes: no partially-written artifacts, ever.

``tdst`` subcommands used to write traces, profiles and reports straight
to their target path, so a crash mid-stream left a torn file behind that
downstream tooling would happily misparse.  :func:`atomic_write` is the
shared fix: the data goes to a temporary file in the target directory
and is renamed over the target only after a successful close.  On any
failure the temporary file is removed and the target is untouched —
either the complete artifact exists or nothing does.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union


@contextmanager
def atomic_write(
    path: Union[str, Path], mode: str = "w", *, encoding: str = "utf-8"
) -> Iterator[IO]:
    """Open a temp file for writing; rename onto ``path`` only on success.

    ``mode`` is ``"w"`` (text, utf-8 by default) or ``"wb"`` (binary).
    The temporary file lives in the target's directory so the final
    ``os.replace`` is a same-filesystem atomic rename, and the data is
    ``fsync``'d before the rename so a crash immediately after cannot
    surface a torn or empty artifact under the final name.  Parent
    directories are created as needed.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write supports 'w' or 'wb', got {mode!r}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        handle = os.fdopen(
            fd, mode, encoding=None if mode == "wb" else encoding
        )
        try:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            handle.close()
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already gone
            pass
        raise
    os.replace(tmp_name, target)
