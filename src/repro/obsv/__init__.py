"""Pipeline observability: phase timers, counters, telemetry sinks.

The ``obsv`` package answers "where did the time, records and memory
go" for every stage of the pipeline — tracer, transformation engine,
both simulators, the verifier and the campaign scheduler — in the
spirit of instrumentation-at-scale tools like DINAMITE and MapVisual:
structured access logs written for offline analysis, not printf.

Three pieces:

- :mod:`~repro.obsv.telemetry` — the process-wide registry:
  :class:`Telemetry`, :func:`phase` timers, monotonic counters,
  high-watermark gauges, and the snapshot/merge algebra that folds
  campaign worker telemetry into the parent;
- :mod:`~repro.obsv.sinks` — JSONL event profiles and Chrome
  ``trace_event`` files (Perfetto-loadable), written atomically;
- :mod:`~repro.obsv.summary` — the end-of-run plain-text table.

Everything is zero-dependency and a true no-op unless enabled via
``tdst --profile``, ``profile =`` in a campaign spec, or
``get_telemetry().enable()``.
"""

from repro.obsv.atomic import atomic_write
from repro.obsv.sinks import (
    GENERATOR,
    chrome_trace_document,
    profile_events,
    read_jsonl_profile,
    write_chrome_trace,
    write_jsonl_profile,
)
from repro.obsv.summary import phase_coverage, render_summary, wall_us
from repro.obsv.telemetry import (
    RSS_GAUGE,
    SCHEMA_VERSION,
    Telemetry,
    counters,
    get_telemetry,
    merge_snapshots,
    phase,
    span_forest,
)

__all__ = [
    "SCHEMA_VERSION",
    "RSS_GAUGE",
    "GENERATOR",
    "Telemetry",
    "get_telemetry",
    "phase",
    "counters",
    "merge_snapshots",
    "span_forest",
    "atomic_write",
    "profile_events",
    "write_jsonl_profile",
    "read_jsonl_profile",
    "chrome_trace_document",
    "write_chrome_trace",
    "render_summary",
    "phase_coverage",
    "wall_us",
]
