"""End-of-run summary: where the time, records and memory went.

Renders one snapshot as a plain-text table — per-phase wall time with
self-time and share-of-wall columns, then counters, then gauges.  This
is what ``tdst --profile`` prints at exit and what ``tdst obsv
summarize`` renders from a saved JSONL profile.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obsv.telemetry import span_forest


def wall_us(snapshot: Dict[str, Any]) -> int:
    """Extent of the snapshot's timeline in microseconds (0 when empty)."""
    spans = snapshot.get("spans", [])
    if not spans:
        return 0
    start = min(s["start_us"] for s in spans)
    end = max(s["start_us"] + s["dur_us"] for s in spans)
    return end - start


def _interval_union(intervals: List[Tuple[int, int]]) -> int:
    """Total length covered by a set of ``(start, end)`` intervals."""
    covered = 0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            covered += end - start
            last_end = end
        elif end > last_end:
            covered += end - last_end
            last_end = end
    return covered


def phase_coverage(snapshot: Dict[str, Any]) -> float:
    """Fraction of root-span time covered by the roots' direct children.

    This is the acceptance metric for instrumentation completeness: if
    the phases under ``tdst <command>`` cover >= 95% of its wall time,
    no significant work is running untimed.  Returns 0.0 when the
    snapshot has no root with children.
    """
    roots_total = 0
    covered = 0
    for roots in span_forest(snapshot.get("spans", [])).values():
        for root in roots:
            if not root["children"]:
                continue
            roots_total += root["dur_us"]
            covered += _interval_union(
                [
                    (c["start_us"], c["start_us"] + c["dur_us"])
                    for c in root["children"]
                ]
            )
    if roots_total == 0:
        return 0.0
    return min(covered / roots_total, 1.0)


def _aggregate_phases(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-span-name aggregates: count, total time, self time."""
    totals: Dict[str, Dict[str, int]] = {}
    for roots in span_forest(snapshot.get("spans", [])).values():
        stack = list(roots)
        while stack:
            node = stack.pop()
            row = totals.setdefault(
                node["name"], {"count": 0, "total_us": 0, "self_us": 0}
            )
            row["count"] += 1
            row["total_us"] += node["dur_us"]
            row["self_us"] += max(
                node["dur_us"] - sum(c["dur_us"] for c in node["children"]), 0
            )
            stack.extend(node["children"])
    return [
        {"name": name, **row}
        for name, row in sorted(
            totals.items(), key=lambda item: -item[1]["total_us"]
        )
    ]


def render_summary(snapshot: Dict[str, Any], *, title: str = "profile") -> str:
    """The plain-text summary table of one snapshot."""
    spans = snapshot.get("spans", [])
    wall = wall_us(snapshot)
    pids = {s.get("pid", 0) for s in spans}
    lines = [
        f"{title} summary: wall {wall / 1e6:.3f}s, {len(spans)} spans, "
        f"{len(pids)} process(es), phase coverage "
        f"{phase_coverage(snapshot):.1%}"
    ]
    phases = _aggregate_phases(snapshot)
    if phases:
        lines.append(
            f"  {'phase':<32s} {'count':>6s} {'total':>10s} "
            f"{'self':>10s} {'%wall':>6s}"
        )
        for row in phases:
            share = row["total_us"] / wall if wall else 0.0
            lines.append(
                f"  {row['name']:<32s} {row['count']:>6d} "
                f"{row['total_us'] / 1e6:>9.3f}s {row['self_us'] / 1e6:>9.3f}s "
                f"{share:>6.1%}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name:<40s} {counters[name]:>12d}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("  gauges:")
        for name in sorted(gauges):
            lines.append(f"    {name:<40s} {gauges[name]:>12d}")
    return "\n".join(lines)
