"""The telemetry registry: spans, counters, gauges, snapshots, merging.

Design constraints (see ``docs/OBSERVABILITY.md``):

- **True no-op when disabled.**  Every hook in a hot path reduces to one
  attribute test (``tele.enabled``); a disabled registry allocates
  nothing, takes no locks and returns a shared null span.  The overhead
  guard in ``tests/obsv/test_overhead.py`` pins this property.
- **Process-composable.**  A snapshot is a plain JSON document; snapshots
  from campaign worker processes merge into the parent registry with
  counter addition, gauge maximum and span concatenation.  Span identity
  is ``(pid, id)``, so merged span trees re-nest per process without
  coordination between workers.  :func:`merge_snapshots` is associative
  and commutative and never loses counts (property-tested).
- **Deterministic when told to be.**  The clock, pid source and thread id
  are injectable, which is what makes the schema snapshot tests possible.

Spans carry microsecond timestamps relative to the registry *epoch*
(taken at construction).  Forked workers inherit the parent's epoch, so
all processes share one timeline and the Chrome trace renders workers as
parallel process tracks.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Version stamped into every snapshot, JSONL profile and Chrome trace.
#: Bump when the event schema changes shape (see docs/OBSERVABILITY.md).
SCHEMA_VERSION = 1

#: Gauge name used by :meth:`Telemetry.sample_rss`.
RSS_GAUGE = "rss.peak_kb"


class _NullSpan:
    """Shared do-nothing span returned by a disabled registry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """No-op enter."""
        return self

    def __exit__(self, *exc_info: object) -> bool:
        """No-op exit; never swallows exceptions."""
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; finalised into the registry on ``__exit__``.

    Usable only as a context manager — entering assigns the id and the
    parent from the registry's per-thread span stack, exiting appends
    the finished span record.
    """

    __slots__ = ("_telemetry", "name", "cat", "args", "id", "parent", "_start")

    def __init__(
        self, telemetry: "Telemetry", name: str, cat: str, args: Dict[str, Any]
    ) -> None:
        self._telemetry = telemetry
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        """Open the span: assign an id, push onto the nesting stack."""
        tele = self._telemetry
        with tele._lock:
            tele._last_id += 1
            self.id = tele._last_id
        stack = tele._span_stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.id)
        self._start = tele._clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        """Close the span and record it (exceptions propagate)."""
        tele = self._telemetry
        end = tele._clock()
        stack = tele._span_stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        record: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "pid": tele._pid_fn(),
            "tid": tele.tid,
            "id": self.id,
            "parent": self.parent,
            "start_us": int(round((self._start - tele._epoch) * 1e6)),
            "dur_us": max(int(round((end - self._start) * 1e6)), 0),
        }
        if self.args:
            record["args"] = dict(self.args)
        with tele._lock:
            tele._spans.append(record)
        return False


class Telemetry:
    """Process-wide instrumentation registry.

    Parameters
    ----------
    enabled:
        Start collecting immediately.  Disabled registries are true
        no-ops: spans are the shared null span, counter/gauge updates
        return before touching any state.
    clock:
        Monotonic time source (injectable for deterministic tests).
    pid_fn:
        Process-id source, called at span-finalise time so forked
        children stamp their own pid.
    tid:
        Thread/track id stamped on spans (campaign workers set their
        worker index here for readable Chrome traces).
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        pid_fn: Callable[[], int] = os.getpid,
        tid: int = 0,
    ) -> None:
        self.enabled = enabled
        self.tid = tid
        self._clock = clock
        self._pid_fn = pid_fn
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = clock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, int] = {}
        self._spans: List[Dict[str, Any]] = []
        self._last_id = 0

    # -- state management -----------------------------------------------------

    def __bool__(self) -> bool:
        """Truthy iff collecting."""
        return self.enabled

    def enable(self) -> None:
        """Start collecting."""
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting (already-collected data stays until reset)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected data and the span nesting stack.

        The epoch is *kept* so spans recorded after a reset stay on the
        same timeline — campaign workers reset between jobs and their
        spans must still align with the parent's trace.
        """
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._spans = []
        self._local = threading.local()

    def _span_stack(self) -> List[int]:
        """The current thread's stack of open span ids."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording ------------------------------------------------------------

    def span(self, name: str, *, cat: str = "phase", **args: Any):
        """A context manager timing one phase (null object when disabled).

        ``args`` become the span's attributes (e.g. ``job=job_id``) and
        surface in both sinks.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def phase(self, name: str, **args: Any):
        """Alias of :meth:`span` with the default ``phase`` category."""
        return self.span(name, **args)

    def add(self, counter: str, value: int = 1) -> None:
        """Increment a monotonic counter (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + value

    def gauge_max(self, gauge: str, value: int) -> None:
        """Raise a high-watermark gauge to ``value`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            if value > self._gauges.get(gauge, value - 1):
                self._gauges[gauge] = value

    def sample_rss(self) -> None:
        """Record this process's peak RSS under the ``rss.peak_kb`` gauge.

        Uses ``resource.getrusage`` (kilobytes on Linux); silently does
        nothing where the module is unavailable.
        """
        if not self.enabled:
            return
        try:
            import resource

            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # pragma: no cover - non-POSIX
            return
        self.gauge_max(RSS_GAUGE, int(peak))

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The collected data as a plain JSON document (see module doc)."""
        with self._lock:
            return {
                "schema_version": SCHEMA_VERSION,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "spans": [dict(s) for s in self._spans],
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                if value > self._gauges.get(name, value - 1):
                    self._gauges[name] = value
            self._spans.extend(dict(s) for s in snapshot.get("spans", []))

    def counters(self) -> Dict[str, int]:
        """Current counter values (a copy)."""
        with self._lock:
            return dict(self._counters)


# -- snapshot algebra ---------------------------------------------------------


def _span_order_key(span: Dict[str, Any]) -> Tuple:
    """Total order over span records (makes merging commutative)."""
    args = span.get("args") or {}
    return (
        span.get("start_us", 0),
        span.get("pid", 0),
        span.get("tid", 0),
        span.get("id", 0),
        span.get("name", ""),
        span.get("cat", ""),
        span.get("dur_us", 0),
        span.get("parent") is not None,
        span.get("parent") or 0,
        tuple(sorted((str(k), str(v)) for k, v in args.items())),
    )


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Merge snapshot documents: counters add, gauges max, spans union.

    Associative and commutative, and never loses counts: every counter
    of the result equals the sum over inputs, every gauge the maximum,
    and the span list is the canonically-ordered concatenation.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, int] = {}
    spans: List[Dict[str, Any]] = []
    version = SCHEMA_VERSION
    for snap in snapshots:
        version = max(version, snap.get("schema_version", SCHEMA_VERSION))
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        spans.extend(dict(s) for s in snap.get("spans", []))
    spans.sort(key=_span_order_key)
    return {
        "schema_version": version,
        "counters": counters,
        "gauges": gauges,
        "spans": spans,
    }


def span_forest(
    spans: Iterable[Dict[str, Any]]
) -> Dict[Tuple[int, int], List[Dict[str, Any]]]:
    """Re-nest flat span records into per-``(pid, tid)`` trees.

    Returns ``{(pid, tid): [root, ...]}`` where each node is the span
    record plus a ``children`` list.  A span whose parent id is absent
    from its own process group becomes a root (this happens only for
    data recorded outside the registry's discipline, e.g. truncated
    profiles).
    """
    groups: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for span in spans:
        key = (span.get("pid", 0), span.get("tid", 0))
        groups.setdefault(key, []).append(dict(span, children=[]))
    forest: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for key, nodes in groups.items():
        by_id = {node["id"]: node for node in nodes}
        roots: List[Dict[str, Any]] = []
        for node in nodes:
            parent = node.get("parent")
            if parent is not None and parent in by_id and parent != node["id"]:
                by_id[parent]["children"].append(node)
            else:
                roots.append(node)
        forest[key] = roots
    return forest


# -- the process-wide registry ------------------------------------------------

_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide registry every instrumentation hook consults."""
    return _GLOBAL


def phase(name: str, **args: Any):
    """Time a phase against the process-wide registry (see :meth:`Telemetry.span`)."""
    return _GLOBAL.span(name, **args)


def counters() -> Dict[str, int]:
    """Current process-wide counter values (a copy)."""
    return _GLOBAL.counters()
