"""Exception hierarchy shared by all repro subsystems.

Every error raised intentionally by the package derives from
:class:`ReproError` so callers can catch the library's failures without
swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LayoutError(ReproError):
    """A C type could not be laid out (zero-length array, unknown size...)."""


class DeclarationSyntaxError(ReproError):
    """A C declaration or rule file failed to parse.

    Attributes
    ----------
    line:
        1-based line number within the parsed source, when known.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class PathError(ReproError):
    """A variable path string (``lAoS[3].mX``) is malformed or inapplicable."""


class TraceFormatError(ReproError):
    """A trace line does not conform to the Gleipnir text format."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"trace line {line_number}: {message}"
        super().__init__(message)


class MemoryModelError(ReproError):
    """Invalid operation on the simulated address space (double free...)."""


class InterpreterError(ReproError):
    """The program interpreter hit an invalid program construct."""


class CacheConfigError(ReproError):
    """A cache configuration is invalid (non-power-of-two sizes...)."""


class RuleError(ReproError):
    """A transformation rule is semantically invalid or inapplicable.

    Attributes
    ----------
    line:
        1-based line number within the rule file, when known.  Parser
        call sites thread section offsets through so the number refers
        to the *whole file*, not the section body.
    code:
        Stable ``TDSTnnn`` diagnostic code, when the raise site chose
        one (the linter classifies un-coded errors by message).
    """

    def __init__(
        self,
        message: str,
        line: int | None = None,
        code: str | None = None,
    ) -> None:
        self.line = line
        self.code = code
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class RuleFileError(RuleError):
    """A rule file contains one or more invalid rules.

    Raised by :func:`repro.transform.rule_parser.parse_rules` after the
    *whole* file has been scanned, so the message (and :attr:`errors`)
    reports every problem, not just the first — the same multi-diagnostic
    model the ``tdst lint`` pass uses.
    """

    def __init__(self, errors: list[RuleError]) -> None:
        self.errors = list(errors)
        noun = "problem" if len(self.errors) == 1 else "problems"
        message = f"rule file has {len(self.errors)} {noun}:\n" + "\n".join(
            f"  - {exc}" for exc in self.errors
        )
        # Positions live on the individual errors; do not re-prefix.
        super(RuleError, self).__init__(message)
        self.line = self.errors[0].line if self.errors else None
        self.code = None


class TransformError(ReproError):
    """Applying a transformation to a trace failed."""


class CampaignError(ReproError):
    """An experiment campaign spec is invalid or a run cannot proceed."""


class VerifyError(ReproError):
    """A verification run cannot proceed (missing golden, no fuzzer...)."""


class ObservabilityError(ReproError):
    """A telemetry profile is malformed or has an unsupported schema."""


class LintError(ReproError):
    """A lint run cannot proceed (unreadable input, unknown file kind...).

    Note this is *not* raised for findings — diagnostics are data, not
    exceptions; see :mod:`repro.lint.diagnostics`.
    """
