"""Differential verification: soundness, golden corpus, kernel agreement,
rule fuzzing.

The subsystem answers one question from four directions: *is a
transformed trace really a faithful stand-in for the rewritten
program?*

- :mod:`repro.verify.soundness` — independent replay oracle asserting
  the layout invariants (injective remap, non-overlapping out fields,
  byte conservation, indirection spec compliance);
- :mod:`repro.verify.golden` — checked-in end-to-end metrics for the
  paper's T1/T2/T3 pipelines, regenerated via ``UPDATE_GOLDEN=1``;
- :mod:`repro.verify.agreement` — reference vs fast simulation kernel
  cross-check;
- :mod:`repro.verify.fuzz` — hypothesis-driven random programs and
  mutated rule files (lazy dependency).

``repro.verify.runner.verify_paper`` combines the first three; the CLI
(``tdst verify``) and the campaign layer's opt-in post-job check build
on these entry points.
"""

from repro.verify.agreement import AgreementReport, check_kernel_agreement
from repro.verify.golden import (
    GOLDEN_DIR,
    UPDATE_GOLDEN_ENV,
    GoldenCase,
    paper_cases,
    run_case,
    update_requested,
)
from repro.verify.runner import CaseOutcome, VerifyOutcome, verify_case, verify_paper
from repro.verify.soundness import (
    MAX_RECORDED_VIOLATIONS,
    SoundnessReport,
    Violation,
    check_result,
    check_transform,
)

__all__ = [
    "AgreementReport",
    "CaseOutcome",
    "GOLDEN_DIR",
    "GoldenCase",
    "MAX_RECORDED_VIOLATIONS",
    "SoundnessReport",
    "UPDATE_GOLDEN_ENV",
    "VerifyOutcome",
    "Violation",
    "check_kernel_agreement",
    "check_result",
    "check_transform",
    "paper_cases",
    "run_case",
    "update_requested",
    "verify_case",
    "verify_paper",
]
