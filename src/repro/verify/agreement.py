"""Kernel agreement: the reference and fast simulators must not disagree.

PR 2 introduced the vectorized fast path (``repro.cache.fastsim``) next
to the reference event-level simulator.  Campaign results silently route
through whichever kernel covers the config, so any divergence between the
two would corrupt figures without failing anything.  This module makes
the cross-check a first-class, reusable verification step: run both
kernels over the same records and compare every count they both produce
(block hits/misses, compulsory misses, and the full per-set vectors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from repro.cache.config import CacheConfig
from repro.trace.record import AccessType, TraceRecord


@dataclass
class AgreementReport:
    """Outcome of one reference-vs-fast cross-check."""

    config: str
    checked: int = 0
    #: True when no fast kernel covers the config (not a failure)
    skipped: bool = False
    reason: str = ""
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the kernels agreed (or the check was skipped)."""
        return not self.mismatches

    def summary(self) -> str:
        if self.skipped:
            return f"kernel agreement: skipped ({self.reason})"
        if self.ok:
            return (
                f"kernel agreement: ok — fast path matches the reference "
                f"simulator exactly on {self.checked} records"
            )
        lines = [f"kernel agreement: FAILED on {self.checked} records:"]
        lines.extend(f"  {m}" for m in self.mismatches)
        return "\n".join(lines)


def check_kernel_agreement(
    records: Iterable[TraceRecord],
    config: CacheConfig,
    *,
    limit: Optional[int] = None,
) -> AgreementReport:
    """Run both simulation kernels over ``records`` and compare counts.

    ``limit`` bounds the number of data records checked (``None`` checks
    everything).  Configs with no fast-path coverage (non-LRU policies,
    no-write-allocate...) produce a *skipped* report — there is only one
    kernel to trust there, so there is nothing to cross-check.
    """
    from repro.cache.fastsim import fast_counts, supports_fast_path
    from repro.cache.simulator import simulate

    label = config.describe()
    if not supports_fast_path(config):
        return AgreementReport(
            config=label,
            skipped=True,
            reason="no fast kernel covers this config",
        )
    data = [r for r in records if r.op is not AccessType.MISC]
    if limit is not None:
        data = data[:limit]
    report = AgreementReport(config=label, checked=len(data))
    addrs = np.fromiter((r.addr for r in data), dtype=np.uint64, count=len(data))
    sizes = np.fromiter((r.size for r in data), dtype=np.uint32, count=len(data))
    fast = fast_counts(addrs, config, sizes)
    stats = simulate(data, config).stats
    for name, got, want in (
        ("block hits", fast.hits, stats.block_hits),
        ("block misses", fast.misses, stats.block_misses),
        ("compulsory misses", fast.compulsory_misses, stats.compulsory_misses),
    ):
        if got != want:
            report.mismatches.append(f"{name}: fast {got} != reference {want}")
    if not np.array_equal(fast.per_set.hits, stats.per_set.hits) or not (
        np.array_equal(fast.per_set.misses, stats.per_set.misses)
    ):
        report.mismatches.append("per-set hit/miss vectors differ")
    return report
