"""Golden figure corpus: end-to-end fixtures with checked-in metrics.

Each :class:`GoldenCase` pins one full paper pipeline — program → trace →
transform (T1/T2/T3) → cache simulation — to an expected-metrics JSON
document stored in ``golden_data/`` next to this module.  The documents
are deliberately exhaustive (trace lengths, transform report counters,
hit/miss/compulsory/eviction counts, per-variable misses for every cache
geometry): any semantic drift anywhere in the tracer, the rule engine or
either simulation kernel changes at least one number and fails the
comparison.

Regeneration (after an *intentional* semantic change)::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/verify/test_golden.py
    # or
    PYTHONPATH=src python -m repro.cli verify --paper --update-golden

The regenerated files must be committed together with the change that
explains them — that is the whole point of the corpus.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate
from repro.trace.stream import Trace
from repro.tracer.interp import trace_program
from repro.transform.engine import TransformEngine, TransformResult
from repro.transform.paper_rules import paper_rule
from repro.transform.rules import RuleSet
from repro.workloads.paper_kernels import paper_kernel

#: Where the checked-in expected metrics live (package data).
GOLDEN_DIR = Path(__file__).resolve().parent / "golden_data"

#: Environment variable that switches comparison into regeneration.
UPDATE_GOLDEN_ENV = "UPDATE_GOLDEN"


@dataclass(frozen=True)
class GoldenCase:
    """One end-to-end fixture: kernel + rule + cache geometries."""

    name: str
    kernel: str
    length: int
    rule: str
    #: (label, config-factory args) pairs; labels key the JSON document
    caches: Tuple[Tuple[str, CacheConfig], ...]

    def filename(self) -> str:
        return f"{self.name}.json"


def paper_cases() -> Tuple[GoldenCase, ...]:
    """The golden corpus: the paper's three transformation pipelines.

    Lengths are kept small enough that all three cases replay in a couple
    of seconds — the corpus guards semantics, not scale (the campaign
    benchmarks own scale).
    """
    direct = ("32K-direct", CacheConfig.paper_direct_mapped())
    small = (
        "4K-2way-lru",
        CacheConfig(size=4 * 1024, block_size=32, associativity=2, policy="lru"),
    )
    ppc440 = ("ppc440", CacheConfig.ppc440())
    return (
        GoldenCase("t1", "1a", 64, "t1", (direct, small)),
        GoldenCase("t2", "2a", 64, "t2", (direct, small)),
        GoldenCase("t3", "3a", 64, "t3", (ppc440, direct)),
    )


def run_case(case: GoldenCase) -> Tuple[Dict[str, Any], TransformResult, Trace, RuleSet]:
    """Run one fixture end to end; returns (payload, result, trace, rules).

    The payload is the JSON-serialisable metrics document compared (or
    written) against the golden file; the raw objects are returned so the
    caller can run the live checks (soundness, kernel agreement) on the
    same artifacts without recomputing the pipeline.
    """
    trace = trace_program(paper_kernel(case.kernel, length=case.length))
    rules = paper_rule(case.rule, length=case.length)
    engine = TransformEngine(rules)
    result = engine.transform(trace)
    report = result.report
    payload: Dict[str, Any] = {
        "case": case.name,
        "kernel": case.kernel,
        "length": case.length,
        "rule": case.rule,
        "trace_records": len(trace),
        "transformed_records": len(result.trace),
        "transform_report": {
            "transformed": report.transformed,
            "inserted": report.inserted,
            "passthrough": report.passthrough,
            "ignored_out": report.ignored_out,
            "uncovered": report.uncovered,
            "size_mismatches": report.size_mismatches,
            "base_inconsistencies": report.base_inconsistencies,
        },
        "allocations": {
            name: base for name, base in sorted(result.allocations.items())
        },
        "caches": {},
    }
    for label, config in case.caches:
        payload["caches"][label] = {
            "baseline": _metrics(trace, config),
            "transformed": _metrics(result.trace, config),
        }
    return payload, result, trace, rules


def _metrics(trace: Trace, config: CacheConfig) -> Dict[str, Any]:
    """Reference-simulator metrics of one trace under one geometry."""
    stats = simulate(trace, config).stats
    return {
        "accesses": stats.accesses,
        "hits": stats.hits,
        "misses": stats.misses,
        "miss_ratio": round(stats.miss_ratio, 6),
        "block_hits": stats.block_hits,
        "block_misses": stats.block_misses,
        "compulsory_misses": stats.compulsory_misses,
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
        "by_variable_misses": {
            name: counts.misses
            for name, counts in sorted(stats.by_variable.items())
        },
    }


def compare_payloads(
    expected: Any, actual: Any, path: str = ""
) -> List[str]:
    """Deep-compare two JSON documents; returns dotted-path differences."""
    diffs: List[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in expected:
                diffs.append(f"{sub}: unexpected key (got {actual[key]!r})")
            elif key not in actual:
                diffs.append(f"{sub}: missing (expected {expected[key]!r})")
            else:
                diffs.extend(compare_payloads(expected[key], actual[key], sub))
        return diffs
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            diffs.append(
                f"{path}: length {len(actual)} != expected {len(expected)}"
            )
            return diffs
        for i, (e, a) in enumerate(zip(expected, actual)):
            diffs.extend(compare_payloads(e, a, f"{path}[{i}]"))
        return diffs
    if expected != actual:
        diffs.append(f"{path}: {actual!r} != expected {expected!r}")
    return diffs


def golden_path(case: GoldenCase, golden_dir: Optional[Path] = None) -> Path:
    return (golden_dir or GOLDEN_DIR) / case.filename()


def load_golden(
    case: GoldenCase, golden_dir: Optional[Path] = None
) -> Optional[Dict[str, Any]]:
    """The checked-in expected payload, or ``None`` when absent."""
    path = golden_path(case, golden_dir)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def save_golden(
    case: GoldenCase, payload: Dict[str, Any], golden_dir: Optional[Path] = None
) -> Path:
    """Write (regenerate) one golden document atomically."""
    from repro.obsv.atomic import atomic_write

    path = golden_path(case, golden_dir)
    with atomic_write(path) as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def update_requested() -> bool:
    """True when the environment asks for golden regeneration."""
    return bool(os.environ.get(UPDATE_GOLDEN_ENV))
