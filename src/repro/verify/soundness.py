"""Transform soundness checker: proves a transformed trace is a faithful
stand-in for a recompiled program.

The paper's whole claim rests on the transformed trace behaving like the
trace of the *rewritten* program.  That only holds when the address remap
is a sound layout:

- the remap is **injective per live region** — no two distinct element
  paths land on the same out bytes, and a given path always lands on the
  same address;
- **out-structure fields never overlap** each other or any live
  (untransformed) region of the original address space;
- **total bytes touched per variable are conserved** — the transformation
  moves accesses, it does not create or destroy payload bytes;
- **injected pointer/index accesses match the rule's indirection spec**
  (count, operation, size and target of every inserted record).

The checker does *not* trust the engine: it replays the original trace
through an independent oracle built only from the rule set (allocation
cursor, translation math and insert expansion are re-derived here), then
compares the oracle's expectation against the transformed trace record by
record.  A corrupted engine remap — even a one-byte offset — therefore
shows up as a :class:`Violation`, which the mutation-smoke test in
``tests/verify/test_soundness.py`` demonstrates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.ctypes_model.path import VariablePath
from repro.trace.record import TraceRecord
from repro.transform.engine import ARENA_BASE, TransformResult, _align_up
from repro.transform.rules import Rule, RuleSet

#: Default cap on *recorded* violations; checking always covers the whole
#: trace, but reports stay readable (the remainder is counted, not kept).
MAX_RECORDED_VIOLATIONS = 50


@dataclass(frozen=True)
class Violation:
    """One soundness violation, anchored to an original-trace position.

    ``index`` is the 0-based index of the original record being replayed
    when the violation was detected, or ``-1`` for global/layout-level
    violations that have no single position.
    """

    category: str
    index: int
    message: str

    def __str__(self) -> str:
        where = f"@{self.index}" if self.index >= 0 else "@global"
        return f"[{self.category}] {where}: {self.message}"


@dataclass
class SoundnessReport:
    """Everything one soundness check established."""

    records_in: int = 0
    records_out: int = 0
    transformed: int = 0
    inserted: int = 0
    passthrough: int = 0
    violations: List[Violation] = field(default_factory=list)
    #: violations detected beyond the recording cap
    suppressed: int = 0
    #: the independently reconstructed arena layout: name -> (base, size)
    allocations: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no violation of any category was detected."""
        return not self.violations and self.suppressed == 0

    @property
    def total_violations(self) -> int:
        return len(self.violations) + self.suppressed

    def categories(self) -> Counter:
        """Violation counts per category (recorded ones only)."""
        return Counter(v.category for v in self.violations)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        verdict = "SOUND" if self.ok else "UNSOUND"
        lines = [
            f"soundness       : {verdict}",
            f"records in/out  : {self.records_in}/{self.records_out}",
            f"  transformed   : {self.transformed}",
            f"  inserted      : {self.inserted}",
            f"  passthrough   : {self.passthrough}",
            f"violations      : {self.total_violations}",
        ]
        for category, count in sorted(self.categories().items()):
            lines.append(f"  {category:<24s} {count}")
        for violation in self.violations[:10]:
            lines.append(f"  {violation}")
        if self.total_violations > 10:
            lines.append(f"  ... and {self.total_violations - 10} more")
        return "\n".join(lines)


class _Oracle:
    """Independent replay oracle: expected output records per input record.

    Reimplements the engine's record policy from the rule set alone —
    deliberately *not* by calling :class:`TransformEngine` — so that
    engine corruption is observable.  Rule ``translate`` itself is part of
    the trusted rule algebra (it is exercised separately by the property
    suites); what the oracle re-derives is everything the engine adds on
    top: arena allocation, address materialisation, insert expansion and
    pass-through policy.
    """

    def __init__(self, rules: RuleSet, arena_base: int) -> None:
        self.rules = rules
        self.violations: List[Violation] = []
        self.allocations: Dict[str, Tuple[int, int]] = {}
        cursor = arena_base
        for rule in rules:
            for alloc in rule.out_allocations():
                if alloc.name in self.allocations:
                    self.violations.append(
                        Violation(
                            "allocation-duplicate",
                            -1,
                            f"out object {alloc.name!r} allocated twice",
                        )
                    )
                    continue
                cursor = _align_up(cursor, max(alloc.alignment, 1))
                self.allocations[alloc.name] = (cursor, alloc.size)
                cursor += alloc.size
        self._by_in = {r.in_name: r for r in rules if not r.is_pattern}
        self._patterns = [r for r in rules if r.is_pattern]
        self._out_names = {n for r in rules for n in r.out_names()}
        self._last_seen: Dict[str, TraceRecord] = {}

    def expect(
        self, record: TraceRecord, index: int
    ) -> Tuple[Optional[Rule], List[Optional[Tuple]], int]:
        """Expected output for one input record.

        Returns ``(rule, expected, n_inserts)`` where ``expected`` is a
        list of ``(op, addr, size, var-string)`` tuples (``None`` entries
        mean "consume one output record without comparing", used when the
        expectation itself could not be derived) and ``rule`` is the
        matching rule, or ``None`` for pass-through records.
        """
        if record.var is not None:
            self._last_seen[record.var.base] = record
        if record.var is None or record.var.base in self._out_names:
            return None, [_key(record)], 0
        base = record.var.base
        rule = self._by_in.get(base)
        if rule is None:
            for candidate in self._patterns:
                if candidate.matches(base):
                    rule = candidate
                    break
        if rule is None:
            return None, [_key(record)], 0
        if rule.is_pattern:
            translation = rule.translate_named(base, record.var.elements)
        else:
            translation = rule.translate(record.var.elements)
        if translation is None:
            return None, [_key(record)], 0
        expected: List[Optional[Tuple]] = []
        for insert in translation.inserts:
            if insert.existing_var is not None:
                seen = self._last_seen.get(insert.existing_var)
                if seen is None:
                    self.violations.append(
                        Violation(
                            "indirection-missing",
                            index,
                            f"{rule.name}: inject references "
                            f"{insert.existing_var!r} before its first "
                            "appearance in the trace",
                        )
                    )
                    expected.append(None)
                else:
                    expected.append(
                        (insert.op, seen.addr, seen.size, _vstr(seen.var))
                    )
                continue
            mapped = insert.mapped
            entry = self.allocations.get(mapped.alloc)
            if entry is None:
                self.violations.append(
                    Violation(
                        "unknown-allocation",
                        index,
                        f"{rule.name}: insert targets unallocated "
                        f"{mapped.alloc!r}",
                    )
                )
                expected.append(None)
                continue
            expected.append(
                (
                    insert.op,
                    entry[0] + mapped.offset,
                    insert.size,
                    _vstr(VariablePath(mapped.alloc, tuple(mapped.elements))),
                )
            )
        n_inserts = len(expected)
        if translation.address_delta is not None:
            var = record.var
            if translation.rename is not None:
                var = var.with_base(translation.rename)
            expected.append(
                (record.op, record.addr + translation.address_delta,
                 record.size, _vstr(var))
            )
            return rule, expected, n_inserts
        mapped = translation.target
        entry = self.allocations.get(mapped.alloc)
        if entry is None:
            self.violations.append(
                Violation(
                    "unknown-allocation",
                    index,
                    f"{rule.name}: target is unallocated {mapped.alloc!r}",
                )
            )
            expected.append(None)
            return rule, expected, n_inserts
        # The engine keeps the original access size on the target record
        # (partial/straddling accesses stay partial); the *declared* leaf
        # size is checked against the allocation bounds separately.
        expected.append(
            (
                record.op,
                entry[0] + mapped.offset,
                record.size,
                _vstr(VariablePath(mapped.alloc, tuple(mapped.elements))),
            )
        )
        return rule, expected, n_inserts


def _vstr(var: Optional[VariablePath]) -> Optional[str]:
    return None if var is None else str(var)


def _key(record: TraceRecord) -> Tuple:
    return (record.op, record.addr, record.size, _vstr(record.var))


_FIELD_LABEL = ("op", "address", "size", "var")


def check_transform(
    original: Iterable[TraceRecord],
    transformed: Iterable[TraceRecord],
    rules: Union[RuleSet, Iterable[Rule], str],
    *,
    allocations: Optional[Dict[str, int]] = None,
    arena_base: int = ARENA_BASE,
    max_recorded: int = MAX_RECORDED_VIOLATIONS,
) -> SoundnessReport:
    """Walk a transformed trace against its rule set and assert soundness.

    Parameters
    ----------
    original / transformed:
        The engine's input and output traces (any record iterables).
    rules:
        The rule set the transformation claims to implement — a
        :class:`RuleSet`, an iterable of rules, or rule-file text.
    allocations:
        The engine's actual out-object base addresses, when available
        (:attr:`TransformResult.allocations`).  They are cross-checked
        against the independently reconstructed arena layout.
    arena_base:
        Arena base the engine was configured with.
    max_recorded:
        Cap on violations kept in the report (the rest are counted in
        :attr:`SoundnessReport.suppressed`; checking never stops early).
    """
    ruleset = _to_ruleset(rules)
    report = SoundnessReport()
    oracle = _Oracle(ruleset, arena_base)
    report.allocations = dict(oracle.allocations)

    def add(category: str, index: int, message: str) -> None:
        if len(report.violations) < max_recorded:
            report.violations.append(Violation(category, index, message))
        else:
            report.suppressed += 1

    def drain_oracle() -> None:
        while oracle.violations:
            violation = oracle.violations.pop(0)
            add(violation.category, violation.index, violation.message)

    drain_oracle()

    if allocations is not None:
        for name, base in allocations.items():
            expected = oracle.allocations.get(name)
            if expected is None:
                add(
                    "allocation-mismatch",
                    -1,
                    f"engine allocated {name!r} which no rule declares",
                )
            elif expected[0] != base:
                add(
                    "allocation-mismatch",
                    -1,
                    f"{name!r} allocated at {base:#x}, expected "
                    f"{expected[0]:#x}",
                )
        for name in oracle.allocations:
            if name not in allocations:
                add(
                    "allocation-mismatch",
                    -1,
                    f"{name!r} declared by a rule but never allocated",
                )

    # -- lockstep replay -----------------------------------------------------
    out_records = list(transformed)
    report.records_out = len(out_records)
    bytes_in: Counter = Counter()
    bytes_out: Counter = Counter()
    j = 0
    desynced = False
    for i, record in enumerate(original):
        report.records_in = i + 1
        rule, expected, n_inserts = oracle.expect(record, i)
        drain_oracle()
        if rule is None:
            report.passthrough += 1
        else:
            report.transformed += 1
            report.inserted += n_inserts
            bytes_in[rule.name] += record.size
        if j + len(expected) > len(out_records):
            add(
                "stream-truncated",
                i,
                f"transformed trace ends at record {len(out_records)} but "
                f"{len(expected)} more record(s) were expected here",
            )
            desynced = True
            break
        for k, exp in enumerate(expected):
            actual = out_records[j]
            j += 1
            if rule is not None and k == len(expected) - 1:
                bytes_out[rule.name] += actual.size
            if exp is None:
                continue
            got = _key(actual)
            if got != exp:
                is_insert = k < n_inserts
                prefix = "indirection" if is_insert else "remap"
                name = rule.name if rule is not None else "passthrough"
                for f_idx, (want, have) in enumerate(zip(exp, got)):
                    if want != have:
                        add(
                            f"{prefix}-{_FIELD_LABEL[f_idx]}",
                            i,
                            f"{name} "
                            f"{'insert' if is_insert else 'target'} "
                            f"{_FIELD_LABEL[f_idx]}: "
                            f"expected {_fmt(want)}, got {_fmt(have)}",
                        )
                        break
    if not desynced and j < len(out_records):
        add(
            "stream-extra",
            -1,
            f"transformed trace has {len(out_records) - j} trailing "
            "record(s) no input record explains",
        )
        desynced = True

    # -- byte conservation per variable --------------------------------------
    if not desynced:
        for name in sorted(set(bytes_in) | set(bytes_out)):
            if bytes_in[name] != bytes_out[name]:
                add(
                    "byte-conservation",
                    -1,
                    f"{name}: {bytes_in[name]} bytes touched in, "
                    f"{bytes_out[name]} bytes touched out",
                )

    # -- layout invariants over the output trace -----------------------------
    _check_layout(out_records, oracle.allocations, add)
    return report


def _check_layout(
    out_records: Sequence[TraceRecord],
    allocations: Dict[str, Tuple[int, int]],
    add,
) -> None:
    """Containment, injectivity and live-region overlap checks."""
    intervals = sorted(
        (base, base + size, name)
        for name, (base, size) in allocations.items()
        if size > 0
    )
    # Out allocations must not overlap each other.
    for (lo_a, hi_a, name_a), (lo_b, hi_b, name_b) in zip(
        intervals, intervals[1:]
    ):
        if hi_a > lo_b:
            add(
                "allocation-overlap",
                -1,
                f"allocations {name_a!r} and {name_b!r} overlap "
                f"({lo_a:#x}-{hi_a:#x} vs {lo_b:#x}-{hi_b:#x})",
            )
    seen_paths: Dict[Tuple[str, Tuple], Tuple[int, int]] = {}
    spans: List[Tuple[int, int, Tuple]] = []
    for idx, record in enumerate(out_records):
        base_name = record.var.base if record.var is not None else None
        if base_name in allocations:
            abase, asize = allocations[base_name]
            if not (abase <= record.addr and record.end <= abase + asize):
                add(
                    "out-of-bounds",
                    -1,
                    f"output record {idx} ({record.var}) touches "
                    f"{record.addr:#x}-{record.end:#x} outside allocation "
                    f"{base_name!r} ({abase:#x}-{abase + asize:#x})",
                )
                continue
            key = (base_name, tuple(record.var.elements))
            span = (record.addr, record.size)
            known = seen_paths.setdefault(key, span)
            if known != span:
                add(
                    "non-injective",
                    -1,
                    f"path {record.var} maps to both "
                    f"{known[0]:#x}+{known[1]} and "
                    f"{record.addr:#x}+{record.size}",
                )
        else:
            # A live (untransformed) region must stay clear of the arena.
            for lo, hi, name in intervals:
                if record.addr < hi and record.end > lo:
                    label = (
                        str(record.var)
                        if record.var is not None
                        else f"{record.addr:#x}"
                    )
                    add(
                        "arena-collision",
                        -1,
                        f"live record {idx} ({label}) overlaps out "
                        f"allocation {name!r}",
                    )
                    break
    for key, (addr, size) in seen_paths.items():
        spans.append((addr, addr + size, key))
    spans.sort()
    for (lo_a, hi_a, key_a), (lo_b, hi_b, key_b) in zip(spans, spans[1:]):
        if hi_a > lo_b and key_a != key_b:
            add(
                "overlap",
                -1,
                f"distinct paths {_path_str(key_a)} and {_path_str(key_b)} "
                f"overlap ({lo_a:#x}-{hi_a:#x} vs {lo_b:#x}-{hi_b:#x})",
            )


def _path_str(key: Tuple[str, Tuple]) -> str:
    return str(VariablePath(key[0], key[1]))


def _fmt(value) -> str:
    if isinstance(value, int):
        return f"{value:#x}"
    return str(value)


def _to_ruleset(rules: Union[RuleSet, Iterable[Rule], str]) -> RuleSet:
    if isinstance(rules, RuleSet):
        return rules
    if isinstance(rules, str):
        from repro.transform.rule_parser import parse_rules

        return parse_rules(rules)
    ruleset = RuleSet()
    for rule in rules:
        ruleset.add(rule)
    return ruleset


def check_result(
    result: TransformResult,
    rules: Union[RuleSet, Iterable[Rule], str],
    *,
    arena_base: int = ARENA_BASE,
    max_recorded: int = MAX_RECORDED_VIOLATIONS,
) -> SoundnessReport:
    """Soundness-check a :class:`TransformResult` (original + output +
    the engine's actual allocation map)."""
    return check_transform(
        result.original,
        result.trace,
        rules,
        allocations=result.allocations,
        arena_base=arena_base,
        max_recorded=max_recorded,
    )
