"""Differential rule-fuzz harness: random programs, mutated rule files.

Two generators drive the soundness checker and the kernel cross-check
from :mod:`repro.verify`:

- **random programs** — small randomly shaped SoA kernels (random field
  names, scalar types, lengths and loop bodies) paired with the matching
  T1 layout rule.  Each program is traced, transformed, soundness-checked
  and (where a fast kernel covers the config) cross-run through both
  simulators.
- **mutated rule files** — the paper's rule texts (plus any extra seed
  corpus the caller supplies, e.g. ``tests/data/rules``) run through
  line-drop/line-duplicate/number-swap/char-swap/truncate mutations.  A
  mutant must either be *cleanly rejected* (a :class:`ReproError` from
  the parser, rule constructor or engine) or produce output the
  soundness checker accepts.  Anything else — an unsound transform or a
  non-``ReproError`` crash — is a genuine finding.

Shrinking comes from `hypothesis <https://hypothesis.readthedocs.io>`_,
imported lazily so the rest of the package works without it;
:func:`run_fuzz` raises :class:`~repro.errors.VerifyError` when the
library is missing.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError, VerifyError
from repro.cache.config import CacheConfig
from repro.ctypes_model.path import VariablePath
from repro.ctypes_model.types import DOUBLE, FLOAT, INT, LONG, SHORT, ArrayType, StructType
from repro.trace.record import AccessType, TraceRecord
from repro.tracer.expr import Cast, V
from repro.tracer.interp import trace_program
from repro.tracer.program import Function, Program
from repro.tracer.stmt import (
    Assign,
    DeclLocal,
    StartInstrumentation,
    StopInstrumentation,
    simple_for,
)
from repro.transform.engine import TransformEngine
from repro.transform.paper_rules import (
    RULE_T1_SOA_TO_AOS,
    RULE_T2_OUTLINE,
    RULE_T3_STRIDE,
)
from repro.transform.rule_parser import parse_rules
from repro.transform.rules import RuleSet
from repro.verify.agreement import check_kernel_agreement
from repro.verify.soundness import SoundnessReport, check_result, check_transform

#: Paper rule texts at fuzz-friendly sizes; extra seeds can be layered on.
SEED_RULES: Dict[str, str] = {
    "t1": RULE_T1_SOA_TO_AOS.format(length=8),
    "t2": RULE_T2_OUTLINE.format(length=8),
    "t3": RULE_T3_STRIDE.format(length=32, out_length=128, ipl=8, sets=4),
}

#: Synthetic base addresses for probe traces — far below both the
#: tracer's stack and the engine's arena, so layout checks stay meaningful.
PROBE_BASE = 0x0000_0100_0000
PROBE_STRIDE = 0x0000_0010_0000
SCRATCH_BASE = 0x0000_00F0_0000

#: Leaf cap per rule when synthesising probe traces (mutants can inflate
#: array lengths; probing every leaf of a huge array buys nothing).
MAX_PROBE_LEAVES = 64

#: Scalar palette for random programs: (C spelling, tracer type).
_SCALARS = (
    ("short", SHORT),
    ("int", INT),
    ("long", LONG),
    ("float", FLOAT),
    ("double", DOUBLE),
)

_FIELD_NAMES = ("mA", "mB", "mC", "mD")


def _require_hypothesis():
    try:
        import hypothesis
    except ImportError as exc:  # pragma: no cover - env without hypothesis
        raise VerifyError(
            "rule fuzzing needs the 'hypothesis' package; install the "
            "[test] extra or run verification without --fuzz"
        ) from exc
    return hypothesis


# ---------------------------------------------------------------------------
# random programs + their T1 rules
# ---------------------------------------------------------------------------


def build_soa_case(
    fields: Tuple[Tuple[str, str], ...],
    length: int,
    out_order: Tuple[int, ...],
    body_ops: Tuple[int, ...],
) -> Tuple[Program, str]:
    """Deterministically build one (program, rule-text) pair.

    ``fields`` is ``(name, c-type-spelling)`` per member, ``out_order`` a
    permutation of field positions (the AoS layout may reorder members),
    ``body_ops`` the per-iteration statement order (indices into
    ``fields``, repeats allowed — repeated stores are legal and stress
    the byte-conservation accounting).
    """
    types = dict(_SCALARS)
    soa = StructType(
        "MyFuzzSoA",
        [(name, ArrayType(types[spelling], length)) for name, spelling in fields],
    )
    body = [
        DeclLocal("lSoA", soa),
        DeclLocal("lI", INT),
        StartInstrumentation(),
        *simple_for(
            "lI",
            0,
            length,
            [
                Assign(
                    V("lSoA").fld(fields[i][0])[V("lI")],
                    Cast(types[fields[i][1]], V("lI")),
                )
                for i in body_ops
            ],
        ),
        StopInstrumentation(),
    ]
    program = Program()
    program.register_struct("MyFuzzSoA", soa)
    program.add_function(Function("main", body=body))

    in_members = "\n".join(
        f"    {spelling} {name}[{length}];" for name, spelling in fields
    )
    out_members = "\n".join(
        f"    {fields[i][1]} {fields[i][0]};" for i in out_order
    )
    rule_text = (
        "in:\n"
        f"struct lSoA {{\n{in_members}\n}};\n"
        "out:\n"
        f"struct lAoS {{\n{out_members}\n}}[{length}];\n"
    )
    return program, rule_text


def check_transform_case(program: Program, rule_text: str) -> SoundnessReport:
    """Trace, transform and verify one generated program; raises
    ``AssertionError`` (hypothesis' shrink trigger) on any violation."""
    trace = trace_program(program)
    rules = parse_rules(rule_text)
    result = TransformEngine(rules).transform(trace)
    report = check_result(result, rules)
    assert report.ok, (
        "generated program produced an unsound transform\n"
        f"--- rule ---\n{rule_text}\n--- report ---\n{report.summary()}"
    )
    agreement = check_kernel_agreement(
        result.trace, CacheConfig.paper_direct_mapped()
    )
    assert agreement.ok, (
        "kernels disagree on the transformed trace\n"
        f"--- rule ---\n{rule_text}\n--- report ---\n{agreement.summary()}"
    )
    return report


# ---------------------------------------------------------------------------
# rule-file mutation
# ---------------------------------------------------------------------------

_NUMBER_RE = re.compile(r"\d+")


def mutate_text(text: str, choice: int, position: int, value: int) -> str:
    """Apply one deterministic mutation; ``choice`` selects the operator,
    ``position``/``value`` parameterise it (wrapped modulo the available
    sites, so any integers are valid)."""
    lines = text.splitlines()
    op = choice % 5
    if op == 0 and lines:  # drop a line
        del lines[position % len(lines)]
        return "\n".join(lines) + "\n"
    if op == 1 and lines:  # duplicate a line
        i = position % len(lines)
        lines.insert(i, lines[i])
        return "\n".join(lines) + "\n"
    if op == 2:  # replace a number
        numbers = list(_NUMBER_RE.finditer(text))
        if numbers:
            m = numbers[position % len(numbers)]
            return text[: m.start()] + str(value % 257) + text[m.end() :]
        return text
    if op == 3 and len(text) >= 2:  # swap adjacent characters
        i = position % (len(text) - 1)
        return text[:i] + text[i + 1] + text[i] + text[i + 2 :]
    if lines:  # truncate
        keep = position % len(lines)
        return "\n".join(lines[: keep + 1]) + "\n"
    return text


def probe_trace_for(rules: RuleSet) -> List[TraceRecord]:
    """A synthetic original trace exercising every rule of a set.

    Walks each rule's in-type leaves at a fabricated base address (one
    disjoint region per rule) and pre-seeds one record per
    ``inject ... existing`` name so existing-variable indirection has a
    last-seen address to reuse.  Capped at :data:`MAX_PROBE_LEAVES`
    leaves per rule.
    """
    records: List[TraceRecord] = []
    scratch = SCRATCH_BASE
    seeded = set()
    rule_list = list(rules)
    for rule in rule_list:
        for spec in getattr(rule, "inject", ()):
            if getattr(spec, "existing", False) and spec.name not in seeded:
                seeded.add(spec.name)
                records.append(
                    TraceRecord(
                        AccessType.STORE,
                        scratch,
                        spec.size,
                        func="main",
                        scope="LV",
                        var=VariablePath(spec.name),
                    )
                )
                scratch += max(spec.size, 8)
    for i, rule in enumerate(rule_list):
        if rule.is_pattern:
            continue
        base = PROBE_BASE + i * PROBE_STRIDE
        in_type = getattr(rule, "in_type", None)
        if in_type is None:
            records.append(
                TraceRecord(
                    AccessType.LOAD,
                    base,
                    4,
                    func="main",
                    scope="LS",
                    var=VariablePath(rule.in_name),
                )
            )
            continue
        for n, (elements, offset, leaf) in enumerate(in_type.iter_leaves()):
            if n >= MAX_PROBE_LEAVES:
                break
            op = AccessType.STORE if n % 2 else AccessType.LOAD
            records.append(
                TraceRecord(
                    op,
                    base + offset,
                    leaf.size,
                    func="main",
                    scope="LS",
                    var=VariablePath(rule.in_name, tuple(elements)),
                )
            )
    return records


def lint_accepts(text: str) -> bool:
    """Whether the static linter accepts a rule text (zero *errors*;
    warnings and infos do not reject).  Never raises on bad input."""
    from repro.lint import lint_rules_text

    return lint_rules_text(text).ok


def check_rule_mutation(mutated: str, *, lint_gate: bool = True) -> str:
    """Classify one mutated rule text — differentially against the linter.

    Returns ``"rejected"`` (the parser or a rule constructor refused it),
    ``"transform-rejected"`` (the engine refused the probe trace),
    ``"empty"`` (it parsed to zero rules) or ``"sound"``.  Raises
    ``AssertionError`` when the mutant survives to output that fails the
    soundness checker, and lets any non-:class:`ReproError` crash
    propagate — both are findings.

    With ``lint_gate`` (the default) two static-vs-dynamic invariants are
    also asserted:

    - a mutant the parser rejects must carry at least one lint *error*
      (the linter never waves through what the parser refuses);
    - a mutant the linter *accepts* must pass the dynamic soundness
      oracle — the linter's symbolic proof claims exactly the oracle's
      invariants, so a lint-accepted/oracle-rejected rule is a prover
      false negative.  (The converse is allowed: the prover covers the
      whole element domain, the probe trace only a capped prefix.)
    """
    linted = lint_accepts(mutated) if lint_gate else True
    try:
        rules = parse_rules(mutated)
    except ReproError:
        assert not linted, (
            "linter accepted a rule file the parser rejects\n"
            f"--- mutant ---\n{mutated}"
        )
        return "rejected"
    if not len(rules):
        return "empty"
    probe = probe_trace_for(rules)
    try:
        result = TransformEngine(rules).transform(probe)
    except ReproError:
        # The engine may refuse at *apply* time (e.g. probe/trace shape);
        # that is not a soundness claim the linter makes.
        return "transform-rejected"
    report = check_transform(
        result.original, result.trace, rules, allocations=result.allocations
    )
    if linted:
        assert report.ok, (
            "LINT FALSE NEGATIVE: linter-accepted rule file fails the "
            f"dynamic soundness oracle\n--- mutant ---\n{mutated}\n"
            f"--- report ---\n{report.summary()}"
        )
    assert report.ok, (
        "mutated rule file survived parsing but produced an unsound "
        f"transform\n--- mutant ---\n{mutated}\n--- report ---\n"
        f"{report.summary()}"
    )
    return "sound"


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Aggregate outcome of one :func:`run_fuzz` run."""

    program_examples: int = 0
    mutation_examples: int = 0
    mutation_outcomes: Counter = field(default_factory=Counter)
    #: shrunk failure messages, one per failing generator
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"fuzz: {verdict}",
            f"  program examples : {self.program_examples}",
            f"  rule mutants     : {self.mutation_examples}",
        ]
        for outcome, count in sorted(self.mutation_outcomes.items()):
            lines.append(f"    {outcome:<20s} {count}")
        for failure in self.failures:
            lines.append("  FAILURE:")
            lines.extend(f"    {l}" for l in failure.splitlines())
        return "\n".join(lines)


def run_fuzz(
    *,
    program_examples: int = 25,
    mutation_examples: int = 75,
    seed: Optional[int] = None,
    extra_seeds: Optional[Mapping[str, str]] = None,
) -> FuzzReport:
    """Run both fuzz generators and collect (shrunk) failures.

    Without ``seed`` the run is derandomized (hypothesis' fixed sequence)
    so test-suite runs are reproducible; pass a seed to explore.
    ``extra_seeds`` layers additional rule texts (e.g. the checked-in
    corpus under ``tests/data/rules``) under the paper seeds.
    """
    _require_hypothesis()
    from hypothesis import HealthCheck, given, settings
    from hypothesis import seed as hypothesis_seed
    from hypothesis import strategies as st

    report = FuzzReport()
    seeds = dict(SEED_RULES)
    if extra_seeds:
        seeds.update(extra_seeds)
    seed_texts = [seeds[name] for name in sorted(seeds)]

    def configure(test, max_examples: int):
        wrapped = settings(
            max_examples=max_examples,
            deadline=None,
            database=None,
            derandomize=seed is None,
            report_multiple_bugs=False,
            suppress_health_check=list(HealthCheck),
        )(test)
        if seed is not None:
            wrapped = hypothesis_seed(seed)(wrapped)
        return wrapped

    @st.composite
    def soa_cases(draw):
        n_fields = draw(st.integers(1, len(_FIELD_NAMES)))
        fields = tuple(
            (name, draw(st.sampled_from([s for s, _ in _SCALARS])))
            for name in _FIELD_NAMES[:n_fields]
        )
        length = draw(st.integers(1, 12))
        out_order = tuple(draw(st.permutations(range(n_fields))))
        body_ops = tuple(
            draw(
                st.lists(
                    st.integers(0, n_fields - 1), min_size=1, max_size=6
                )
            )
        )
        return fields, length, out_order, body_ops

    @given(soa_cases())
    def fuzz_programs(case):
        report.program_examples += 1
        check_transform_case(*build_soa_case(*case))

    fuzz_programs = configure(fuzz_programs, program_examples)

    @st.composite
    def mutants(draw):
        text = draw(st.sampled_from(seed_texts))
        for _ in range(draw(st.integers(1, 3))):
            text = mutate_text(
                text,
                draw(st.integers(0, 4)),
                draw(st.integers(0, 10_000)),
                draw(st.integers(0, 10_000)),
            )
        return text

    @given(mutants())
    def fuzz_mutants(mutated):
        report.mutation_examples += 1
        report.mutation_outcomes[check_rule_mutation(mutated)] += 1

    fuzz_mutants = configure(fuzz_mutants, mutation_examples)

    for runner in (fuzz_programs, fuzz_mutants):
        try:
            runner()
        except Exception as exc:
            report.failures.append(f"{type(exc).__name__}: {exc}")
    return report
