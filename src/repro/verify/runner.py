"""The paper verification runner: soundness + golden + kernel agreement.

``verify_paper`` drives every :func:`~repro.verify.golden.paper_cases`
pipeline end to end and layers the three check families on the same
artifacts:

1. **soundness** — the transformed trace is replayed against its rule
   set by the independent oracle (:mod:`repro.verify.soundness`);
2. **golden** — the metrics document is compared against the checked-in
   expectation (or regenerated with ``update_golden``);
3. **agreement** — reference and fast simulation kernels are cross-run
   on both the baseline and the transformed trace for every geometry the
   fast path covers.

This is what ``tdst verify --paper`` executes and what the campaign
layer's opt-in post-job check reuses per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.obsv.telemetry import get_telemetry
from repro.verify.agreement import AgreementReport, check_kernel_agreement
from repro.verify.golden import (
    GoldenCase,
    compare_payloads,
    load_golden,
    paper_cases,
    run_case,
    save_golden,
    update_requested,
)
from repro.verify.soundness import SoundnessReport, check_result


@dataclass
class CaseOutcome:
    """Everything verification established about one golden case."""

    name: str
    soundness: SoundnessReport
    golden_diffs: List[str] = field(default_factory=list)
    golden_missing: bool = False
    updated: bool = False
    agreements: List[AgreementReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.soundness.ok
            and not self.golden_diffs
            and not self.golden_missing
            and all(a.ok for a in self.agreements)
        )

    def summary(self) -> str:
        status = "ok" if self.ok else "FAILED"
        lines = [f"case {self.name}: {status}"]
        lines.append(
            "  soundness: "
            + ("ok" if self.soundness.ok else
               f"{self.soundness.total_violations} violation(s)")
        )
        if self.updated:
            lines.append("  golden: regenerated")
        elif self.golden_missing:
            lines.append(
                "  golden: MISSING (run with --update-golden to create)"
            )
        elif self.golden_diffs:
            lines.append(f"  golden: {len(self.golden_diffs)} difference(s)")
            lines.extend(f"    {d}" for d in self.golden_diffs[:8])
            if len(self.golden_diffs) > 8:
                lines.append(
                    f"    ... and {len(self.golden_diffs) - 8} more"
                )
        else:
            lines.append("  golden: ok")
        checked = [a for a in self.agreements if not a.skipped]
        skipped = len(self.agreements) - len(checked)
        agree = "ok" if all(a.ok for a in checked) else "FAILED"
        lines.append(
            f"  kernel agreement: {agree} "
            f"({len(checked)} checked, {skipped} skipped)"
        )
        for a in self.agreements:
            if not a.ok:
                lines.extend(f"    {m}" for m in a.mismatches)
        if not self.soundness.ok:
            lines.extend(
                "    " + line for line in self.soundness.summary().splitlines()
            )
        return "\n".join(lines)


@dataclass
class VerifyOutcome:
    """Aggregate result of one ``verify_paper`` run."""

    cases: List[CaseOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    def summary(self) -> str:
        lines = [c.summary() for c in self.cases]
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"verify: {verdict} "
            f"({sum(c.ok for c in self.cases)}/{len(self.cases)} cases ok)"
        )
        return "\n".join(lines)


def verify_case(
    case: GoldenCase,
    *,
    update_golden: bool = False,
    golden_dir: Optional[Path] = None,
) -> CaseOutcome:
    """Run one golden case through all three check families."""
    tele = get_telemetry()
    with tele.span("verify.case", cat="verify", case=case.name):
        payload, result, trace, rules = run_case(case)
        outcome = CaseOutcome(
            name=case.name, soundness=check_result(result, rules)
        )
        if update_golden:
            save_golden(case, payload, golden_dir)
            outcome.updated = True
        else:
            expected = load_golden(case, golden_dir)
            if expected is None:
                outcome.golden_missing = True
            else:
                outcome.golden_diffs = compare_payloads(expected, payload)
        for _, config in case.caches:
            outcome.agreements.append(check_kernel_agreement(trace, config))
            outcome.agreements.append(
                check_kernel_agreement(result.trace, config)
            )
    tele.add("verify.cases")
    return outcome


def verify_paper(
    *,
    update_golden: Optional[bool] = None,
    golden_dir: Optional[Path] = None,
) -> VerifyOutcome:
    """Verify the T1/T2/T3 pipelines (soundness + golden + agreement).

    ``update_golden=None`` consults the ``UPDATE_GOLDEN`` environment
    variable, so both the pytest suite and the CLI share one regeneration
    path.
    """
    if update_golden is None:
        update_golden = update_requested()
    outcome = VerifyOutcome()
    with get_telemetry().span("verify.paper", cat="verify"):
        for case in paper_cases():
            outcome.cases.append(
                verify_case(
                    case, update_golden=update_golden, golden_dir=golden_dir
                )
            )
    return outcome
