"""Declarative campaign specifications: the experiment grid.

A *campaign* declares every point of a layout study — which kernels to
trace, which transformation rules to apply, which cache geometries to
simulate, at which attribution granularity — so the whole grid (e.g.
every figure of the paper) runs from one document instead of a shell
history of hand-chained ``tdst`` invocations.

The spec is a plain dataclass tree, loadable from a TOML document::

    [campaign]
    name = "paper-figures"
    attribution = ["base"]

    [[caches]]                    # campaign-wide default geometries
    size = 32768
    block = 32
    assoc = 1

    [[grid]]
    kernel = "1a"
    length = 1024
    rules = ["baseline", "t1"]    # baseline = simulate untransformed

    [[grid]]
    kernel = "3a"
    length = 1024
    rules = ["baseline", "t3"]
    [[grid.caches]]               # per-entry override: PPC440 study
    ppc440 = true

Rules are referenced by paper name (``t1``/``t2``/``t3``, parameterised
by the entry's ``length``), by ``file:path/to/rules`` for on-disk rule
files, or ``baseline`` (alias ``none``) for the untransformed control
point every before/after table needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.cache.config import CacheConfig
from repro.errors import CampaignError
from repro.workloads.paper_kernels import PAPER_KERNELS

#: Rule names resolvable without a rule file.
PAPER_RULE_NAMES = ("t1", "t2", "t3")

#: Spellings of the untransformed control point.
BASELINE_NAMES = ("baseline", "none")

#: Attribution modes understood by the simulator.
ATTRIBUTION_MODES = ("base", "member")


@dataclass(frozen=True)
class CacheSpec:
    """A declarative cache geometry (picklable, hashable).

    ``ppc440=True`` selects the paper's PowerPC 440 preset and ignores
    the remaining geometry fields.
    """

    size: int = 32 * 1024
    block: int = 32
    assoc: int = 1
    policy: str = "lru"
    ppc440: bool = False

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CacheSpec":
        """Build from a TOML table (unknown keys are rejected)."""
        known = {"size", "block", "assoc", "policy", "ppc440"}
        extra = set(data) - known
        if extra:
            raise CampaignError(
                f"unknown cache spec keys: {sorted(extra)} (known: {sorted(known)})"
            )
        return cls(**dict(data))

    def to_config(self) -> CacheConfig:
        """The concrete :class:`CacheConfig` this spec denotes."""
        if self.ppc440:
            return CacheConfig.ppc440()
        return CacheConfig(
            size=self.size,
            block_size=self.block,
            associativity=self.assoc,
            policy=self.policy,
        )

    def label(self) -> str:
        """Short stable label used in job ids and artifact keys."""
        if self.ppc440:
            return "ppc440"
        return f"{self.size}B-{self.block}b-{self.assoc}w-{self.policy}"


@dataclass(frozen=True)
class GridEntry:
    """One row of the grid: a kernel crossed with rules and caches."""

    kernel: str
    length: int = 16
    rules: Tuple[str, ...] = ("baseline",)
    #: empty tuple = inherit the campaign-wide cache list
    caches: Tuple[CacheSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.kernel.lower() not in PAPER_KERNELS:
            raise CampaignError(
                f"unknown kernel {self.kernel!r}; "
                f"choose from {sorted(PAPER_KERNELS)}"
            )
        if self.length <= 0:
            raise CampaignError(f"length must be positive, got {self.length}")
        if not self.rules:
            raise CampaignError(f"grid entry {self.kernel!r} declares no rules")
        for rule in self.rules:
            validate_rule_ref(rule)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GridEntry":
        """Build from a TOML ``[[grid]]`` table."""
        known = {"kernel", "length", "rules", "caches"}
        extra = set(data) - known
        if extra:
            raise CampaignError(
                f"unknown grid entry keys: {sorted(extra)} (known: {sorted(known)})"
            )
        if "kernel" not in data:
            raise CampaignError("grid entry missing required key 'kernel'")
        caches = tuple(
            CacheSpec.from_dict(c) for c in data.get("caches", ())
        )
        return cls(
            kernel=str(data["kernel"]),
            length=int(data.get("length", 16)),
            rules=tuple(str(r) for r in data.get("rules", ("baseline",))),
            caches=caches,
        )


def validate_rule_ref(rule: str) -> None:
    """Reject rule references that can never resolve.

    ``file:`` paths are *not* checked for existence or well-formedness
    here — a broken rule file is an execution-time failure handled by the
    scheduler's retry/degradation machinery, not a spec error.
    """
    lowered = rule.lower()
    if lowered in BASELINE_NAMES or lowered in PAPER_RULE_NAMES:
        return
    if rule.startswith("file:"):
        if not rule[len("file:"):].strip():
            raise CampaignError("empty path in 'file:' rule reference")
        return
    raise CampaignError(
        f"unknown rule reference {rule!r}; use "
        f"{'/'.join(BASELINE_NAMES)}, {'/'.join(PAPER_RULE_NAMES)}, or file:PATH"
    )


@dataclass(frozen=True)
class BatchOptions:
    """Batched-simulation knobs (the ``[batch]`` TOML table).

    When enabled, grid points that share one input trace (same kernel,
    length, rule, attribution) and whose cache geometry the batched
    kernel covers are routed to a single multi-config job; everything
    else falls back to per-config execution untouched.
    """

    #: master switch; ``tdst campaign --no-batch`` and the
    #: ``TDST_NO_BATCH`` environment variable override it downward
    enabled: bool = True
    #: records per streamed chunk fed to the batched kernel
    chunk: int = 65536
    #: configs per batched job; larger groups split into several jobs
    max_configs: int = 64

    def __post_init__(self) -> None:
        if self.chunk <= 0:
            raise CampaignError(
                f"batch chunk must be positive, got {self.chunk}"
            )
        if self.max_configs <= 0:
            raise CampaignError(
                f"batch max_configs must be positive, got {self.max_configs}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchOptions":
        """Build from a TOML ``[batch]`` table (unknown keys rejected)."""
        if not isinstance(data, Mapping):
            raise CampaignError(
                f"[batch] must be a table, got {data!r}"
            )
        known = {"enabled", "chunk", "max_configs"}
        extra = set(data) - known
        if extra:
            raise CampaignError(
                f"unknown batch option keys: {sorted(extra)} "
                f"(known: {sorted(known)})"
            )
        for key in ("chunk", "max_configs"):
            if key in data and (
                isinstance(data[key], bool) or not isinstance(data[key], int)
            ):
                raise CampaignError(
                    f"batch {key} must be an integer, got {data[key]!r}"
                )
        if "enabled" in data and not isinstance(data["enabled"], bool):
            raise CampaignError(
                f"batch enabled must be a boolean, got {data['enabled']!r}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class ServiceOptions:
    """Campaign-service knobs (the ``[service]`` TOML table).

    When enabled, ``tdst campaign`` drives the run through the local
    asyncio job service (work-stealing shard workers, chunk-parallel
    simulation) instead of the one-shot process pool.  Artifacts are
    byte-identical either way; ``tdst campaign --no-service`` and the
    ``TDST_NO_SERVICE`` environment variable override it downward.
    """

    #: master switch for the service route
    enabled: bool = False
    #: shard workers; 0 means "follow the scheduler's worker count"
    shards: int = 0
    #: bounded job-queue capacity (the backpressure knob)
    queue_capacity: int = 1024
    #: split eligible simulate stages into chunk ranges merged through
    #: the shard-merge algebra
    chunk_parallel: bool = True
    #: chunk ranges per simulate stage when chunk-parallel is on
    chunk_shards: int = 4
    #: traces shorter than this simulate whole (chunking overhead floor)
    min_chunk_records: int = 4096

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise CampaignError(
                f"service shards must be >= 0, got {self.shards}"
            )
        if self.queue_capacity <= 0:
            raise CampaignError(
                f"service queue_capacity must be positive, "
                f"got {self.queue_capacity}"
            )
        if self.chunk_shards <= 0:
            raise CampaignError(
                f"service chunk_shards must be positive, "
                f"got {self.chunk_shards}"
            )
        if self.min_chunk_records < 0:
            raise CampaignError(
                f"service min_chunk_records must be >= 0, "
                f"got {self.min_chunk_records}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceOptions":
        """Build from a TOML ``[service]`` table (unknown keys rejected)."""
        if not isinstance(data, Mapping):
            raise CampaignError(f"[service] must be a table, got {data!r}")
        known = {
            "enabled",
            "shards",
            "queue_capacity",
            "chunk_parallel",
            "chunk_shards",
            "min_chunk_records",
        }
        extra = set(data) - known
        if extra:
            raise CampaignError(
                f"unknown service option keys: {sorted(extra)} "
                f"(known: {sorted(known)})"
            )
        for key in ("shards", "queue_capacity", "chunk_shards", "min_chunk_records"):
            if key in data and (
                isinstance(data[key], bool) or not isinstance(data[key], int)
            ):
                raise CampaignError(
                    f"service {key} must be an integer, got {data[key]!r}"
                )
        for key in ("enabled", "chunk_parallel"):
            if key in data and not isinstance(data[key], bool):
                raise CampaignError(
                    f"service {key} must be a boolean, got {data[key]!r}"
                )
        return cls(**dict(data))


@dataclass(frozen=True)
class CampaignSpec:
    """The full declarative campaign: grid entries plus shared defaults."""

    name: str
    grid: Tuple[GridEntry, ...]
    caches: Tuple[CacheSpec, ...] = (CacheSpec(),)
    attribution: Tuple[str, ...] = ("base",)
    #: opt-in post-job check: every transformed trace is replayed through
    #: the soundness oracle (``[campaign] verify = true``, or
    #: ``tdst campaign --verify``); an unsound transform fails the job.
    verify: bool = False
    #: opt-in profiling: JSONL telemetry profile written relative to the
    #: campaign directory (``[campaign] profile = "profile.jsonl"``).
    profile: Optional[str] = None
    #: companion Chrome ``trace_event`` file for chrome://tracing/Perfetto
    #: (``[campaign] profile_trace = "trace.json"``).
    profile_trace: Optional[str] = None
    #: batched multi-config simulation knobs (the ``[batch]`` table)
    batch: BatchOptions = BatchOptions()
    #: campaign-service knobs (the ``[service]`` table)
    service: ServiceOptions = ServiceOptions()

    def __post_init__(self) -> None:
        if not self.grid:
            raise CampaignError("campaign declares no grid entries")
        for mode in self.attribution:
            if mode not in ATTRIBUTION_MODES:
                raise CampaignError(
                    f"unknown attribution mode {mode!r}; "
                    f"choose from {ATTRIBUTION_MODES}"
                )
        for entry in self.grid:
            if not entry.caches and not self.caches:
                raise CampaignError(
                    f"grid entry {entry.kernel!r} has no caches and the "
                    "campaign declares no defaults"
                )

    # -- loaders -------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build from a parsed TOML document (nested plain dicts)."""
        campaign = data.get("campaign", {})
        name = str(campaign.get("name", "campaign"))
        attribution = campaign.get("attribution", ["base"])
        if isinstance(attribution, str):
            attribution = [attribution]
        caches = tuple(
            CacheSpec.from_dict(c) for c in data.get("caches", ())
        ) or (CacheSpec(),)
        grid = tuple(GridEntry.from_dict(g) for g in data.get("grid", ()))
        return cls(
            name=name,
            grid=grid,
            caches=caches,
            attribution=tuple(str(a) for a in attribution),
            verify=bool(campaign.get("verify", False)),
            profile=(
                str(campaign["profile"])
                if campaign.get("profile")
                else None
            ),
            profile_trace=(
                str(campaign["profile_trace"])
                if campaign.get("profile_trace")
                else None
            ),
            batch=BatchOptions.from_dict(data.get("batch", {})),
            service=ServiceOptions.from_dict(data.get("service", {})),
        )

    @classmethod
    def from_toml(cls, text: str) -> "CampaignSpec":
        """Parse a TOML document into a spec."""
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CampaignError(f"invalid campaign TOML: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec from a TOML file."""
        return cls.from_toml(Path(path).read_text(encoding="utf-8"))

    # -- derived -------------------------------------------------------------

    def caches_for(self, entry: GridEntry) -> Tuple[CacheSpec, ...]:
        """The cache list one grid entry runs against."""
        return entry.caches or self.caches

    def n_points(self) -> int:
        """Total grid points (jobs) this spec expands to."""
        return sum(
            len(e.rules) * len(self.caches_for(e)) * len(self.attribution)
            for e in self.grid
        )


def paper_figures_spec(length: int = 1024) -> CampaignSpec:
    """The built-in spec reproducing the paper's T1/T2/T3 studies.

    Kernels 1a/2a/3a with their matching rules against the paper's two
    cache geometries (direct-mapped 32 KiB for T1/T2, PPC440 for T3) —
    the one-invocation reproduction of Figures 3-11's before/after data.
    """
    return CampaignSpec(
        name="paper-figures",
        grid=(
            GridEntry(kernel="1a", length=length, rules=("baseline", "t1")),
            GridEntry(kernel="2a", length=length, rules=("baseline", "t2")),
            GridEntry(
                kernel="3a",
                length=length,
                rules=("baseline", "t3"),
                caches=(CacheSpec(ppc440=True),),
            ),
        ),
        caches=(CacheSpec(),),
        attribution=("base",),
    )
