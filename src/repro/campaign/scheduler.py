"""The campaign scheduler: fan jobs out, survive failures, stay observable.

Execution model:

- **Phase 1** runs the deduplicated :class:`TraceTask` list — one task
  per distinct ``(kernel, length)`` — so the expensive shared stage is
  computed exactly once no matter how many grid points reuse it.
- **Phase 2** fans every :class:`Job` out over a pool of worker
  *processes* (one dedicated task queue per worker, one shared result
  queue).  The parent knows which worker owns which job and when it
  started, which is what makes per-job **timeouts** enforceable: a
  worker that blows its deadline is terminated and replaced, and the job
  re-enters the queue under the retry policy.
- **Bounded retry with exponential backoff**: a failing job is re-queued
  up to ``retries`` times with ``backoff * 2^(attempt-1)`` seconds of
  delay; after that it is recorded as *failed* in the manifest and the
  rest of the grid continues — a broken rule file costs one point, not
  the campaign.
- ``workers <= 1`` runs everything inline (deterministic, easily
  debugged, no subprocesses); timeouts are not enforceable inline and
  are ignored there.

Every state change is appended to the JSONL
:class:`~repro.campaign.manifest.RunManifest`; ``resume=True`` reads the
previous manifest, skips already-completed jobs, and appends to it.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.artifacts import ArtifactStore
from repro.campaign.jobs import (
    NO_BATCH_ENV,
    NO_TRACESTORE_ENV,
    BatchJob,
    Job,
    TraceTask,
    execute_task,
    expand_jobs,
    group_batch_jobs,
)
from repro.campaign.manifest import (
    EVENT_CAMPAIGN_END,
    EVENT_CAMPAIGN_START,
    EVENT_JOB_DONE,
    EVENT_JOB_FAILED,
    EVENT_JOB_RETRY,
    EVENT_JOB_SKIPPED,
    EVENT_JOB_START,
    EVENT_TELEMETRY,
    RunManifest,
)
from repro.campaign.spec import CampaignSpec
from repro.obsv.telemetry import get_telemetry

#: Upper bound on one backoff delay, seconds.
MAX_BACKOFF = 30.0


@dataclass
class JobOutcome:
    """Terminal state of one task after scheduling."""

    job_id: str
    status: str  #: ``"done"`` | ``"failed"`` | ``"skipped"``
    attempts: int = 1
    elapsed: float = 0.0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True unless the task exhausted its retries."""
        return self.status != "failed"


@dataclass
class CampaignResult:
    """Everything one campaign run produced, plus aggregate views."""

    spec: CampaignSpec
    trace_outcomes: List[JobOutcome] = field(default_factory=list)
    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    def by_status(self, status: str) -> List[JobOutcome]:
        """Grid-point outcomes with the given terminal status."""
        return [o for o in self.outcomes if o.status == status]

    @property
    def n_done(self) -> int:
        """Points that produced a result this run."""
        return len(self.by_status("done"))

    @property
    def n_failed(self) -> int:
        """Points that exhausted their retries."""
        return len(self.by_status("failed"))

    @property
    def n_skipped(self) -> int:
        """Points skipped because a resumed manifest already had them."""
        return len(self.by_status("skipped"))

    def cache_hit_rate(self) -> float:
        """Fraction of successful points served from the artifact cache.

        A point counts as a hit when its simulation-stage artifact was
        already stored (or the point was skipped entirely on resume).
        """
        served = [o for o in self.outcomes if o.status in ("done", "skipped")]
        if not served:
            return 0.0
        hits = 0
        for outcome in served:
            if outcome.status == "skipped":
                hits += 1
                continue
            stage_hits = (outcome.result or {}).get("cache_hits", {})
            if stage_hits.get("simulation"):
                hits += 1
        return hits / len(served)

    def summary(self) -> str:
        """Multi-line aggregate summary of the run."""
        hit_rate = self.cache_hit_rate()
        served = self.n_done + self.n_skipped
        lines = [
            f"campaign {self.spec.name!r}: "
            f"{len(self.outcomes)} points, "
            f"{len(self.trace_outcomes)} shared trace stages",
            f"  done: {self.n_done}  failed: {self.n_failed}  "
            f"skipped: {self.n_skipped}",
            f"  artifact-cache hit rate: {hit_rate:.1%} "
            f"({round(hit_rate * served)}/{served} points)",
            f"  wall time: {self.wall_seconds:.2f}s",
        ]
        for outcome in self.by_status("failed"):
            lines.append(
                f"  FAILED {outcome.job_id} "
                f"after {outcome.attempts} attempts: {outcome.error}"
            )
        return "\n".join(lines)


def _result_rows(
    task: Union[TraceTask, Job, BatchJob], payload: Any
) -> List[Tuple[str, Any]]:
    """``(job_id, result)`` manifest rows one success produces.

    A :class:`BatchJob` fans out into one row per member — keyed by the
    *member's* job id with the member's own payload — so resume,
    reports and ``completed_jobs`` never see the batch route.
    """
    if (
        isinstance(task, BatchJob)
        and isinstance(payload, dict)
        and payload.get("kind") == "batch"
    ):
        members = payload.get("members", {})
        return [(job_id, members.get(job_id)) for job_id in task.member_ids]
    return [(task.job_id, payload)]


def _failure_ids(task: Union[TraceTask, Job, BatchJob]) -> List[str]:
    """Job ids a terminal failure marks failed (batch = every member)."""
    if isinstance(task, BatchJob):
        return list(task.member_ids)
    return [task.job_id]


class _WorkerSlot:
    """Parent-side bookkeeping for one worker process.

    ``busy`` holds the ``(seq, attempt)`` pair currently assigned, so a
    stale result from a terminated-and-replaced worker (whose job was
    already settled as a timeout) can be recognised and dropped.
    """

    __slots__ = ("process", "task_queue", "busy", "started_at")

    def __init__(self, process: mp.process.BaseProcess, task_queue) -> None:
        self.process = process
        self.task_queue = task_queue
        self.busy: Optional[Tuple[int, int]] = None
        self.started_at: float = 0.0


def _worker_main(worker_id: int, task_queue, result_queue, store_root: str) -> None:
    """Worker process body: execute tasks until the ``None`` sentinel.

    When the (fork-inherited) telemetry registry is enabled, each task
    runs against a freshly reset registry and its snapshot rides back to
    the parent inside the result payload under the ``"telemetry"`` key;
    the parent pops and merges it.  The inherited epoch keeps worker
    spans on the parent's timeline, and the worker index becomes the
    span ``tid`` so traces render one track per worker.
    """
    telemetry = get_telemetry()
    telemetry.tid = worker_id
    while True:
        item = task_queue.get()
        if item is None:
            break
        seq, attempt, task = item
        started = time.monotonic()
        if telemetry.enabled:
            telemetry.reset()
        try:
            result = execute_task(task, store_root)
            if telemetry.enabled and isinstance(result, dict):
                telemetry.sample_rss()
                result = dict(result)
                result["telemetry"] = telemetry.snapshot()
            result_queue.put(
                (seq, attempt, worker_id, "ok", result, time.monotonic() - started)
            )
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            result_queue.put(
                (
                    seq,
                    attempt,
                    worker_id,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    time.monotonic() - started,
                )
            )


def _mp_context():
    """Prefer ``fork`` (cheap task pickling) with a portable fallback."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context()


class Scheduler:
    """Expands a spec and drives its jobs to terminal state.

    Parameters
    ----------
    spec:
        The campaign to run.
    directory:
        Campaign working directory; holds ``artifacts/`` (the
        content-addressed store) and ``manifest.jsonl``.
    workers:
        Worker processes; ``<= 1`` runs inline (no timeout enforcement).
    timeout:
        Per-job wall-clock budget in seconds (``None`` = unlimited;
        parallel mode only).
    retries:
        Re-attempts after the first failure of a job.
    backoff:
        Base seconds of delay before attempt *n*'s retry
        (``backoff * 2^(n-1)``, capped at :data:`MAX_BACKOFF`).
    resume:
        Skip jobs already recorded as done in the existing manifest and
        append new events to it instead of truncating.
    batch:
        Route grid points sharing one trace to batched multi-config
        jobs.  ``None`` (the default) follows the spec's ``[batch]``
        table unless the ``TDST_NO_BATCH`` environment variable is set;
        ``False`` (e.g. ``tdst campaign --no-batch``) forces per-config
        execution.
    tracestore:
        Route eligible ``file:`` rule points through the incremental
        trace commit store (chunk blobs, residency snapshots).  ``None``
        (the default) enables it unless the ``TDST_NO_TRACESTORE``
        environment variable is set; ``False`` (e.g. ``tdst campaign
        --no-tracestore``) exports that variable so forked workers take
        the classic transform-then-simulate stages.
    service:
        Drive the run through the local asyncio campaign service
        (work-stealing shard workers, chunk-parallel simulation) instead
        of the process pool.  ``None`` (the default) follows the spec's
        ``[service]`` table unless the ``TDST_NO_SERVICE`` environment
        variable is set; ``False`` (e.g. ``tdst campaign
        --no-service``) forces the one-shot route.  Artifacts are
        byte-identical either way.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        directory: Union[str, Path],
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.5,
        resume: bool = False,
        batch: Optional[bool] = None,
        tracestore: Optional[bool] = None,
        service: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.store = ArtifactStore(self.directory / "artifacts")
        self.manifest_path = self.directory / "manifest.jsonl"
        if tracestore is False:
            # Workers (forked or inline) consult the environment, so an
            # explicit opt-out must be visible there too.
            os.environ[NO_TRACESTORE_ENV] = "1"
        self.tracestore = bool(
            tracestore
            if tracestore is not None
            else not os.environ.get(NO_TRACESTORE_ENV)
        )
        if self.tracestore:
            from repro.tracestore.campaign import tracestore_root_for

            tracestore_root_for(self.store.root).mkdir(
                parents=True, exist_ok=True
            )
        self.workers = max(0, workers)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = max(0.0, backoff)
        self.resume = resume
        if batch is None:
            batch = spec.batch.enabled and not os.environ.get(NO_BATCH_ENV)
        self.batch = bool(batch)
        if service is None:
            from repro.campaign.service.server import NO_SERVICE_ENV

            service = spec.service.enabled and not os.environ.get(NO_SERVICE_ENV)
        self.service = bool(service)

    # -- public API ----------------------------------------------------------

    def run(self) -> CampaignResult:
        """Run the whole campaign; never raises for individual job failures.

        When the spec declares ``profile``/``profile_trace`` paths (or
        telemetry is already enabled, e.g. by ``tdst --profile``), the
        run is timed phase by phase, per-worker child telemetry is
        merged back in, the merged counters land in the manifest as a
        ``telemetry`` event, and the spec's sink files are written
        (relative to the campaign directory) when the run finishes.
        """
        telemetry = get_telemetry()
        wants_profile = bool(self.spec.profile or self.spec.profile_trace)
        owns_telemetry = wants_profile and not telemetry.enabled
        if owns_telemetry:
            telemetry.reset()
            telemetry.enable()
        try:
            with telemetry.span(
                "campaign.run", cat="campaign", campaign=self.spec.name
            ):
                result = self._run(telemetry)
        finally:
            if wants_profile:
                telemetry.sample_rss()
                snapshot = telemetry.snapshot()
                from repro.obsv.sinks import (
                    write_chrome_trace,
                    write_jsonl_profile,
                )

                if self.spec.profile:
                    write_jsonl_profile(
                        snapshot, self.directory / self.spec.profile
                    )
                if self.spec.profile_trace:
                    write_chrome_trace(
                        snapshot, self.directory / self.spec.profile_trace
                    )
            if owns_telemetry:
                telemetry.disable()
        return result

    def _run(self, telemetry) -> CampaignResult:
        """The campaign body (phases timed against ``telemetry``)."""
        started = time.monotonic()
        with telemetry.span("campaign.expand", cat="campaign"):
            trace_tasks, jobs = expand_jobs(self.spec)
        previous: Dict[str, Dict[str, Any]] = {}
        if self.resume and self.manifest_path.exists():
            previous = RunManifest.completed_jobs(
                RunManifest.read(self.manifest_path)
            )
        result = CampaignResult(spec=self.spec)
        with RunManifest(self.manifest_path, append=self.resume) as manifest:
            manifest.record(
                EVENT_CAMPAIGN_START,
                campaign=self.spec.name,
                points=len(jobs),
                trace_stages=len(trace_tasks),
                workers=self.workers,
                timeout=self.timeout,
                retries=self.retries,
                resume=self.resume,
                tracestore=self.tracestore,
            )
            run_jobs: List[Job] = []
            for job in jobs:
                row = previous.get(job.job_id)
                if row is not None:
                    # Carry the prior result forward so reports built from
                    # the latest terminal row per job still have the data.
                    manifest.record(
                        EVENT_JOB_SKIPPED,
                        job_id=job.job_id,
                        result=row.get("result"),
                    )
                    result.outcomes.append(
                        JobOutcome(
                            job_id=job.job_id,
                            status="skipped",
                            attempts=0,
                            result=row.get("result"),
                        )
                    )
                    continue
                recovered = (
                    self._recover_orphan(job) if self.resume else None
                )
                if recovered is not None:
                    # A previous run died between the artifact write and
                    # the manifest append: the content-addressed payload
                    # exists but no terminal row does.  Dedupe by content
                    # key on replay — serve the orphaned artifact as a
                    # recovered job-done instead of re-executing.
                    manifest.record(
                        EVENT_JOB_DONE,
                        job_id=job.job_id,
                        attempt=0,
                        worker=-1,
                        elapsed=0.0,
                        result=recovered,
                        recovered=True,
                    )
                    result.outcomes.append(
                        JobOutcome(
                            job_id=job.job_id,
                            status="done",
                            attempts=0,
                            result=recovered,
                        )
                    )
                    telemetry.add("campaign.orphans_recovered")
                else:
                    run_jobs.append(job)
            # Phase 1: shared trace stages, deduplicated.  Only needed
            # for programs some remaining job actually uses.
            needed = {(j.kernel, j.length) for j in run_jobs}
            phase1 = [
                t for t in trace_tasks if (t.kernel, t.length) in needed
            ]
            with telemetry.span("campaign.trace-stage", cat="campaign"):
                result.trace_outcomes = self._run_batch(phase1, manifest)
            # Phase 2: the grid.  A failed trace stage degrades the
            # points that need it (they will retry the stage themselves
            # and fail the same way), but never stops the others.
            # Batching (when on) folds points sharing a trace into
            # multi-config jobs *after* resume filtering, so resumed
            # groups re-batch only their pending members.
            if self.batch:
                with telemetry.span("campaign.batch-plan", cat="campaign"):
                    phase2: List[Union[Job, BatchJob]] = group_batch_jobs(
                        run_jobs,
                        max_configs=self.spec.batch.max_configs,
                        chunk=self.spec.batch.chunk,
                    )
                    n_batched = sum(
                        len(t.members)
                        for t in phase2
                        if isinstance(t, BatchJob)
                    )
                telemetry.add("campaign.points_batched", n_batched)
            else:
                phase2 = list(run_jobs)
            with telemetry.span("campaign.grid", cat="campaign"):
                result.outcomes.extend(self._run_batch(phase2, manifest))
            result.wall_seconds = time.monotonic() - started
            telemetry.add("campaign.points_done", result.n_done)
            telemetry.add("campaign.points_failed", result.n_failed)
            telemetry.add("campaign.points_skipped", result.n_skipped)
            if telemetry.enabled:
                snapshot = telemetry.snapshot()
                manifest.record(
                    EVENT_TELEMETRY,
                    counters=snapshot["counters"],
                    gauges=snapshot["gauges"],
                    spans=len(snapshot["spans"]),
                )
            manifest.record(
                EVENT_CAMPAIGN_END,
                campaign=self.spec.name,
                done=result.n_done,
                failed=result.n_failed,
                skipped=result.n_skipped,
                cache_hit_rate=round(result.cache_hit_rate(), 4),
                wall_seconds=round(result.wall_seconds, 3),
            )
        return result

    def _recover_orphan(self, job: Job) -> Optional[Dict[str, Any]]:
        """Resume-time content-key dedupe for one pending grid point.

        Returns the orphaned simulation payload when the artifact store
        already holds this job's content-addressed result (a prior
        worker died after the atomic artifact write but before the
        manifest append), shaped exactly like a fully cached execution;
        ``None`` means the job must actually run.
        """
        from repro.campaign.jobs import (
            resolve_rule_text,
            simulation_key,
            trace_key,
            transform_key,
        )

        try:
            rule_text = resolve_rule_text(job.rule, job.length)
        except Exception:
            # Unresolvable rule: let the normal run path own the failure.
            return None
        tkey = trace_key(job.kernel, job.length)
        input_key = tkey if rule_text is None else transform_key(tkey, rule_text)
        payload = self.store.get_json(simulation_key(input_key, job))
        if payload is None:
            return None
        payload = dict(payload)
        payload["cache_hits"] = {"simulation": True}
        payload["compute_seconds"] = 0.0
        return payload

    # -- batch executors -----------------------------------------------------

    def _run_batch(
        self,
        tasks: Sequence[Union[TraceTask, Job, BatchJob]],
        manifest: RunManifest,
    ) -> List[JobOutcome]:
        """Drive one task batch to terminal state (serial or parallel)."""
        if not tasks:
            return []
        if self.service:
            return self._run_service(tasks, manifest)
        # A single task still goes through the process pool when workers
        # were requested: inline execution cannot enforce timeouts.
        if self.workers <= 1:
            return self._run_serial(tasks, manifest)
        return self._run_parallel(tasks, manifest)

    def _retry_delay(self, attempt: int) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        return min(self.backoff * (2 ** (attempt - 1)), MAX_BACKOFF)

    def _run_serial(
        self,
        tasks: Sequence[Union[TraceTask, Job, BatchJob]],
        manifest: RunManifest,
    ) -> List[JobOutcome]:
        """Inline executor: same policy, no processes, no timeouts."""
        outcomes = []
        store_root = str(self.store.root)
        for task in tasks:
            attempt = 0
            total_elapsed = 0.0
            while True:
                attempt += 1
                manifest.record(
                    EVENT_JOB_START, job_id=task.job_id, attempt=attempt, worker=0
                )
                started = time.monotonic()
                try:
                    payload = execute_task(task, store_root)
                except Exception as exc:
                    elapsed = time.monotonic() - started
                    total_elapsed += elapsed
                    error = f"{type(exc).__name__}: {exc}"
                    if attempt <= self.retries:
                        delay = self._retry_delay(attempt)
                        manifest.record(
                            EVENT_JOB_RETRY,
                            job_id=task.job_id,
                            attempt=attempt,
                            error=error,
                            backoff=round(delay, 3),
                        )
                        if delay:
                            time.sleep(delay)
                        continue
                    for job_id in _failure_ids(task):
                        manifest.record(
                            EVENT_JOB_FAILED,
                            job_id=job_id,
                            attempts=attempt,
                            error=error,
                        )
                        outcomes.append(
                            JobOutcome(
                                job_id=job_id,
                                status="failed",
                                attempts=attempt,
                                elapsed=total_elapsed,
                                error=error,
                            )
                        )
                    break
                elapsed = time.monotonic() - started
                total_elapsed += elapsed
                for job_id, row in _result_rows(task, payload):
                    manifest.record(
                        EVENT_JOB_DONE,
                        job_id=job_id,
                        attempt=attempt,
                        worker=0,
                        elapsed=round(elapsed, 6),
                        result=row,
                    )
                    outcomes.append(
                        JobOutcome(
                            job_id=job_id,
                            status="done",
                            attempts=attempt,
                            elapsed=total_elapsed,
                            result=row,
                        )
                    )
                break
        return outcomes

    def _run_service(
        self,
        tasks: Sequence[Union[TraceTask, Job, BatchJob]],
        manifest: RunManifest,
    ) -> List[JobOutcome]:
        """Service executor: drive the batch through an in-process
        campaign service (shard workers, work stealing, chunk-parallel
        simulation).

        Workers run the exact one-shot job bodies against the same
        artifact store, so stored artifacts are byte-identical to the
        serial/parallel routes.  Retries happen inside the service
        (``job-retry`` rows are not emitted; the terminal row carries
        the attempt count instead).
        """
        import asyncio

        from repro.campaign.service.server import (
            ServiceConfig,
            service_socket_path,
        )

        opts = self.spec.service
        config = ServiceConfig(
            socket_path=service_socket_path(self.directory),
            store_root=str(self.store.root),
            shards=opts.shards or max(1, self.workers),
            queue_capacity=opts.queue_capacity,
            retries=self.retries,
            backoff=self.backoff,
            timeout=self.timeout,
            chunk_parallel=opts.chunk_parallel,
            chunk_shards=opts.chunk_shards,
            min_chunk_records=opts.min_chunk_records,
        )
        with get_telemetry().span(
            "campaign.service", cat="campaign", shards=config.shards
        ):
            return asyncio.run(self._drive_service(tasks, manifest, config))

    async def _drive_service(
        self,
        tasks: Sequence[Union[TraceTask, Job, BatchJob]],
        manifest: RunManifest,
        config,
    ) -> List[JobOutcome]:
        """:meth:`_run_service` body: submit, drain, record outcomes."""
        from repro.campaign.service.client import ServiceClient
        from repro.campaign.service.server import service_running
        from repro.campaign.service.wire import task_to_wire

        outcomes: List[JobOutcome] = []
        async with service_running(config):
            client = ServiceClient(config.socket_path, timeout=30.0, retries=3)
            await client.connect()
            try:
                for task in tasks:
                    manifest.record(
                        EVENT_JOB_START,
                        job_id=task.job_id,
                        attempt=1,
                        worker=-1,
                    )
                await client.submit_many(
                    (task.job_id, task_to_wire(task)) for task in tasks
                )
                await client.drain(timeout=7 * 24 * 3600.0)
                for task in tasks:
                    res = await client.result(task.job_id)
                    attempts = int(res.get("attempts", 1))
                    if res.get("status") == "done":
                        payload = res.get("payload")
                        for job_id, row in _result_rows(task, payload):
                            elapsed = float(
                                (row or {}).get("compute_seconds", 0.0)
                            )
                            manifest.record(
                                EVENT_JOB_DONE,
                                job_id=job_id,
                                attempt=attempts,
                                worker=-1,
                                elapsed=round(elapsed, 6),
                                result=row,
                            )
                            outcomes.append(
                                JobOutcome(
                                    job_id=job_id,
                                    status="done",
                                    attempts=attempts,
                                    elapsed=elapsed,
                                    result=row,
                                )
                            )
                    else:
                        error = str(
                            res.get("error")
                            or f"service status {res.get('status')!r}"
                        )
                        for job_id in _failure_ids(task):
                            manifest.record(
                                EVENT_JOB_FAILED,
                                job_id=job_id,
                                attempts=attempts,
                                error=error,
                            )
                            outcomes.append(
                                JobOutcome(
                                    job_id=job_id,
                                    status="failed",
                                    attempts=attempts,
                                    error=error,
                                )
                            )
            finally:
                await client.close()
        return outcomes

    def _run_parallel(
        self,
        tasks: Sequence[Union[TraceTask, Job, BatchJob]],
        manifest: RunManifest,
    ) -> List[JobOutcome]:
        """Process-pool executor with per-job deadlines and replacement."""
        ctx = _mp_context()
        store_root = str(self.store.root)
        result_queue = ctx.Queue()
        n_workers = min(self.workers, len(tasks))

        def spawn(worker_id: int) -> _WorkerSlot:
            task_queue = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(worker_id, task_queue, result_queue, store_root),
                daemon=True,
            )
            process.start()
            return _WorkerSlot(process, task_queue)

        slots = [spawn(i) for i in range(n_workers)]
        # (ready_time, seq) heap of runnable work; attempts[seq] counts
        # tries already made; elapsed[seq] accumulates across attempts.
        ready: List[Tuple[float, int]] = [(0.0, i) for i in range(len(tasks))]
        heapq.heapify(ready)
        attempts = [0] * len(tasks)
        elapsed_total = [0.0] * len(tasks)
        # One list per settled task: a BatchJob settles into one
        # outcome per member, everything else into exactly one.
        outcomes: Dict[int, List[JobOutcome]] = {}

        def settle_failure(seq: int, worker_id: int, error: str, took: float) -> None:
            """Retry or record terminal failure for one attempt."""
            elapsed_total[seq] += took
            task = tasks[seq]
            if attempts[seq] <= self.retries:
                delay = self._retry_delay(attempts[seq])
                manifest.record(
                    EVENT_JOB_RETRY,
                    job_id=task.job_id,
                    attempt=attempts[seq],
                    worker=worker_id,
                    error=error,
                    backoff=round(delay, 3),
                )
                heapq.heappush(ready, (time.monotonic() + delay, seq))
            else:
                settled = []
                for job_id in _failure_ids(task):
                    manifest.record(
                        EVENT_JOB_FAILED,
                        job_id=job_id,
                        attempts=attempts[seq],
                        error=error,
                    )
                    settled.append(
                        JobOutcome(
                            job_id=job_id,
                            status="failed",
                            attempts=attempts[seq],
                            elapsed=elapsed_total[seq],
                            error=error,
                        )
                    )
                outcomes[seq] = settled

        try:
            while len(outcomes) < len(tasks):
                now = time.monotonic()
                # Hand ready work to idle (and live) workers.
                for i, slot in enumerate(slots):
                    if slot.busy is not None or not ready:
                        continue
                    if ready[0][0] > now:
                        break
                    if not slot.process.is_alive():
                        slots[i] = slot = spawn(i)
                    _, seq = heapq.heappop(ready)
                    attempts[seq] += 1
                    slot.busy = (seq, attempts[seq])
                    slot.started_at = now
                    manifest.record(
                        EVENT_JOB_START,
                        job_id=tasks[seq].job_id,
                        attempt=attempts[seq],
                        worker=i,
                    )
                    slot.task_queue.put((seq, attempts[seq], tasks[seq]))
                # Collect one result (short poll keeps deadline checks live).
                try:
                    seq, attempt, worker_id, status, payload, took = (
                        result_queue.get(timeout=0.05)
                    )
                except queue_mod.Empty:
                    pass
                else:
                    owner = next(
                        (s for s in slots if s.busy == (seq, attempt)), None
                    )
                    if owner is None or seq in outcomes:
                        # Stale result from a worker whose job was already
                        # settled (e.g. finished right as it was timed out).
                        pass
                    else:
                        owner.busy = None
                        if status == "ok":
                            elapsed_total[seq] += took
                            if isinstance(payload, dict):
                                child_tele = payload.pop("telemetry", None)
                                if child_tele:
                                    get_telemetry().merge(child_tele)
                            settled = []
                            for job_id, row in _result_rows(
                                tasks[seq], payload
                            ):
                                manifest.record(
                                    EVENT_JOB_DONE,
                                    job_id=job_id,
                                    attempt=attempt,
                                    worker=worker_id,
                                    elapsed=round(took, 6),
                                    result=row,
                                )
                                settled.append(
                                    JobOutcome(
                                        job_id=job_id,
                                        status="done",
                                        attempts=attempt,
                                        elapsed=elapsed_total[seq],
                                        result=row,
                                    )
                                )
                            outcomes[seq] = settled
                        else:
                            settle_failure(seq, worker_id, payload, took)
                # Enforce deadlines and replace dead or stuck workers.
                now = time.monotonic()
                for i, slot in enumerate(slots):
                    if slot.busy is None:
                        continue
                    seq, _attempt = slot.busy
                    over_deadline = (
                        self.timeout is not None
                        and now - slot.started_at > self.timeout
                    )
                    died = not slot.process.is_alive()
                    if not over_deadline and not died:
                        continue
                    took = now - slot.started_at
                    error = (
                        f"timeout after {self.timeout:.1f}s"
                        if over_deadline
                        else "worker process died"
                    )
                    slot.process.terminate()
                    slot.process.join(timeout=2.0)
                    slots[i] = spawn(i)
                    settle_failure(seq, i, error, took)
        finally:
            for slot in slots:
                try:
                    slot.task_queue.put(None)
                except Exception:  # pragma: no cover - shutdown best effort
                    pass
            deadline = time.monotonic() + 2.0
            for slot in slots:
                slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if slot.process.is_alive():  # pragma: no cover
                    slot.process.terminate()
                    slot.process.join(timeout=1.0)
            result_queue.close()
            result_queue.cancel_join_thread()
        return [o for i in range(len(tasks)) for o in outcomes[i]]


def run_campaign(
    spec: CampaignSpec,
    directory: Union[str, Path],
    *,
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.5,
    resume: bool = False,
    batch: Optional[bool] = None,
    tracestore: Optional[bool] = None,
    service: Optional[bool] = None,
) -> CampaignResult:
    """One-call campaign execution (see :class:`Scheduler` for knobs)."""
    return Scheduler(
        spec,
        directory,
        workers=workers,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        resume=resume,
        batch=batch,
        tracestore=tracestore,
        service=service,
    ).run()
