"""Campaign jobs: grid expansion and the per-job pipeline workers run.

A :class:`CampaignSpec` expands into two picklable task kinds:

- :class:`TraceTask` — generate (or reuse) the trace of one
  ``(kernel, length)`` pair.  Trace generation is the expensive shared
  stage: every rule x cache x attribution point of the same program
  reuses one trace artifact, so the scheduler runs these first and
  exactly once per distinct program.
- :class:`Job` — one grid point: take the shared trace, optionally
  transform it under a rule, simulate against one cache geometry at one
  attribution granularity, and store the result JSON.

All stage outputs are content-addressed through the
:class:`~repro.campaign.artifacts.ArtifactStore` (SHA-256 of kernel
identity + rule text + config tuple), so both functions are idempotent
and safe to retry; workers only ever exchange plain dicts with the
parent process.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.campaign.artifacts import ArtifactStore, content_key
from repro.campaign.spec import BASELINE_NAMES, CacheSpec, CampaignSpec
from repro.cache.config import CacheConfig
from repro.cache.fastsim import fast_trace_counts, supports_fast_path
from repro.cache.simulator import attribution_label, simulate
from repro.obsv.telemetry import get_telemetry
from repro.trace.record import AccessType
from repro.trace.stream import Trace
from repro.tracer.interp import trace_program
from repro.transform.engine import TransformEngine
from repro.transform.paper_rules import (
    RULE_T1_SOA_TO_AOS,
    RULE_T2_OUTLINE,
    RULE_T3_STRIDE,
)
from repro.transform.rule_parser import parse_rules
from repro.workloads.paper_kernels import paper_kernel

#: Stage-schema versions folded into every content key: bump one to
#: invalidate that stage's cached artifacts after a semantic change.
TRACE_STAGE = "trace-v1"
TRANSFORM_STAGE = "transform-v1"
SIMULATE_STAGE = "simulate-v1"


@dataclass(frozen=True)
class TraceTask:
    """Shared-stage task: materialise one program's trace artifact."""

    kernel: str
    length: int

    @property
    def job_id(self) -> str:
        """Stable id used in the manifest."""
        return f"trace/{self.kernel}-L{self.length}"


@dataclass(frozen=True)
class Job:
    """One grid point of a campaign."""

    kernel: str
    length: int
    rule: str
    cache: CacheSpec
    attribution: str = "base"
    #: run the soundness oracle over the transform stage's output
    verify: bool = False

    @property
    def job_id(self) -> str:
        """Stable id used in the manifest and reports."""
        return (
            f"{self.kernel}-L{self.length}/{self.rule}"
            f"/{self.cache.label()}/{self.attribution}"
        )

    @property
    def is_baseline(self) -> bool:
        """True when this point simulates the untransformed trace."""
        return self.rule.lower() in BASELINE_NAMES


def expand_jobs(spec: CampaignSpec) -> Tuple[List[TraceTask], List[Job]]:
    """Expand a spec into deduplicated trace tasks plus all grid points.

    Both lists are deduplicated: overlapping grid entries (the same
    kernel appearing in several entries with intersecting rule sets)
    collapse to one job per distinct ``job_id``, so every manifest row
    names distinct work.
    """
    traces: Dict[Tuple[str, int], TraceTask] = {}
    jobs: Dict[str, Job] = {}
    for entry in spec.grid:
        key = (entry.kernel.lower(), entry.length)
        if key not in traces:
            traces[key] = TraceTask(kernel=key[0], length=entry.length)
        for rule in entry.rules:
            for cache in spec.caches_for(entry):
                for attribution in spec.attribution:
                    job = Job(
                        kernel=key[0],
                        length=entry.length,
                        rule=rule,
                        cache=cache,
                        attribution=attribution,
                        verify=spec.verify,
                    )
                    jobs.setdefault(job.job_id, job)
    return list(traces.values()), list(jobs.values())


# -- stage keys ---------------------------------------------------------------


def trace_key(kernel: str, length: int) -> str:
    """Content key of one program's trace artifact."""
    return content_key(TRACE_STAGE, kernel.lower(), length)


def resolve_rule_text(rule: str, length: int) -> Optional[str]:
    """The rule-file source text a rule reference denotes.

    ``None`` for baseline points; paper rules are instantiated at the
    job's array length (exactly what :func:`repro.api.paper_rule`
    parses); ``file:`` references read the file — a missing or
    unreadable file raises here, inside the worker, where the
    scheduler's retry/degradation policy owns the failure.
    """
    lowered = rule.lower()
    if lowered in BASELINE_NAMES:
        return None
    if lowered == "t1":
        return RULE_T1_SOA_TO_AOS.format(length=length)
    if lowered == "t2":
        return RULE_T2_OUTLINE.format(length=length)
    if lowered == "t3":
        sets, cacheline = 16, 32
        ipl = cacheline // 4
        return RULE_T3_STRIDE.format(
            length=length, out_length=length * sets, ipl=ipl, sets=sets
        )
    if rule.startswith("file:"):
        return Path(rule[len("file:"):]).read_text(encoding="utf-8")
    raise ValueError(f"unresolvable rule reference {rule!r}")


def transform_key(base_trace_key: str, rule_text: str) -> str:
    """Content key of a transformed-trace artifact."""
    return content_key(TRANSFORM_STAGE, base_trace_key, rule_text)


def simulation_key(input_trace_key: str, job: Job) -> str:
    """Content key of one simulation-result artifact."""
    return content_key(
        SIMULATE_STAGE, input_trace_key, job.cache.label(), job.attribution
    )


# -- simulation stage ---------------------------------------------------------

#: Environment escape hatch: set to any non-empty value to force every
#: grid point through the reference simulator (e.g. when cross-checking
#: the fast path itself).  Read per job so forked workers inherit it.
NO_FAST_ENV = "TDST_NO_FAST"

#: Environment escape hatch: disable batched multi-config jobs even when
#: the spec enables them (same spirit as :data:`NO_FAST_ENV`).
NO_BATCH_ENV = "TDST_NO_BATCH"

#: Environment escape hatch: route every grid point through the classic
#: transform-then-simulate stages instead of the incremental trace
#: commit store (same spirit as :data:`NO_FAST_ENV`).
NO_TRACESTORE_ENV = "TDST_NO_TRACESTORE"


def tracestore_eligible(job: Job, rule_text: Optional[str]) -> bool:
    """Whether one grid point may run through the trace commit store.

    The incremental route targets the *edit loop*: ``file:`` rule
    references whose path is stable while the text changes between
    sweeps.  Verification jobs replay the whole transform through the
    soundness oracle anyway, and non-fast-path cache geometries have no
    residency snapshot format — both keep the classic route.
    """
    return (
        rule_text is not None
        and job.rule.startswith("file:")
        and not job.verify
        and not os.environ.get(NO_TRACESTORE_ENV)
        and not os.environ.get(NO_FAST_ENV)
        and supports_fast_path(job.cache.to_config())
    )


def simulation_fields(
    trace: Trace,
    config: CacheConfig,
    attribution: str,
    *,
    use_fast: Optional[bool] = None,
) -> Dict[str, Any]:
    """The simulation-statistics fields of one job payload.

    Grid points whose cache config the vectorized fast path covers
    (direct-mapped or set-associative LRU, write-allocate — see
    :func:`repro.cache.fastsim.supports_fast_path`) go through numpy;
    everything else (round-robin, PLRU, ...) uses the reference
    simulator.  Both routes produce identical values — the fast path is
    cross-validated exactly in ``tests/cache/test_fastsim.py`` and
    ``tests/campaign/test_jobs.py`` — so artifact keys do not encode the
    route.  ``use_fast=None`` means auto (fast when eligible unless
    :data:`NO_FAST_ENV` is set).
    """
    if use_fast is None:
        use_fast = not os.environ.get(NO_FAST_ENV)
    if use_fast and supports_fast_path(config):
        data = [r for r in trace if r.op is not AccessType.MISC]
        n = len(data)
        addrs = np.fromiter((r.addr for r in data), dtype=np.uint64, count=n)
        sizes = np.fromiter((r.size for r in data), dtype=np.uint32, count=n)
        name_ids: Dict[str, int] = {}
        var_ids = np.empty(n, dtype=np.int64)
        for i, record in enumerate(data):
            label = attribution_label(record, attribution)
            if label is None:
                var_ids[i] = -1
            else:
                var_ids[i] = name_ids.setdefault(label, len(name_ids))
        result = fast_trace_counts(addrs, config, sizes, var_ids)
        return {
            "config": config.describe(),
            "accesses": n,
            "hits": result.demand_hits,
            "misses": result.demand_misses,
            "miss_ratio": round(result.demand_miss_ratio, 6),
            "evictions": result.evictions,
            "compulsory_misses": result.counts.compulsory_misses,
            "by_variable_misses": {
                name: result.per_variable[vid][1]
                for name, vid in sorted(name_ids.items())
            },
        }
    stats = simulate(trace, config, attribution=attribution).stats
    return {
        "config": config.describe(),
        "accesses": stats.accesses,
        "hits": stats.hits,
        "misses": stats.misses,
        "miss_ratio": round(stats.miss_ratio, 6),
        "evictions": stats.evictions,
        "compulsory_misses": stats.compulsory_misses,
        "by_variable_misses": {
            name: counts.misses
            for name, counts in sorted(stats.by_variable.items())
        },
    }


# -- worker entry points ------------------------------------------------------


def _verify_transform(original, transformed, rule_text: str, allocations) -> None:
    """Opt-in post-job check: replay the transform through the soundness
    oracle; an unsound output raises so the scheduler's retry/degrade
    policy records the point as failed instead of charting bad numbers.

    Fully cached *simulation* payloads skip this entirely (the check runs
    where the transform artifact is produced or first reused) — rerun
    with a fresh campaign directory to re-verify old artifacts.
    """
    from repro.errors import TransformError
    from repro.verify.soundness import check_transform

    report = check_transform(
        original, transformed, parse_rules(rule_text), allocations=allocations
    )
    if not report.ok:
        head = "; ".join(str(v) for v in report.violations[:3])
        raise TransformError(
            f"transformed trace failed soundness verification "
            f"({report.total_violations} violation(s)): {head}"
        )


def _materialise_trace(
    store: ArtifactStore, kernel: str, length: int
) -> Tuple[Trace, bool]:
    """Fetch or generate one program's trace; returns (trace, cache_hit)."""
    key = trace_key(kernel, length)
    cached = store.get_trace(key)
    if cached is not None:
        return cached, True
    trace = trace_program(paper_kernel(kernel, length=length))
    store.put_trace(key, trace)
    return trace, False


def execute_trace_task(
    task: TraceTask, store_root: Union[str, Path]
) -> Dict[str, Any]:
    """Worker body for the shared trace stage."""
    store = ArtifactStore(store_root)
    started = time.monotonic()
    tele = get_telemetry()
    with tele.span("campaign.trace-task", cat="campaign", job=task.job_id):
        trace, hit = _materialise_trace(store, task.kernel, task.length)
    _count_artifact_hits(tele, {"trace": hit})
    return {
        "kind": "trace",
        "trace_key": trace_key(task.kernel, task.length),
        "records": len(trace),
        "cache_hits": {"trace": hit},
        "compute_seconds": round(time.monotonic() - started, 6),
    }


def _count_artifact_hits(tele, hits: Dict[str, bool]) -> None:
    """Book per-stage artifact-cache outcomes into the registry."""
    served = sum(1 for hit in hits.values() if hit)
    tele.add("campaign.artifact_hits", served)
    tele.add("campaign.artifact_misses", len(hits) - served)


def execute_job(
    job: Job,
    store_root: Union[str, Path],
    *,
    fields_fn: Optional[Any] = None,
) -> Dict[str, Any]:
    """Worker body for one grid point.

    Consults the artifact store stage by stage; a fully cached point
    returns without touching the tracer, engine or simulator at all.
    Raises on unrecoverable input problems (bad rule file, invalid
    config) — the scheduler turns that into retry-then-degrade.

    ``fields_fn`` optionally replaces :func:`simulation_fields` at the
    simulate stage — e.g. the campaign service injects its chunk-parallel
    sharded simulation here.  Any substitute must produce *identical*
    fields (the stored artifact must not depend on the route).
    """
    tele = get_telemetry()
    with tele.span("campaign.job", cat="campaign", job=job.job_id):
        payload, hits = _execute_job(job, store_root, fields_fn=fields_fn)
    _count_artifact_hits(tele, hits)
    return payload


def _execute_job(
    job: Job,
    store_root: Union[str, Path],
    *,
    fields_fn: Optional[Any] = None,
) -> Tuple[Dict[str, Any], Dict[str, bool]]:
    """:func:`execute_job` body; returns (payload, per-stage cache hits)."""
    if fields_fn is None:
        fields_fn = simulation_fields
    tele = get_telemetry()
    store = ArtifactStore(store_root)
    started = time.monotonic()
    tkey = trace_key(job.kernel, job.length)
    rule_text = resolve_rule_text(job.rule, job.length)
    if rule_text is None:
        input_key = tkey
    else:
        input_key = transform_key(tkey, rule_text)
    skey = simulation_key(input_key, job)

    hits: Dict[str, bool] = {}
    with tele.span("campaign.stage.lookup", cat="campaign"):
        cached = store.get_json(skey)
    if cached is not None:
        hits["simulation"] = True
        cached = dict(cached)
        cached["cache_hits"] = hits
        cached["compute_seconds"] = round(time.monotonic() - started, 6)
        return cached, hits
    hits["simulation"] = False

    with tele.span("campaign.stage.trace", cat="campaign"):
        trace, trace_hit = _materialise_trace(store, job.kernel, job.length)
    hits["trace"] = trace_hit

    if tracestore_eligible(job, rule_text):
        # Incremental route: transform + simulate through the trace
        # commit store, reusing chunks/snapshots earlier sweeps left
        # behind.  The stored payload is field-identical to the classic
        # route below, so artifacts cannot tell the routes apart.
        from repro.tracestore.campaign import (
            incremental_job_fields,
            tracestore_root_for,
        )

        with tele.span("campaign.stage.tracestore", cat="campaign"):
            fields, out_records = incremental_job_fields(
                tracestore_root_for(store_root),
                trace,
                tkey,
                job.rule,
                rule_text,
                job.cache.to_config(),
                job.attribution,
            )
            payload = {
                "kind": "simulation",
                "simulation_key": skey,
                "records": out_records,
                "transformed_records": out_records,
                "verified": False,
            }
            payload.update(fields)
            store.put_json(skey, payload)
        payload = dict(payload)
        payload["cache_hits"] = hits
        payload["compute_seconds"] = round(time.monotonic() - started, 6)
        return payload, hits

    transformed_records = None
    verified = False
    if rule_text is not None:
        with tele.span("campaign.stage.transform", cat="campaign"):
            cached_trace = store.get_trace(input_key)
            hits["transform"] = cached_trace is not None
            if cached_trace is None:
                engine = TransformEngine(parse_rules(rule_text))
                result = engine.transform(trace)
                cached_trace = result.trace
                if job.verify:
                    _verify_transform(
                        trace, cached_trace, rule_text, result.allocations
                    )
                    verified = True
                store.put_trace(input_key, cached_trace)
            elif job.verify:
                # Cached transform: the engine's allocation map is gone,
                # but the oracle reconstructs it from the rules on its own.
                _verify_transform(trace, cached_trace, rule_text, None)
                verified = True
            trace = cached_trace
            transformed_records = len(trace)

    payload: Dict[str, Any] = {
        "kind": "simulation",
        "simulation_key": skey,
        "records": len(trace),
        "transformed_records": transformed_records,
        "verified": verified,
    }
    with tele.span("campaign.stage.simulate", cat="campaign"):
        payload.update(
            fields_fn(trace, job.cache.to_config(), job.attribution)
        )
        store.put_json(skey, payload)
    payload = dict(payload)
    payload["cache_hits"] = hits
    payload["compute_seconds"] = round(time.monotonic() - started, 6)
    return payload, hits


# -- batched jobs -------------------------------------------------------------


@dataclass(frozen=True)
class BatchJob:
    """Several grid points sharing one input trace, run as one pass.

    Members agree on everything but the cache geometry (same kernel,
    length, rule, attribution, verify flag), so the trace/transform
    stages and the per-record decode run once and the batched kernel
    answers every geometry together.  Each member still stores its own
    simulation artifact under its own key and appears in the manifest
    as its own ``job_done`` row — resume, reports and the artifact
    store cannot tell the routes apart.
    """

    members: Tuple[Job, ...]
    #: records per chunk streamed through the batched kernel
    chunk: int = 65536

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a BatchJob needs >= 2 member jobs")
        head = self.members[0]
        for job in self.members[1:]:
            if (job.kernel, job.length, job.rule, job.attribution, job.verify) != (
                head.kernel,
                head.length,
                head.rule,
                head.attribution,
                head.verify,
            ):
                raise ValueError(
                    f"batch member {job.job_id!r} does not share "
                    f"{head.job_id!r}'s trace identity"
                )

    @property
    def job_id(self) -> str:
        """Stable id for the batch itself (manifest ``job_start`` rows)."""
        head = self.members[0]
        return (
            f"batch/{head.kernel}-L{head.length}/{head.rule}"
            f"/{head.attribution}[{len(self.members)}]"
        )

    @property
    def member_ids(self) -> Tuple[str, ...]:
        return tuple(job.job_id for job in self.members)


def group_batch_jobs(
    jobs: List[Job], *, max_configs: int = 64, chunk: int = 65536
) -> List[Union[Job, "BatchJob"]]:
    """Fold batchable grid points into :class:`BatchJob` groups.

    Jobs group by shared trace identity ``(kernel, length, rule,
    attribution, verify)`` when their cache geometry is batch-eligible;
    groups larger than ``max_configs`` split, and singletons or
    ineligible geometries (round-robin, PLRU, fully associative) pass
    through unchanged.  Output order preserves each job's first
    appearance, so manifests stay readable.
    """
    from repro.simbatch.plan import batch_eligible

    groups: Dict[Tuple[str, int, str, str, bool], List[Job]] = {}
    ordered: List[Union[Job, Tuple[str, int, str, str, bool]]] = []
    for job in jobs:
        if not batch_eligible(job.cache.to_config()):
            ordered.append(job)
            continue
        key = (job.kernel, job.length, job.rule, job.attribution, job.verify)
        if key not in groups:
            groups[key] = []
            ordered.append(key)
        groups[key].append(job)
    out: List[Union[Job, BatchJob]] = []
    for item in ordered:
        if isinstance(item, Job):
            out.append(item)
            continue
        members = groups[item]
        for start in range(0, len(members), max_configs):
            split = members[start : start + max_configs]
            if len(split) == 1:
                out.append(split[0])
            else:
                out.append(BatchJob(members=tuple(split), chunk=chunk))
    return out


def execute_batch_job(
    batch: BatchJob, store_root: Union[str, Path]
) -> Dict[str, Any]:
    """Worker body for one batched grid-point group.

    Per-member cache lookups run first — fully cached members cost one
    JSON read each, exactly like :func:`execute_job` — then the shared
    trace/transform stages materialise once and a single batched kernel
    pass produces every remaining member's payload.  Each payload is
    stored under the member's own simulation key, field-identical to
    what the per-config route stores (cross-validated in the simbatch
    test suite).
    """
    tele = get_telemetry()
    store = ArtifactStore(store_root)
    started = time.monotonic()
    head = batch.members[0]
    with tele.span(
        "campaign.batch-job",
        cat="campaign",
        job=batch.job_id,
        configs=len(batch.members),
    ):
        tkey = trace_key(head.kernel, head.length)
        rule_text = resolve_rule_text(head.rule, head.length)
        input_key = tkey if rule_text is None else transform_key(tkey, rule_text)

        member_payloads: Dict[str, Dict[str, Any]] = {}
        pending: List[Job] = []
        hits: Dict[str, bool] = {}
        for job in batch.members:
            skey = simulation_key(input_key, job)
            cached = store.get_json(skey)
            if cached is not None:
                payload = dict(cached)
                payload["cache_hits"] = {"simulation": True}
                member_payloads[job.job_id] = payload
            else:
                pending.append(job)
        hits["simulation"] = not pending

        if pending:
            with tele.span("campaign.stage.trace", cat="campaign"):
                trace, trace_hit = _materialise_trace(
                    store, head.kernel, head.length
                )
            hits["trace"] = trace_hit
            transformed_records = None
            verified = False
            if rule_text is not None:
                with tele.span("campaign.stage.transform", cat="campaign"):
                    cached_trace = store.get_trace(input_key)
                    hits["transform"] = cached_trace is not None
                    if cached_trace is None:
                        engine = TransformEngine(parse_rules(rule_text))
                        result = engine.transform(trace)
                        cached_trace = result.trace
                        if head.verify:
                            _verify_transform(
                                trace,
                                cached_trace,
                                rule_text,
                                result.allocations,
                            )
                            verified = True
                        store.put_trace(input_key, cached_trace)
                    elif head.verify:
                        _verify_transform(trace, cached_trace, rule_text, None)
                        verified = True
                    trace = cached_trace
                    transformed_records = len(trace)

            from repro.simbatch.runner import batch_simulation_fields

            with tele.span("campaign.stage.simulate-batch", cat="campaign"):
                fields = batch_simulation_fields(
                    trace,
                    [job.cache.to_config() for job in pending],
                    head.attribution,
                    chunk_records=batch.chunk,
                )
                for job, sim_fields in zip(pending, fields):
                    skey = simulation_key(input_key, job)
                    payload: Dict[str, Any] = {
                        "kind": "simulation",
                        "simulation_key": skey,
                        "records": len(trace),
                        "transformed_records": transformed_records,
                        "verified": verified,
                    }
                    payload.update(sim_fields)
                    store.put_json(skey, payload)
                    payload = dict(payload)
                    payload["cache_hits"] = dict(hits)
                    member_payloads[job.job_id] = payload
    _count_artifact_hits(tele, hits)
    elapsed = round(time.monotonic() - started, 6)
    for payload in member_payloads.values():
        payload["compute_seconds"] = elapsed
    return {
        "kind": "batch",
        "job_id": batch.job_id,
        "configs": len(batch.members),
        "members": {
            job.job_id: member_payloads[job.job_id] for job in batch.members
        },
        "compute_seconds": elapsed,
    }


def execute_task(
    task: Union[TraceTask, Job, BatchJob],
    store_root: Union[str, Path],
    *,
    fields_fn: Optional[Any] = None,
) -> Dict[str, Any]:
    """Dispatch any task kind (the single entry point workers import).

    ``fields_fn`` is forwarded to :func:`execute_job` for plain grid
    points (trace tasks have no simulate stage and batch jobs use the
    batched kernel, which has its own chunking already).
    """
    if isinstance(task, TraceTask):
        return execute_trace_task(task, store_root)
    if isinstance(task, BatchJob):
        return execute_batch_job(task, store_root)
    return execute_job(task, store_root, fields_fn=fields_fn)
