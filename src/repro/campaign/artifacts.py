"""Content-addressed artifact store for campaign stages.

Every expensive pipeline stage (trace generation, transformation,
simulation) writes its output under a SHA-256 key derived from the
stage's *complete* input description — program identity, rule text,
cache-config tuple.  Re-running a campaign therefore costs only the
points whose inputs changed; ``--resume`` and iterative spec editing are
incremental for free.

Layout on disk (two-level fan-out keeps directories small at scale)::

    <root>/ab/abcdef....trace.tdst    # binary trace artifact
    <root>/ab/abcdef....json          # simulation-result artifact

Writes are atomic (temp file + ``os.replace``) so parallel workers
racing to produce the same artifact cannot leave a torn file; the loser
of the race simply overwrites with identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

from repro.obsv.atomic import atomic_write
from repro.trace.binformat import load_binary, save_binary
from repro.trace.stream import Trace

#: Artifact filename suffixes by kind.
TRACE_SUFFIX = ".trace.tdst"
JSON_SUFFIX = ".json"

#: In-flight/stale temporary entries: the legacy hand-rolled writers used
#: ``<name>.tmp<pid>`` and :func:`atomic_write` uses ``<name>.<rand>.tmp``.
_TMP_PATTERN = re.compile(r"\.tmp\d*$")

#: Temp files older than this are presumed abandoned by a crashed worker
#: and are swept on store open; younger ones may be a live sibling's
#: in-flight write and are left alone.
STALE_TMP_AGE_S = 60.0


def _is_tmp_entry(name: str) -> bool:
    """True for temporary-write leftovers of either naming scheme."""
    return _TMP_PATTERN.search(name) is not None


def content_key(*parts: Union[str, int, bytes]) -> str:
    """SHA-256 hex digest of the canonical join of ``parts``.

    Parts are length-prefixed before hashing so ``("ab", "c")`` and
    ``("a", "bc")`` cannot collide.
    """
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            blob = part
        else:
            blob = str(part).encode("utf-8")
        digest.update(f"{len(blob)}:".encode("ascii"))
        digest.update(blob)
    return digest.hexdigest()


class ArtifactStore:
    """Disk-backed, content-addressed cache of stage outputs."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sweep_stale_tmp()

    # -- addressing ----------------------------------------------------------

    def path_for(self, key: str, suffix: str) -> Path:
        """Where an artifact with this key/kind lives (may not exist)."""
        return self.root / key[:2] / f"{key}{suffix}"

    def has_trace(self, key: str) -> bool:
        """True when a trace artifact exists for ``key``."""
        return self.path_for(key, TRACE_SUFFIX).exists()

    def has_json(self, key: str) -> bool:
        """True when a JSON artifact exists for ``key``."""
        return self.path_for(key, JSON_SUFFIX).exists()

    # -- traces --------------------------------------------------------------

    def put_trace(self, key: str, trace: Trace) -> Path:
        """Store a trace artifact (binary format, atomic replace).

        ``save_binary`` already writes through the shared
        :func:`~repro.obsv.atomic.atomic_write` helper (temp file, fsync,
        rename), so the artifact appears under its final name complete
        or not at all.
        """
        target = self.path_for(key, TRACE_SUFFIX)
        save_binary(trace, target)
        return target

    def get_trace(self, key: str) -> Optional[Trace]:
        """Load a trace artifact, or ``None`` on a cache miss."""
        target = self.path_for(key, TRACE_SUFFIX)
        if not target.exists():
            return None
        return load_binary(target)

    # -- JSON results --------------------------------------------------------

    def put_json(self, key: str, payload: Dict[str, Any]) -> Path:
        """Store a JSON artifact (atomic replace, fsync'd)."""
        target = self.path_for(key, JSON_SUFFIX)
        with atomic_write(target) as handle:
            handle.write(
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
            )
        return target

    def get_json(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a JSON artifact, or ``None`` on a cache miss."""
        target = self.path_for(key, JSON_SUFFIX)
        if not target.exists():
            return None
        return json.loads(target.read_text(encoding="utf-8"))

    # -- maintenance ---------------------------------------------------------

    def keys(self) -> Iterable[str]:
        """All distinct artifact keys currently stored.

        Temporary-write leftovers (``.tmp*``) are not artifacts — a
        crashed worker's abandoned temp file must not masquerade as a
        completed stage output.
        """
        seen = set()
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if _is_tmp_entry(entry.name):
                    continue
                key = entry.name.split(".", 1)[0]
                if key not in seen:
                    seen.add(key)
                    yield key

    def sweep_stale_tmp(self, max_age_s: float = STALE_TMP_AGE_S) -> int:
        """Delete abandoned ``.tmp*`` files older than ``max_age_s``.

        Runs on store open.  The age guard keeps a freshly-opened store
        from deleting a parallel sibling worker's in-flight write.
        Returns the number of files removed.
        """
        cutoff = time.time() - max_age_s
        removed = 0
        for entry in self.root.rglob("*"):
            try:
                if (
                    entry.is_file()
                    and _is_tmp_entry(entry.name)
                    and entry.stat().st_mtime < cutoff
                ):
                    entry.unlink()
                    removed += 1
            except OSError:  # pragma: no cover - raced with another sweep
                continue
        return removed

    def size_bytes(self) -> int:
        """Total bytes of all stored artifacts (temp files excluded)."""
        return sum(
            f.stat().st_size
            for f in self.root.rglob("*")
            if f.is_file() and not _is_tmp_entry(f.name)
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArtifactStore {self.root} ({len(self)} artifacts)>"
