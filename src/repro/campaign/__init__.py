"""Experiment-campaign orchestration: the whole paper grid in one run.

The one-shot pipeline (trace -> transform -> simulate -> report) scales
to full studies through this subpackage:

- :mod:`repro.campaign.spec` — declarative :class:`CampaignSpec` (TOML
  or dict): a grid of kernels x rules x cache geometries x attribution;
- :mod:`repro.campaign.jobs` — grid expansion with shared-stage
  deduplication and the idempotent per-job pipeline workers execute;
- :mod:`repro.campaign.artifacts` — content-addressed
  :class:`ArtifactStore` (SHA-256 of kernel + rule text + config) that
  makes re-runs and ``--resume`` incremental;
- :mod:`repro.campaign.manifest` — append-only JSONL
  :class:`RunManifest` of every job start/retry/failure/completion;
- :mod:`repro.campaign.scheduler` — the parallel :class:`Scheduler`
  with per-job timeouts, bounded retry with exponential backoff, and
  graceful degradation (a failed point never aborts the grid).

Quick start::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec.load("paper.toml")     # or paper_figures_spec()
    result = run_campaign(spec, "campaign_out", workers=4)
    print(result.summary())
"""

from repro.campaign.artifacts import ArtifactStore, content_key
from repro.campaign.jobs import (
    BatchJob,
    Job,
    TraceTask,
    execute_batch_job,
    execute_job,
    execute_task,
    execute_trace_task,
    expand_jobs,
    group_batch_jobs,
    resolve_rule_text,
    simulation_key,
    trace_key,
    transform_key,
)
from repro.campaign.manifest import RunManifest
from repro.campaign.scheduler import (
    CampaignResult,
    JobOutcome,
    Scheduler,
    run_campaign,
)
from repro.campaign.service import (
    CampaignService,
    ServiceClient,
    ServiceConfig,
    sharded_simulation_fields,
)
from repro.campaign.spec import (
    BatchOptions,
    CacheSpec,
    CampaignSpec,
    GridEntry,
    ServiceOptions,
    paper_figures_spec,
)

__all__ = [
    "ArtifactStore",
    "BatchJob",
    "BatchOptions",
    "CacheSpec",
    "CampaignResult",
    "CampaignService",
    "CampaignSpec",
    "GridEntry",
    "Job",
    "JobOutcome",
    "RunManifest",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceOptions",
    "TraceTask",
    "content_key",
    "sharded_simulation_fields",
    "execute_batch_job",
    "execute_job",
    "execute_task",
    "execute_trace_task",
    "expand_jobs",
    "group_batch_jobs",
    "paper_figures_spec",
    "resolve_rule_text",
    "run_campaign",
    "simulation_key",
    "trace_key",
    "transform_key",
]
