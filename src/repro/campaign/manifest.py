"""Run manifests: append-only JSONL observability for campaign runs.

Every scheduler event — job start, completion, retry, terminal failure,
resume-skip — is appended as one JSON object per line, flushed
immediately, so a crashed or killed run leaves a readable record up to
the moment of death.  The manifest doubles as the ``--resume`` source
(completed job ids are skipped) and the ``--report`` source (the summary
table renders from ``job-done`` rows without re-running anything).
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

#: Event names written by the scheduler.
EVENT_CAMPAIGN_START = "campaign-start"
EVENT_CAMPAIGN_END = "campaign-end"
EVENT_JOB_START = "job-start"
EVENT_JOB_DONE = "job-done"
EVENT_JOB_RETRY = "job-retry"
EVENT_JOB_FAILED = "job-failed"
EVENT_JOB_SKIPPED = "job-skipped"
#: Merged campaign telemetry (counters/gauges), written when profiling.
EVENT_TELEMETRY = "telemetry"


class RunManifest:
    """Append-only JSONL event log for one campaign directory."""

    def __init__(
        self, path: Union[str, Path], *, append: bool = False
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if append else "w"
        # Resuming after a crash can find a torn final line (no trailing
        # newline).  Appending straight after it would glue the first new
        # row onto the fragment, losing both; start on a fresh line.
        needs_newline = False
        if append and self.path.exists() and self.path.stat().st_size:
            with open(self.path, "rb") as peek:
                peek.seek(-1, 2)
                needs_newline = peek.read(1) != b"\n"
        self._handle = open(self.path, mode, encoding="utf-8")
        if needs_newline:
            self._handle.write("\n")
            self._handle.flush()

    # -- writing -------------------------------------------------------------

    def record(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event row (flushed immediately) and return it."""
        row = {"ts": round(time.time(), 3), "event": event, **fields}
        self._handle.write(json.dumps(row, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        return row

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunManifest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading -------------------------------------------------------------

    @staticmethod
    def read(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """All event rows of an existing manifest, in write order.

        Tolerates a torn final line (a worker hard-killed mid-append
        leaves incomplete JSON at EOF): the partial row is dropped with a
        warning instead of raising, so ``--resume`` still works after a
        crash.  A malformed row *before* EOF means real corruption, not a
        crash artifact — it is also dropped, but warned about separately.
        """
        rows: List[Dict[str, Any]] = []
        text = Path(path).read_text(encoding="utf-8")
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                rows.append(json.loads(stripped))
            except json.JSONDecodeError:
                if lineno == len(lines) and not text.endswith("\n"):
                    warnings.warn(
                        f"{path}: dropping torn final manifest line "
                        f"{lineno} (writer crashed mid-append)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                else:
                    warnings.warn(
                        f"{path}: dropping unparseable manifest line "
                        f"{lineno}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                continue
        return rows

    @staticmethod
    def completed_jobs(
        rows: List[Dict[str, Any]]
    ) -> Dict[str, Dict[str, Any]]:
        """``job_id -> last job-done row`` across all rows (for resume)."""
        done: Dict[str, Dict[str, Any]] = {}
        for row in rows:
            if row.get("event") == EVENT_JOB_DONE and "job_id" in row:
                done[row["job_id"]] = row
        return done

    @staticmethod
    def result_rows(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Terminal per-job rows (done, failed, skipped), in event order."""
        terminal = {EVENT_JOB_DONE, EVENT_JOB_FAILED, EVENT_JOB_SKIPPED}
        latest: Dict[str, Dict[str, Any]] = {}
        for row in rows:
            if row.get("event") in terminal and "job_id" in row:
                latest[row["job_id"]] = row
        return list(latest.values())
