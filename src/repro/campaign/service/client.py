"""Service client: resilient request/response over the NDJSON protocol.

The client owns the retry half of the protocol's idempotency contract:
every request carries a fresh ``seq``; when no reply with a matching
``re`` arrives within the deadline the client resends the *same* frame
with the *same* ``seq``.  The server answers idempotently (submits
dedupe by job id, queries recompute), so at-least-once requests are
safe, and any late or duplicated reply is discarded here because its
``re`` no longer matches a pending seq.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.campaign.service.protocol import (
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    ProtocolError,
    read_frame,
    write_frame,
)


class ServiceClient:
    """One connection to a campaign service.

    ``timeout`` is the per-request reply deadline and ``retries`` the
    number of same-seq resends before giving up.  ``writer_wrap``
    optionally wraps the connection's stream writer (the
    fault-injection harness's ``FlakySocket`` plugs in here to drop,
    duplicate or delay outgoing frames).
    """

    def __init__(
        self,
        socket_path: str,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        writer_wrap: Optional[Any] = None,
    ) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self.retries = retries
        self._writer_wrap = writer_wrap
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._seq = itertools.count(1)
        #: lifetime accounting (read by tests and `tdst status -v`)
        self.resends = 0
        self.stale_replies = 0

    # -- connection -----------------------------------------------------------

    async def connect(self) -> Dict[str, Any]:
        """Open the socket and shake hands; returns the welcome frame."""
        reader, writer = await asyncio.open_unix_connection(
            self.socket_path, limit=MAX_FRAME_BYTES + 2
        )
        self._reader = reader
        self._writer = (
            self._writer_wrap(writer) if self._writer_wrap is not None else writer
        )
        welcome = await self._request(
            {"type": "hello", "role": "client", "proto": PROTO_VERSION}
        )
        if welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
        if welcome.get("proto") != PROTO_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: server {welcome.get('proto')!r}, "
                f"client {PROTO_VERSION}"
            )
        return welcome

    async def close(self) -> None:
        """Close the connection (the server side just sees EOF)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    # -- request machinery ----------------------------------------------------

    async def _request(
        self, frame: Dict[str, Any], *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one frame and return its reply (same-seq resend on timeout)."""
        if self._reader is None or self._writer is None:
            raise ProtocolError("client is not connected")
        deadline = self.timeout if timeout is None else timeout
        frame = dict(frame)
        frame["seq"] = next(self._seq)
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.resends += 1
            try:
                await write_frame(self._writer, frame)
                reply = await self._read_reply(frame["seq"], deadline)
            except (asyncio.TimeoutError, TimeoutError) as exc:
                last_error = exc
                continue
            if reply.get("type") == "error":
                raise ProtocolError(str(reply.get("message")))
            return reply
        raise ProtocolError(
            f"no reply to {frame['type']} (seq {frame['seq']}) after "
            f"{self.retries + 1} attempt(s): {last_error}"
        ) from last_error

    async def _read_reply(self, seq: int, deadline: float) -> Dict[str, Any]:
        """Read frames until one matches ``seq``; discard stale replies."""
        loop = asyncio.get_running_loop()
        end = loop.time() + deadline
        while True:
            remaining = end - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError(f"reply deadline ({deadline}s) exceeded")
            reply = await asyncio.wait_for(
                read_frame(self._reader), timeout=remaining
            )
            if reply is None:
                raise ProtocolError("server closed the connection")
            if reply.get("re") == seq:
                return reply
            # A reply to an earlier (resent or abandoned) request, or a
            # duplicated frame: count and drop it.
            self.stale_replies += 1

    # -- verbs ----------------------------------------------------------------

    async def submit(
        self, job_id: str, job: Dict[str, Any], *, keep: bool = True
    ) -> Dict[str, Any]:
        """Submit one job; returns the ack (``dup`` marks resubmission)."""
        return await self._request(
            {"type": "submit", "job_id": job_id, "job": job, "keep": keep}
        )

    async def submit_many(
        self,
        jobs: Iterable[Tuple[str, Dict[str, Any]]],
        *,
        keep: bool = True,
        window: int = 512,
    ) -> List[Dict[str, Any]]:
        """Submit many jobs with windowed pipelining; returns all acks.

        Up to ``window`` submit frames are written before their acks
        are collected, which amortises round trips without defeating
        the server's backpressure (its bounded queue still stalls the
        reads, and therefore this coroutine, at capacity).
        """
        acks: List[Dict[str, Any]] = []
        batch: List[Tuple[str, Dict[str, Any]]] = []
        for pair in jobs:
            batch.append(pair)
            if len(batch) >= window:
                acks.extend(await self._submit_window(batch, keep))
                batch = []
        if batch:
            acks.extend(await self._submit_window(batch, keep))
        return acks

    async def _submit_window(
        self, batch: List[Tuple[str, Dict[str, Any]]], keep: bool
    ) -> List[Dict[str, Any]]:
        """One pipelined window: write every frame, then collect acks."""
        if self._reader is None or self._writer is None:
            raise ProtocolError("client is not connected")
        pending: Dict[int, int] = {}
        frames: List[Dict[str, Any]] = []
        for index, (job_id, job) in enumerate(batch):
            frame = {
                "type": "submit",
                "job_id": job_id,
                "job": job,
                "keep": keep,
                "seq": next(self._seq),
            }
            frames.append(frame)
            pending[frame["seq"]] = index
        acks: List[Optional[Dict[str, Any]]] = [None] * len(batch)
        for attempt in range(self.retries + 1):
            if attempt:
                self.resends += len(pending)
            for frame in frames:
                if frame["seq"] in pending:
                    await write_frame(self._writer, frame)
            loop = asyncio.get_running_loop()
            end = loop.time() + self.timeout
            try:
                while pending:
                    remaining = end - loop.time()
                    if remaining <= 0:
                        raise asyncio.TimeoutError
                    reply = await asyncio.wait_for(
                        read_frame(self._reader), timeout=remaining
                    )
                    if reply is None:
                        raise ProtocolError("server closed the connection")
                    index = pending.pop(reply.get("re"), None)
                    if index is None:
                        self.stale_replies += 1
                        continue
                    if reply.get("type") == "error":
                        raise ProtocolError(str(reply.get("message")))
                    acks[index] = reply
            except (asyncio.TimeoutError, TimeoutError):
                continue
            break
        if pending:
            raise ProtocolError(
                f"{len(pending)} submit(s) unacknowledged after "
                f"{self.retries + 1} attempt(s)"
            )
        return [ack for ack in acks if ack is not None]

    async def poll(
        self, job_id: str, *, wait: bool = False, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Query one job; ``wait=True`` blocks until it is terminal."""
        return await self._request(
            {"type": "poll", "job_id": job_id, "wait": wait}, timeout=timeout
        )

    async def result(
        self, job_id: str, *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block until a job is terminal and return its result frame."""
        return await self.poll(job_id, wait=True, timeout=timeout)

    async def status(self) -> Dict[str, Any]:
        """Service-wide queue/job/counter snapshot."""
        return await self._request({"type": "status"})

    async def drain(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until every submitted job is terminal; returns counters."""
        return await self._request({"type": "drain"}, timeout=timeout)

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the service to stop after replying."""
        return await self._request({"type": "shutdown"})
