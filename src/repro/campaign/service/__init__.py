"""Campaign service: asyncio job queue with work-stealing shard workers.

The service turns the one-shot campaign scheduler into a long-lived
local endpoint: jobs arrive as plain-JSON descriptions over a
newline-delimited-JSON unix-socket protocol, land on a bounded
work-stealing shard queue, and execute through the exact same job
bodies the scheduler runs — so a service-run campaign produces
byte-identical artifacts.  Large simulate stages additionally split
into trace chunks simulated in parallel and merged through the shard
merge algebra (:mod:`repro.campaign.service.merge`), which is proven
bit-identical to whole-trace simulation.

Layers (bottom up): :mod:`~repro.campaign.service.merge` (chunk-merge
algebra), :mod:`~repro.campaign.service.protocol` (wire frames),
:mod:`~repro.campaign.service.queue` (work-stealing shard queue),
:mod:`~repro.campaign.service.wire` (task <-> JSON codec),
:mod:`~repro.campaign.service.server` and
:mod:`~repro.campaign.service.client`.
"""

from repro.campaign.service.client import ServiceClient
from repro.campaign.service.merge import (
    ResidencyEffect,
    ShardStats,
    compose_effects,
    identity_effect,
    merge_stats,
    sharded_simulation_fields,
)
from repro.campaign.service.protocol import (
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    ProtocolError,
)
from repro.campaign.service.queue import QueueClosed, ShardQueue
from repro.campaign.service.server import (
    NO_SERVICE_ENV,
    CampaignService,
    ServiceConfig,
    serve_forever,
    service_running,
    service_socket_path,
)
from repro.campaign.service.wire import (
    execute_wire_job,
    task_from_wire,
    task_to_wire,
)

__all__ = [
    "CampaignService",
    "MAX_FRAME_BYTES",
    "NO_SERVICE_ENV",
    "PROTO_VERSION",
    "ProtocolError",
    "QueueClosed",
    "ResidencyEffect",
    "ServiceClient",
    "ServiceConfig",
    "ShardQueue",
    "ShardStats",
    "compose_effects",
    "execute_wire_job",
    "identity_effect",
    "merge_stats",
    "serve_forever",
    "service_running",
    "service_socket_path",
    "sharded_simulation_fields",
    "task_from_wire",
    "task_to_wire",
]
