"""Wire representation of service jobs (plain-JSON job descriptions).

The socket protocol carries *job descriptions*, never pickles: a remote
worker on another machine must be able to execute a job from nothing but
the frame and a shared artifact-store root.  Three kinds exist:

- ``campaign-task`` — one scheduler task (:class:`TraceTask`,
  :class:`Job` or :class:`BatchJob`) flattened to primitives; executing
  it runs the exact same :func:`repro.campaign.jobs.execute_task` body
  the one-shot scheduler runs, so artifacts are byte-identical by
  construction.
- ``simulate`` — an ad-hoc simulation of an on-disk trace file against
  one cache geometry (the ``tdst submit`` surface).
- ``noop`` — a no-work job used by the soak suite and fault-injection
  harness to exercise queueing, stealing and the protocol at volume.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Union

from repro.campaign.jobs import BatchJob, Job, TraceTask, execute_task
from repro.campaign.service.protocol import ProtocolError
from repro.campaign.spec import CacheSpec

#: Job kinds the service understands.
JOB_KINDS = ("campaign-task", "simulate", "noop")


def task_to_wire(task: Union[TraceTask, Job, BatchJob]) -> Dict[str, Any]:
    """Flatten one scheduler task into a JSON-safe job description."""
    if isinstance(task, TraceTask):
        body: Dict[str, Any] = {"task": "trace", **asdict(task)}
    elif isinstance(task, Job):
        body = {"task": "job", **asdict(task)}
    elif isinstance(task, BatchJob):
        body = {
            "task": "batch",
            "chunk": task.chunk,
            "members": [asdict(m) for m in task.members],
        }
    else:
        raise ProtocolError(f"unknown task kind {type(task).__name__}")
    return {"kind": "campaign-task", **body}


def _job_from(data: Dict[str, Any]) -> Job:
    """Rebuild one grid-point Job from its flattened form."""
    return Job(
        kernel=str(data["kernel"]),
        length=int(data["length"]),
        rule=str(data["rule"]),
        cache=CacheSpec(**data["cache"]),
        attribution=str(data.get("attribution", "base")),
        verify=bool(data.get("verify", False)),
    )


def task_from_wire(
    job: Dict[str, Any]
) -> Union[TraceTask, Job, BatchJob]:
    """Rebuild a scheduler task from a ``campaign-task`` description."""
    try:
        task = job["task"]
        if task == "trace":
            return TraceTask(kernel=str(job["kernel"]), length=int(job["length"]))
        if task == "job":
            return _job_from(job)
        if task == "batch":
            return BatchJob(
                members=tuple(_job_from(m) for m in job["members"]),
                chunk=int(job.get("chunk", 65536)),
            )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed campaign-task job: {exc}") from exc
    raise ProtocolError(f"unknown campaign task {job.get('task')!r}")


def execute_wire_job(
    job: Dict[str, Any], store_root: str, *, fields_fn: Any = None
) -> Dict[str, Any]:
    """Execute one wire job description; returns its JSON payload.

    This is the default *runner* the service's shard workers call (via
    their executor).  Raises on malformed descriptions and on job
    failures — the worker loop owns retry policy.  ``fields_fn`` is
    forwarded to :func:`repro.campaign.jobs.execute_task` so the server
    can substitute chunk-parallel simulation for the simulate stage.
    """
    kind = job.get("kind")
    if kind == "noop":
        # Touch nothing: the payload is the (tiny) echo the soak suite
        # checks for loss/duplication accounting.
        return {"kind": "noop", "echo": job.get("echo")}
    if kind == "campaign-task":
        return execute_task(task_from_wire(job), store_root, fields_fn=fields_fn)
    if kind == "simulate":
        from repro.campaign.jobs import simulation_fields
        from repro.trace.stream import Trace

        trace = Trace.load_any(str(job["trace"]))
        cache = CacheSpec(**job.get("cache", {}))
        fields = simulation_fields(
            trace,
            cache.to_config(),
            str(job.get("attribution", "base")),
        )
        return {"kind": "simulation", "records": len(trace), **fields}
    raise ProtocolError(
        f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
    )
