"""The shard-merge algebra: chunk-parallel simulation, exact totals.

The campaign service splits one large trace into contiguous *shards*
(chunk ranges), simulates each shard on a different worker, and merges
per-shard statistics into totals **bit-identical** to a single
whole-trace pass of :func:`repro.cache.fastsim.fast_trace_counts`.  Two
algebraic structures make that possible:

**Residency effects** solve the sequential dependency.  A set-associative
LRU cache's hit/miss decisions depend on the residency the preceding
accesses left behind, so shards cannot be simulated independently from
cold state.  But the *state transformation* a shard applies is tiny and
composable: after a shard runs, each set holds that shard's distinct
blocks in most-recently-used order, and any ways the shard did not fill
pass the incoming residency through.  :class:`ResidencyEffect` captures
exactly that (an ``(n_sets, ways)`` matrix, MRU-first, ``-1`` = pass
through) and :func:`compose_effects` is associative with
:func:`identity_effect` as identity — so boundary states for all shards
come from one cheap sequential prefix-scan over per-shard effects, each
of which was computed *in parallel* from the shard alone.

**Shard statistics** form a commutative monoid.  Once every shard is
simulated against its true incoming residency, its counts are final;
:func:`merge_stats` combines them with plain sums (scalars, per-set
arrays, per-variable dicts) and one set union (distinct blocks, from
which the merged compulsory-miss count is rebuilt — a block's first
touch is compulsory globally, not per shard).  Merging is associative,
commutative, and lossless, mirroring
:func:`repro.obsv.telemetry.merge_snapshots`; evictions and miss ratios
are *derived* at finalisation, never summed, because they are nonlinear
in the merged counts.

Both laws — ``merge == whole-trace`` over random splits, and the
monoid/composition properties — are pinned by the hypothesis suite in
``tests/campaign/test_shard_merge.py`` before the service trusts the
fast path.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.fastsim import (
    FastSimulator,
    _expand_blocks,
    _evictions_from,
    supports_fast_path,
)
from repro.cache.simulator import attribution_label
from repro.cache.stats import PerSetCounts
from repro.errors import CacheConfigError
from repro.trace.record import AccessType

__all__ = [
    "ResidencyEffect",
    "ShardStats",
    "compose_effects",
    "empty_stats",
    "finalize_fields",
    "identity_effect",
    "merge_stats",
    "shard_effect",
    "shard_ranges",
    "sharded_simulation_fields",
    "simulate_shard",
]


# -- residency effects --------------------------------------------------------


@dataclass(frozen=True)
class ResidencyEffect:
    """The residency transformation one shard applies to a cache.

    ``blocks`` is ``(n_sets, ways)`` int64, MRU-first; ``-1`` entries are
    *transparent*: they take whatever the incoming residency holds there
    after the shard's own distinct blocks are installed.  Because a
    shard's effect depends only on the shard (never on what ran before),
    effects for all shards are computable in parallel.
    """

    blocks: np.ndarray

    @property
    def n_sets(self) -> int:
        """Number of cache sets this effect spans."""
        return self.blocks.shape[0]

    @property
    def ways(self) -> int:
        """Associativity this effect was built for."""
        return self.blocks.shape[1]

    def __eq__(self, other: object) -> bool:
        """Structural equality (matrix equality)."""
        if not isinstance(other, ResidencyEffect):
            return NotImplemented
        return self.blocks.shape == other.blocks.shape and bool(
            np.array_equal(self.blocks, other.blocks)
        )

    def __hash__(self) -> int:  # pragma: no cover - dict keys unused
        """Hash over the matrix bytes (frozen dataclass contract)."""
        return hash(self.blocks.tobytes())


def identity_effect(config: CacheConfig) -> ResidencyEffect:
    """The do-nothing effect (every way transparent): compose identity."""
    return ResidencyEffect(
        blocks=np.full((config.n_sets, config.ways), -1, dtype=np.int64)
    )


def shard_effect(
    addrs: np.ndarray,
    sizes: Optional[np.ndarray],
    config: CacheConfig,
) -> ResidencyEffect:
    """The residency effect of one shard, computed from the shard alone.

    For every set, the shard's distinct blocks in most-recently-used
    order (capped at ``ways``); ways the shard leaves unfilled stay
    transparent.  One vectorized pass: per-``(set, block)`` last-touch
    positions, sorted most-recent-first within each set.
    """
    addrs = np.asarray(addrs, dtype=np.uint64)
    if sizes is None:
        sizes = np.ones(len(addrs), dtype=np.uint32)
    blocks, _ = _expand_blocks(addrs, sizes, config.block_size)
    out = np.full((config.n_sets, config.ways), -1, dtype=np.int64)
    if len(blocks) == 0:
        return ResidencyEffect(blocks=out)
    sets = (blocks & (config.n_sets - 1)).astype(np.int64)
    pos = np.arange(len(blocks), dtype=np.int64)
    # Last touch of each distinct (set, block): sort by (set, block, pos)
    # and keep the final entry of every (set, block) run.
    order = np.lexsort((pos, blocks, sets))
    s_sorted = sets[order]
    b_sorted = blocks[order]
    p_sorted = pos[order]
    last = np.empty(len(order), dtype=bool)
    last[-1] = True
    last[:-1] = (s_sorted[1:] != s_sorted[:-1]) | (b_sorted[1:] != b_sorted[:-1])
    u_sets = s_sorted[last]
    u_blocks = b_sorted[last]
    u_pos = p_sorted[last]
    # Within each set, order distinct blocks most-recent-first and keep
    # the top ``ways`` (everything deeper was already evicted).
    mru = np.lexsort((-u_pos, u_sets))
    m_sets = u_sets[mru]
    m_blocks = u_blocks[mru]
    head = np.empty(len(mru), dtype=bool)
    if len(mru):
        head[0] = True
        head[1:] = m_sets[1:] != m_sets[:-1]
    starts = np.flatnonzero(head)
    group_start = np.repeat(starts, np.diff(np.append(starts, len(mru))))
    rank = np.arange(len(mru), dtype=np.int64) - group_start
    keep = rank < config.ways
    out[m_sets[keep], rank[keep]] = m_blocks[keep]
    return ResidencyEffect(blocks=out)


def compose_effects(
    first: ResidencyEffect, then: ResidencyEffect
) -> ResidencyEffect:
    """The effect of running ``first``'s shard, then ``then``'s shard.

    Per set: ``then``'s blocks stay on top (they ran last), followed by
    ``first``'s blocks not shadowed by ``then``, truncated to ``ways``.
    Associative, with :func:`identity_effect` as two-sided identity —
    exactly the law the prefix scan in
    :func:`sharded_simulation_fields` relies on.
    """
    if first.blocks.shape != then.blocks.shape:
        raise CacheConfigError(
            f"cannot compose effects of shapes {first.blocks.shape} "
            f"and {then.blocks.shape}"
        )
    ways = then.ways
    # A first-shard block already present in then's row is shadowed
    # (it was re-touched later); drop it rather than duplicate it.
    shadowed = (
        (first.blocks[:, :, None] == then.blocks[:, None, :])
        & (first.blocks[:, :, None] != -1)
    ).any(axis=2)
    tail = np.where(shadowed, -1, first.blocks)
    cat = np.concatenate([then.blocks, tail], axis=1)
    # Compact each row's valid entries to the front, preserving order.
    order = np.argsort(cat == -1, axis=1, kind="stable")
    compacted = np.take_along_axis(cat, order, axis=1)
    return ResidencyEffect(blocks=np.ascontiguousarray(compacted[:, :ways]))


# -- shard statistics ---------------------------------------------------------


@dataclass(frozen=True)
class ShardStats:
    """Final statistics of one simulated shard (or a merge of several).

    All fields are *linear* in the trace except ``seen_blocks``, which
    merges by set union; derived quantities (evictions, compulsory
    misses, miss ratios) are computed at finalisation only.
    """

    #: block-level hit/miss events (one per touched cache block)
    block_hits: int
    block_misses: int
    #: CPU-access-level counts (an access hits iff all its blocks hit)
    demand_hits: int
    demand_accesses: int
    #: per-set block-level events, length ``n_sets``
    per_set_hits: np.ndarray
    per_set_misses: np.ndarray
    #: ``{attribution label: (block_hits, block_misses)}``
    per_variable: Dict[str, Tuple[int, int]]
    #: sorted distinct block numbers this shard touched
    seen_blocks: np.ndarray

    @property
    def demand_misses(self) -> int:
        """Accesses with at least one missing block."""
        return self.demand_accesses - self.demand_hits


def empty_stats(config: CacheConfig) -> ShardStats:
    """The monoid identity: zero counts over ``config``'s set space."""
    return ShardStats(
        block_hits=0,
        block_misses=0,
        demand_hits=0,
        demand_accesses=0,
        per_set_hits=np.zeros(config.n_sets, dtype=np.int64),
        per_set_misses=np.zeros(config.n_sets, dtype=np.int64),
        per_variable={},
        seen_blocks=np.empty(0, dtype=np.int64),
    )


def merge_stats(*stats: ShardStats) -> ShardStats:
    """Merge shard statistics: sums, array sums, dict sums, set union.

    Associative and commutative, and never loses counts — every scalar
    and per-set total of the result is the sum over inputs, every
    per-variable pair the pairwise sum, and ``seen_blocks`` the sorted
    union (property-tested in ``tests/campaign/test_shard_merge.py``).
    """
    if not stats:
        raise ValueError("merge_stats needs at least one ShardStats")
    n_sets = len(stats[0].per_set_hits)
    per_set_hits = np.zeros(n_sets, dtype=np.int64)
    per_set_misses = np.zeros(n_sets, dtype=np.int64)
    per_variable: Dict[str, Tuple[int, int]] = {}
    seen: List[np.ndarray] = []
    block_hits = block_misses = demand_hits = demand_accesses = 0
    for s in stats:
        if len(s.per_set_hits) != n_sets:
            raise CacheConfigError(
                "cannot merge shard stats over different set spaces "
                f"({len(s.per_set_hits)} vs {n_sets} sets)"
            )
        block_hits += s.block_hits
        block_misses += s.block_misses
        demand_hits += s.demand_hits
        demand_accesses += s.demand_accesses
        per_set_hits += s.per_set_hits
        per_set_misses += s.per_set_misses
        for name, (h, m) in s.per_variable.items():
            old = per_variable.get(name, (0, 0))
            per_variable[name] = (old[0] + h, old[1] + m)
        if len(s.seen_blocks):
            seen.append(s.seen_blocks)
    merged_seen = (
        np.unique(np.concatenate(seen)) if seen else np.empty(0, dtype=np.int64)
    )
    return ShardStats(
        block_hits=block_hits,
        block_misses=block_misses,
        demand_hits=demand_hits,
        demand_accesses=demand_accesses,
        per_set_hits=per_set_hits,
        per_set_misses=per_set_misses,
        per_variable=per_variable,
        seen_blocks=merged_seen,
    )


# -- shard simulation ---------------------------------------------------------


def simulate_shard(
    addrs: np.ndarray,
    sizes: Optional[np.ndarray],
    labels: Optional[Sequence[Optional[str]]],
    config: CacheConfig,
    incoming: Optional[ResidencyEffect] = None,
) -> ShardStats:
    """Simulate one shard against its true incoming residency.

    ``labels`` optionally names each access (``None`` = unattributed);
    per-variable totals key by label so shards need no shared id table.
    ``incoming`` is the composed effect of every preceding shard
    (``None`` = cold cache, i.e. the first shard).
    """
    addrs = np.asarray(addrs, dtype=np.uint64)
    n = len(addrs)
    if sizes is None:
        sizes = np.ones(n, dtype=np.uint32)
    sim = FastSimulator(config)
    if incoming is not None:
        sim.prime(incoming.blocks)
    var_ids = None
    names: List[str] = []
    if labels is not None:
        if len(labels) != n:
            raise ValueError(
                f"got {len(labels)} labels for {n} accesses"
            )
        name_ids: Dict[str, int] = {}
        var_ids = np.empty(n, dtype=np.int64)
        for i, label in enumerate(labels):
            if label is None:
                var_ids[i] = -1
            else:
                var_ids[i] = name_ids.setdefault(label, len(name_ids))
        names = list(name_ids)
    sim.feed(addrs, sizes, var_ids)
    totals = sim.trace_counts()
    blocks, _ = _expand_blocks(addrs, sizes, config.block_size)
    per_variable = {
        names[vid]: hm
        for vid, hm in totals.per_variable.items()
        if vid >= 0
    }
    return ShardStats(
        block_hits=totals.counts.hits,
        block_misses=totals.counts.misses,
        demand_hits=totals.demand_hits,
        demand_accesses=totals.demand_accesses,
        per_set_hits=totals.counts.per_set.hits,
        per_set_misses=totals.counts.per_set.misses,
        per_variable=per_variable,
        seen_blocks=np.unique(blocks.astype(np.int64)),
    )


def finalize_fields(stats: ShardStats, config: CacheConfig) -> Dict[str, Any]:
    """Derive the simulation-payload fields from merged shard stats.

    Field-identical to :func:`repro.campaign.jobs.simulation_fields` on
    the whole trace: evictions come from the merged per-set misses,
    compulsory misses from the merged distinct-block count, and the miss
    ratio from the merged demand totals — none of them is a sum of
    per-shard values.
    """
    per_set = PerSetCounts(
        hits=stats.per_set_hits.astype(np.int64),
        misses=stats.per_set_misses.astype(np.int64),
    )
    n = stats.demand_accesses
    return {
        "config": config.describe(),
        "accesses": n,
        "hits": stats.demand_hits,
        "misses": stats.demand_misses,
        "miss_ratio": round(stats.demand_misses / n, 6) if n else 0.0,
        "evictions": _evictions_from(per_set, config.ways),
        "compulsory_misses": int(len(stats.seen_blocks)),
        "by_variable_misses": {
            name: stats.per_variable[name][1]
            for name in sorted(stats.per_variable)
        },
    }


# -- orchestration ------------------------------------------------------------


def shard_ranges(n: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``n`` records into up to ``n_shards`` contiguous ranges.

    Ranges are balanced to within one record and never empty; fewer
    ranges come back when ``n < n_shards``.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n_shards = min(n_shards, n) or 1
    bounds = np.linspace(0, n, n_shards + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_shards)
        if bounds[i] < bounds[i + 1] or n == 0
    ][: max(1, n_shards)]


def sharded_simulation_fields(
    trace,
    config: CacheConfig,
    attribution: str = "base",
    *,
    n_shards: int = 4,
    pool: Optional[Executor] = None,
) -> Dict[str, Any]:
    """Chunk-parallel replacement for ``simulation_fields`` (fast path).

    Three phases:

    1. *effects* (parallel) — every shard's :func:`shard_effect`, each
       from the shard alone;
    2. *boundaries* (sequential, cheap) — prefix-compose the effects so
       shard *k* knows the exact residency shards ``0..k-1`` leave;
    3. *counts* (parallel) — :func:`simulate_shard` per shard against
       its boundary state, then one :func:`merge_stats` fold and
       :func:`finalize_fields`.

    ``pool`` is any :class:`concurrent.futures.Executor` for phases 1
    and 3 (``None`` = run them inline).  The result is field-identical
    to the one-shot path for every config ``supports_fast_path`` covers.
    """
    if not supports_fast_path(config):
        raise CacheConfigError(
            f"no fast path covers {config.describe()!r}; "
            "chunk-parallel simulation requires one"
        )
    data = [r for r in trace if r.op is not AccessType.MISC]
    n = len(data)
    addrs = np.fromiter((r.addr for r in data), dtype=np.uint64, count=n)
    sizes = np.fromiter((r.size for r in data), dtype=np.uint32, count=n)
    labels = [attribution_label(r, attribution) for r in data]
    ranges = shard_ranges(n, n_shards)
    shards = [
        (addrs[lo:hi], sizes[lo:hi], labels[lo:hi]) for lo, hi in ranges
    ]

    def _effect(shard):
        return shard_effect(shard[0], shard[1], config)

    if pool is None:
        effects = [_effect(s) for s in shards]
    else:
        effects = list(pool.map(_effect, shards))
    # Prefix scan: boundary state of shard k = effect of shards 0..k-1
    # applied to the cold cache (identity).
    boundaries = [identity_effect(config)]
    for effect in effects[:-1]:
        boundaries.append(compose_effects(boundaries[-1], effect))

    def _counts(pair):
        (a, s, lab), incoming = pair
        return simulate_shard(a, s, lab, config, incoming)

    paired = list(zip(shards, boundaries))
    if pool is None:
        stats = [_counts(p) for p in paired]
    else:
        stats = list(pool.map(_counts, paired))
    merged = merge_stats(*stats) if stats else empty_stats(config)
    return finalize_fields(merged, config)
