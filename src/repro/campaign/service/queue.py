"""Bounded, sharded, work-stealing asyncio job queue.

Every shard worker owns one deque.  Jobs land on a shard chosen by a
stable hash of their id (so resubmissions of the same job always target
the same shard and per-shard FIFO order is meaningful), and an idle
worker that finds its own deque empty *steals from the tail of the
deepest other deque* — the classic work-stealing discipline: owners pop
FIFO from the head for locality and thieves take the oldest work from
the back of the longest queue, keeping shard imbalance bounded without
any global rebalancing pass.

The queue is bounded as a whole: ``put`` blocks once ``capacity`` items
are in flight, which is the backpressure path — the server stops reading
a client's submit frames while its ``put`` is parked, so a fast client
cannot balloon server memory no matter how hard it pushes.
"""

from __future__ import annotations

import asyncio
import zlib
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import CampaignError


class QueueClosed(CampaignError):
    """Raised to takers when the queue is closed and fully drained."""


class ShardQueue:
    """N bounded deques with owner-FIFO take and deepest-tail stealing."""

    def __init__(self, shards: int, capacity: int = 1024) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.n_shards = shards
        self.capacity = capacity
        self._shards: List[Deque[Any]] = [deque() for _ in range(shards)]
        self._size = 0
        self._closed = False
        self._not_full = asyncio.Condition()
        self._not_empty = asyncio.Condition()
        #: lifetime counters (read by the service's status reporting)
        self.total_put = 0
        self.total_requeued = 0
        self.total_stolen = 0
        self.peak_depth = 0
        self.peak_imbalance = 0

    # -- shard selection -----------------------------------------------------

    def shard_for(self, job_id: str) -> int:
        """Stable home shard of a job id (crc32 — cheap, deterministic)."""
        return zlib.crc32(job_id.encode("utf-8")) % self.n_shards

    # -- producer side -------------------------------------------------------

    async def put(self, item: Any, *, shard: Optional[int] = None,
                  job_id: Optional[str] = None) -> int:
        """Enqueue one item, blocking while the queue is at capacity.

        The target shard is ``shard`` when given, else the stable hash
        of ``job_id``, else shard 0.  Returns the shard the item landed
        on.  Raises :class:`QueueClosed` if the queue was closed.
        """
        if shard is None:
            shard = self.shard_for(job_id) if job_id is not None else 0
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range 0..{self.n_shards - 1}")
        async with self._not_full:
            while self._size >= self.capacity and not self._closed:
                await self._not_full.wait()
            if self._closed:
                raise QueueClosed("queue is closed")
            self._shards[shard].append(item)
            self._size += 1
            self.total_put += 1
            self.peak_depth = max(self.peak_depth, self._size)
            self.peak_imbalance = max(self.peak_imbalance, self.imbalance())
        async with self._not_empty:
            self._not_empty.notify()
        return shard

    async def requeue(self, item: Any, *, shard: int) -> None:
        """Re-admit an already-admitted item, bypassing the capacity bound.

        Retries re-enter here: the item was counted against capacity
        when first admitted, so letting it skip the bound cannot grow
        the in-flight total — while routing it through :meth:`put`
        could deadlock (every worker parked in ``put`` on a full queue
        leaves nobody to ``take``).  Works even after :meth:`close` so
        shutdown never drops a retry.
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range 0..{self.n_shards - 1}")
        async with self._not_empty:
            self._shards[shard].append(item)
            self._size += 1
            self.total_requeued += 1
            self.peak_depth = max(self.peak_depth, self._size)
            self._not_empty.notify()

    # -- consumer side -------------------------------------------------------

    def _steal_source(self, shard_id: int) -> Optional[int]:
        """Deepest other shard with work, or ``None`` when all are dry."""
        best, best_depth = None, 0
        for i, dq in enumerate(self._shards):
            if i != shard_id and len(dq) > best_depth:
                best, best_depth = i, len(dq)
        return best

    async def take(self, shard_id: int) -> Tuple[Any, bool]:
        """Dequeue work for one shard worker; ``(item, stolen)``.

        The worker's own deque is served head-first; when it is empty the
        deepest other deque is robbed from the *tail*.  Blocks while
        every deque is empty; raises :class:`QueueClosed` once the queue
        is closed *and* drained (close never drops queued work).
        """
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(
                f"shard {shard_id} out of range 0..{self.n_shards - 1}"
            )
        async with self._not_empty:
            while self._size == 0:
                if self._closed:
                    raise QueueClosed("queue is closed and drained")
                await self._not_empty.wait()
            own = self._shards[shard_id]
            if own:
                item, stolen = own.popleft(), False
            else:
                source = self._steal_source(shard_id)
                assert source is not None, "size > 0 but no shard has work"
                item, stolen = self._shards[source].pop(), True
                self.total_stolen += 1
            self._size -= 1
        async with self._not_full:
            self._not_full.notify()
        return item, stolen

    # -- lifecycle / introspection -------------------------------------------

    async def close(self) -> None:
        """Close the queue: puts fail immediately, takes drain then fail."""
        async with self._not_full:
            self._closed = True
            self._not_full.notify_all()
        async with self._not_empty:
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def depth(self) -> int:
        """Items currently queued across all shards."""
        return self._size

    def depths(self) -> List[int]:
        """Per-shard queue depths (index = shard id)."""
        return [len(dq) for dq in self._shards]

    def imbalance(self) -> int:
        """Deepest minus shallowest shard depth right now."""
        depths = self.depths()
        return max(depths) - min(depths)
