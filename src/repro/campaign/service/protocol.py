"""Newline-delimited-JSON wire protocol for the campaign service.

One *frame* is one JSON object on one line, UTF-8, ``\\n``-terminated.
The vocabulary is small and strictly request/response per connection:
every client frame gets exactly one reply carrying the request's ``seq``
echoed back as ``re``, which is what makes retries safe — a client that
saw no reply within its deadline resends the *same* frame with the
*same* ``seq``, the server answers idempotently (submits dedupe by job
id, queries recompute), and any late or duplicated reply is discarded by
seq matching on the client side.

Frame types
-----------

========== ==============================================================
``hello``   first frame of a connection (``role``, ``proto``)
``welcome`` server's reply (``proto``, ``shards``)
``submit``  enqueue one job (``job_id``, ``job``, optional ``keep``)
``ack``     submit reply (``job_id``, ``dup`` when already known)
``poll``    query one job (``job_id``, optional ``wait`` blocks until
            terminal on this connection)
``result``  poll reply (``job_id``, ``status``, ``payload``/``error``)
``status``  service-wide counters request
``status_reply`` queue depths, per-state job counts, counters
``drain``   block until every submitted job is terminal
``drained`` drain reply (same body as ``status_reply``)
``shutdown`` stop the service after replying
``bye``     shutdown reply
``error``   reply to an unintelligible or illegal frame (``message``)
========== ==============================================================

Frames longer than :data:`MAX_FRAME_BYTES` are a protocol error: the
bound keeps one misbehaving peer from ballooning server memory, and the
asyncio reader enforces it before JSON parsing ever runs.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.errors import CampaignError

#: Protocol revision carried in hello/welcome; bump on breaking changes.
PROTO_VERSION = 1

#: Hard per-frame byte bound (guards server memory against bad peers).
MAX_FRAME_BYTES = 4 * 1024 * 1024


class ProtocolError(CampaignError):
    """A frame violated the wire protocol (bad JSON, shape, or size)."""


#: Required non-``type`` keys per frame type.
FRAME_SCHEMAS: Dict[str, tuple] = {
    "hello": ("role", "proto"),
    "welcome": ("proto", "shards"),
    "submit": ("job_id", "job"),
    "ack": ("job_id",),
    "poll": ("job_id",),
    "result": ("job_id", "status"),
    "status": (),
    "status_reply": ("jobs", "counters"),
    "drain": (),
    "drained": ("jobs", "counters"),
    "shutdown": (),
    "bye": (),
    "error": ("message",),
    "heartbeat": (),
}


def validate_frame(frame: Any) -> Dict[str, Any]:
    """Check one decoded frame's shape; returns it or raises.

    A frame must be a JSON object with a known ``type`` and that type's
    required keys.  Unknown *extra* keys are allowed (forward
    compatibility), unknown types are not.
    """
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(frame).__name__}")
    ftype = frame.get("type")
    if not isinstance(ftype, str):
        raise ProtocolError("frame has no string 'type' field")
    schema = FRAME_SCHEMAS.get(ftype)
    if schema is None:
        raise ProtocolError(f"unknown frame type {ftype!r}")
    missing = [key for key in schema if key not in frame]
    if missing:
        raise ProtocolError(
            f"{ftype} frame missing required key(s): {', '.join(missing)}"
        )
    return frame


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialise one validated frame to its wire bytes (JSON + newline)."""
    validate_frame(frame)
    try:
        line = json.dumps(frame, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-serialisable: {exc}") from exc
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return data


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one wire line back into a validated frame."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    return validate_frame(frame)


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one frame from a stream; ``None`` at a clean EOF.

    A connection severed mid-line (partial frame, no newline) raises
    :class:`ProtocolError` — the fragment cannot be trusted — and so
    does an overlong line, *without* buffering the whole excess.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} bytes lost)"
        ) from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            f"frame exceeds the reader limit: {exc}"
        ) from exc
    return decode_frame(line)


async def write_frame(
    writer: asyncio.StreamWriter, frame: Dict[str, Any]
) -> None:
    """Encode and send one frame, draining the transport."""
    writer.write(encode_frame(frame))
    await writer.drain()


def reply_to(frame: Dict[str, Any], reply: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp a reply with the request's ``seq`` (echoed as ``re``)."""
    if "seq" in frame:
        reply = dict(reply)
        reply["re"] = frame["seq"]
    return reply
