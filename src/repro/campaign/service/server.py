"""The campaign service: an asyncio job server over a local socket.

One :class:`CampaignService` owns a bounded work-stealing
:class:`~repro.campaign.service.queue.ShardQueue`, one asyncio *worker*
coroutine per shard (each executing job bodies in a thread pool so the
event loop never blocks on simulation), and a newline-delimited-JSON
protocol endpoint on a unix socket.  Clients submit wire job
descriptions (:mod:`repro.campaign.service.wire`), poll for results,
and drain; the scheduler drives whole campaigns through it and gets
byte-identical artifacts because workers run the exact one-shot job
bodies.

Failure model
-------------

- A job body that *raises* is retried up to ``retries`` times (requeued
  on its home shard), then recorded as failed.  Artifact writes are
  content-addressed and atomic, so a retry after a partial run is safe.
- A worker coroutine that *dies* (a fault-injection kill, a bug) is
  noticed by the monitor task: its in-flight job is requeued and the
  worker respawned.  Nothing is lost because a job is only settled once
  a payload or a terminal error exists.
- A client that loses a reply resends the same frame with the same
  ``seq``; submits dedupe by job id, so at-least-once delivery on the
  wire still yields exactly-once execution accounting.

Backpressure: the submit handler awaits ``queue.put``, which blocks at
capacity — while it is parked the server is not reading that client's
socket, so the kernel buffer and then the client's ``write`` stall.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import tempfile
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.campaign.service.protocol import (
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    ProtocolError,
    read_frame,
    reply_to,
    write_frame,
)
from repro.campaign.service.queue import QueueClosed, ShardQueue
from repro.campaign.service.wire import execute_wire_job
from repro.errors import CacheConfigError, CampaignError
from repro.obsv.telemetry import get_telemetry

#: Environment escape hatch: disable the service route even when a spec
#: or CLI flag enables it (same spirit as ``TDST_NO_FAST``).
NO_SERVICE_ENV = "TDST_NO_SERVICE"

#: Unix socket paths are capped around 104-108 bytes on common kernels;
#: beyond this we fall back to a short temp-dir path.
_SOCKET_PATH_BUDGET = 96

_TERMINAL = ("done", "failed")


def service_socket_path(directory: Union[str, Path]) -> str:
    """A usable unix-socket path for a service rooted at ``directory``.

    Prefers ``<directory>/service.sock``; when that would overflow the
    kernel's ``sun_path`` limit, falls back to a fresh short path under
    the system temp dir (the campaign directory only hosts the socket
    for discoverability, nothing reads it back).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    candidate = str(directory / "service.sock")
    if len(candidate.encode("utf-8")) <= _SOCKET_PATH_BUDGET:
        return candidate
    return str(Path(tempfile.mkdtemp(prefix="tdst-svc-")) / "s.sock")


def _id_hash(job_id: str) -> int:
    """Stable 64-bit digest of a job id (retired-job memory)."""
    digest = hashlib.blake2b(job_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass
class ServiceConfig:
    """Tunables of one :class:`CampaignService`.

    ``chunk_parallel`` turns on trace-chunk-level parallelism: eligible
    simulate stages are split into ``chunk_shards`` ranges, simulated
    concurrently on the chunk pool and merged through the shard-merge
    algebra (:mod:`repro.campaign.service.merge`) — bit-identical to the
    whole-trace fast path by construction.
    """

    socket_path: str = ""
    store_root: Optional[str] = None
    shards: int = 2
    queue_capacity: int = 1024
    retries: int = 1
    backoff: float = 0.0
    timeout: Optional[float] = None
    chunk_parallel: bool = False
    chunk_shards: int = 4
    min_chunk_records: int = 4096
    monitor_interval: float = 0.05
    stall_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise CampaignError(f"service shards must be positive, got {self.shards}")
        if self.queue_capacity <= 0:
            raise CampaignError(
                f"service queue capacity must be positive, got {self.queue_capacity}"
            )
        if self.retries < 0:
            raise CampaignError(f"service retries must be >= 0, got {self.retries}")
        if self.chunk_shards <= 0:
            raise CampaignError(
                f"service chunk_shards must be positive, got {self.chunk_shards}"
            )


@dataclass
class _JobState:
    """Server-side record of one submitted job."""

    job_id: str
    job: Dict[str, Any]
    keep: bool = True
    status: str = "queued"
    attempts: int = 0
    shard: Optional[int] = None
    stolen: bool = False
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    event: asyncio.Event = field(default_factory=asyncio.Event)


class CampaignService:
    """Asyncio job service: sharded queue, workers, protocol endpoint.

    ``runner`` overrides the job body (``runner(job_dict, store_root)
    -> payload``) — the fault-injection harness swaps in misbehaving
    runners here.  ``send_hook`` maps an outgoing reply frame to the
    list of frames actually written (``[]`` drops it, ``[f, f]``
    duplicates it) — the protocol-fault tests live on this hook.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        runner: Optional[Callable[[Dict[str, Any], Optional[str]], Dict[str, Any]]] = None,
        send_hook: Optional[Callable[[Dict[str, Any]], List[Dict[str, Any]]]] = None,
    ) -> None:
        self.config = config
        self._runner = runner
        self._send_hook = send_hook
        self._queue = ShardQueue(config.shards, capacity=config.queue_capacity)
        self._jobs: Dict[str, _JobState] = {}
        self._retired: set = set()
        self._unsettled = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown = asyncio.Event()
        self._stopping = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: List[asyncio.Task] = []
        self._monitor_task: Optional[asyncio.Task] = None
        self._inflight: List[Optional[str]] = [None] * config.shards
        self._inflight_since: List[float] = [0.0] * config.shards
        self._pool = ThreadPoolExecutor(
            max_workers=config.shards, thread_name_prefix="tdst-svc"
        )
        self._chunk_pool: Optional[ThreadPoolExecutor] = None
        if config.chunk_parallel:
            self._chunk_pool = ThreadPoolExecutor(
                max_workers=config.chunk_shards, thread_name_prefix="tdst-chunk"
            )
        self.counters: Dict[str, int] = {
            "queued": 0,
            "done": 0,
            "failed": 0,
            "retried": 0,
            "dup_submits": 0,
            "dup_results": 0,
            "respawns": 0,
            "stalls": 0,
            "chunk_merges": 0,
        }

    # -- job bodies -----------------------------------------------------------

    def _chunk_fields(self, trace, config, attribution) -> Dict[str, Any]:
        """Simulate-stage substitute: chunk-parallel when eligible.

        Falls back to the stock :func:`simulation_fields` for short
        traces, non-fast-path geometries and the ``TDST_NO_FAST``
        escape; the sharded route is proven bit-identical to the
        whole-trace fast path, so artifacts cannot tell.
        """
        from repro.campaign.jobs import NO_FAST_ENV, simulation_fields
        from repro.campaign.service.merge import sharded_simulation_fields
        from repro.cache.fastsim import supports_fast_path

        if (
            len(trace) < self.config.min_chunk_records
            or os.environ.get(NO_FAST_ENV)
            or not supports_fast_path(config)
        ):
            return simulation_fields(trace, config, attribution)
        tele = get_telemetry()
        try:
            with tele.span("service.chunk-merge", cat="service"):
                fields = sharded_simulation_fields(
                    trace,
                    config,
                    attribution,
                    n_shards=self.config.chunk_shards,
                    pool=self._chunk_pool,
                )
        except CacheConfigError:
            return simulation_fields(trace, config, attribution)
        self.counters["chunk_merges"] += 1
        tele.add("service.jobs_merged")
        return fields

    def _run_one(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Synchronous job body (runs on the worker thread pool)."""
        if self._runner is not None:
            return self._runner(job, self.config.store_root)
        fields_fn = self._chunk_fields if self._chunk_pool is not None else None
        return execute_wire_job(
            job, self.config.store_root, fields_fn=fields_fn
        )

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and spawn workers + monitor."""
        if not self.config.socket_path:
            raise CampaignError("ServiceConfig.socket_path is required to start")
        sock = Path(self.config.socket_path)
        if sock.exists():
            sock.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_conn, path=str(sock), limit=MAX_FRAME_BYTES + 2
        )
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker(i), name=f"tdst-svc-worker-{i}")
            for i in range(self.config.shards)
        ]
        self._monitor_task = loop.create_task(
            self._monitor(), name="tdst-svc-monitor"
        )

    async def stop(self) -> None:
        """Drain queued work, stop workers, close the socket."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.close()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        self._pool.shutdown(wait=True)
        if self._chunk_pool is not None:
            self._chunk_pool.shutdown(wait=True)
        try:
            Path(self.config.socket_path).unlink()
        except OSError:
            pass

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` frame arrives, then stop."""
        await self._shutdown.wait()
        await self.stop()

    # -- worker loops ---------------------------------------------------------

    async def _worker(self, shard_id: int) -> None:
        """One shard worker: take (own-first, then steal), run, settle."""
        loop = asyncio.get_running_loop()
        tele = get_telemetry()
        while True:
            try:
                job_id, stolen = await self._queue.take(shard_id)
            except QueueClosed:
                return
            state = self._jobs.get(job_id)
            if state is None or state.status in _TERMINAL:
                # Stale queue entry (job already settled elsewhere).
                self.counters["dup_results"] += 1
                tele.add("service.results_duplicate")
                continue
            if stolen:
                tele.add("service.jobs_stolen")
            state.status = "running"
            state.attempts += 1
            state.shard = shard_id
            state.stolen = state.stolen or stolen
            # NOTE: _inflight is cleared on the success/retry/failure
            # paths only — never in a ``finally`` — so a worker killed
            # by an escaping BaseException leaves its job visible to
            # the monitor for requeueing.
            self._inflight[shard_id] = job_id
            self._inflight_since[shard_id] = loop.time()
            try:
                future = loop.run_in_executor(self._pool, self._run_one, state.job)
                if self.config.timeout is not None:
                    payload = await asyncio.wait_for(future, self.config.timeout)
                else:
                    payload = await future
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._inflight[shard_id] = None
                if state.attempts <= self.config.retries:
                    self.counters["retried"] += 1
                    tele.add("service.jobs_retried")
                    state.status = "queued"
                    if self.config.backoff:
                        await asyncio.sleep(
                            self.config.backoff * (2 ** (state.attempts - 1))
                        )
                    await self._queue.requeue(
                        job_id, shard=self._queue.shard_for(job_id)
                    )
                else:
                    self._settle(state, "failed", error=f"{type(exc).__name__}: {exc}")
            else:
                self._inflight[shard_id] = None
                self._settle(state, "done", payload=payload)

    async def _monitor(self) -> None:
        """Respawn dead workers, requeue their in-flight jobs, gauge depth."""
        tele = get_telemetry()
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.monitor_interval)
            if self._stopping:
                continue
            tele.gauge_max("service.queue.peak_depth", self._queue.depth())
            tele.gauge_max("service.queue.peak_imbalance", self._queue.imbalance())
            now = loop.time()
            for shard_id, task in enumerate(self._workers):
                if task.done():
                    if task.cancelled() or task.exception() is None:
                        continue
                    self.counters["respawns"] += 1
                    tele.add("service.workers_respawned")
                    await self._recover_inflight(shard_id)
                    self._workers[shard_id] = loop.create_task(
                        self._worker(shard_id),
                        name=f"tdst-svc-worker-{shard_id}",
                    )
                elif (
                    self.config.stall_timeout is not None
                    and self._inflight[shard_id] is not None
                    and now - self._inflight_since[shard_id]
                    > self.config.stall_timeout
                ):
                    # Heartbeat gone quiet: count it (threads cannot be
                    # killed safely) and reset the clock so one stall is
                    # one incident, not one per monitor tick.
                    self.counters["stalls"] += 1
                    tele.add("service.workers_stalled")
                    self._inflight_since[shard_id] = now

    async def _recover_inflight(self, shard_id: int) -> None:
        """Requeue the job a dead worker was holding, if any."""
        job_id = self._inflight[shard_id]
        self._inflight[shard_id] = None
        if job_id is None:
            return
        state = self._jobs.get(job_id)
        if state is None or state.status != "running":
            return
        state.status = "queued"
        self.counters["retried"] += 1
        get_telemetry().add("service.jobs_retried")
        await self._queue.requeue(job_id, shard=self._queue.shard_for(job_id))

    def _settle(
        self,
        state: _JobState,
        status: str,
        *,
        payload: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Record one job's terminal outcome exactly once."""
        tele = get_telemetry()
        if state.status in _TERMINAL:
            self.counters["dup_results"] += 1
            tele.add("service.results_duplicate")
            return
        state.status = status
        state.payload = payload
        state.error = error
        state.event.set()
        self.counters[status] += 1
        tele.add(f"service.jobs_{status}")
        if not state.keep:
            # Soak-scale memory bound: forget the payload, remember only
            # a 64-bit digest for submit dedupe and poll answers.
            self._retired.add(_id_hash(state.job_id))
            del self._jobs[state.job_id]
        self._unsettled -= 1
        if self._unsettled == 0:
            self._idle.set()

    # -- protocol endpoint ----------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
        """Write one reply, routed through the fault-injection hook."""
        frames = [frame] if self._send_hook is None else self._send_hook(frame)
        for out in frames:
            await write_frame(writer, out)

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection (strict request/response)."""
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    await self._send(writer, {"type": "error", "message": str(exc)})
                    break
                if frame is None:
                    break
                try:
                    reply = await self._dispatch(frame)
                except ProtocolError as exc:
                    reply = {"type": "error", "message": str(exc)}
                except Exception as exc:  # noqa: BLE001 - reply, never crash
                    reply = {
                        "type": "error",
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                await self._send(writer, reply_to(frame, reply))
                if frame.get("type") == "shutdown":
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Compute the reply to one validated request frame."""
        ftype = frame["type"]
        if ftype == "hello":
            if frame.get("proto") != PROTO_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: client {frame.get('proto')!r}, "
                    f"server {PROTO_VERSION}"
                )
            return {
                "type": "welcome",
                "proto": PROTO_VERSION,
                "shards": self.config.shards,
            }
        if ftype == "submit":
            return await self._handle_submit(frame)
        if ftype == "poll":
            return await self._handle_poll(frame)
        if ftype == "status":
            return {"type": "status_reply", **self._status_body()}
        if ftype == "drain":
            await self._idle.wait()
            return {"type": "drained", **self._status_body()}
        if ftype == "shutdown":
            return {"type": "bye"}
        if ftype == "heartbeat":
            return {"type": "heartbeat"}
        raise ProtocolError(f"unexpected frame type {ftype!r} for a server")

    async def _handle_submit(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Admit one job (idempotent by job id; blocks at capacity)."""
        job_id = str(frame["job_id"])
        job = frame["job"]
        if not isinstance(job, dict):
            raise ProtocolError("submit 'job' must be a JSON object")
        if job_id in self._jobs or _id_hash(job_id) in self._retired:
            self.counters["dup_submits"] += 1
            get_telemetry().add("service.submits_duplicate")
            return {"type": "ack", "job_id": job_id, "dup": True}
        state = _JobState(job_id=job_id, job=job, keep=bool(frame.get("keep", True)))
        self._jobs[job_id] = state
        self._unsettled += 1
        self._idle.clear()
        try:
            shard = await self._queue.put(state.job_id, job_id=job_id)
        except QueueClosed:
            del self._jobs[job_id]
            self._unsettled -= 1
            if self._unsettled == 0:
                self._idle.set()
            raise ProtocolError("service is shutting down; submit rejected")
        state.shard = shard
        self.counters["queued"] += 1
        get_telemetry().add("service.jobs_queued")
        return {"type": "ack", "job_id": job_id, "dup": False}

    async def _handle_poll(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one job query, optionally blocking until terminal."""
        job_id = str(frame["job_id"])
        state = self._jobs.get(job_id)
        if state is None:
            if _id_hash(job_id) in self._retired:
                return {"type": "result", "job_id": job_id, "status": "discarded"}
            return {"type": "result", "job_id": job_id, "status": "unknown"}
        if frame.get("wait") and state.status not in _TERMINAL:
            await state.event.wait()
        body: Dict[str, Any] = {
            "type": "result",
            "job_id": job_id,
            "status": state.status,
            "attempts": state.attempts,
            "stolen": state.stolen,
        }
        if state.status == "done":
            body["payload"] = state.payload
        elif state.status == "failed":
            body["error"] = state.error
        return body

    def _status_body(self) -> Dict[str, Any]:
        """Queue/job/counter snapshot shared by status and drained frames."""
        states: Dict[str, int] = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for state in self._jobs.values():
            states[state.status] = states.get(state.status, 0) + 1
        counters = dict(self.counters)
        counters["stolen"] = self._queue.total_stolen
        return {
            "jobs": {**states, "retired": len(self._retired)},
            "counters": counters,
            "queue": {
                "depth": self._queue.depth(),
                "depths": self._queue.depths(),
                "imbalance": self._queue.imbalance(),
                "peak_depth": self._queue.peak_depth,
                "peak_imbalance": self._queue.peak_imbalance,
            },
            "shards": self.config.shards,
            "unsettled": self._unsettled,
        }


@asynccontextmanager
async def service_running(
    config: ServiceConfig,
    *,
    runner: Optional[Callable[[Dict[str, Any], Optional[str]], Dict[str, Any]]] = None,
    send_hook: Optional[Callable[[Dict[str, Any]], List[Dict[str, Any]]]] = None,
):
    """Async context manager: a started service, stopped on exit."""
    service = CampaignService(config, runner=runner, send_hook=send_hook)
    await service.start()
    try:
        yield service
    finally:
        await service.stop()


def serve_forever(config: ServiceConfig) -> None:
    """Blocking entry point for ``tdst serve`` (runs until shutdown)."""

    async def _main() -> None:
        async with service_running(config) as service:
            await service._shutdown.wait()

    asyncio.run(_main())
