"""High-level facade: the whole pipeline in a handful of calls.

This module is the recommended entry point for library users; it mirrors
the paper's workflow (Figure 2: application -> Gleipnir -> trace ->
DineroIV + transformation -> plots)::

    from repro import api

    program = api.paper_kernel("1a", length=1024)       # the application
    trace = api.trace_program(program)                  # "Gleipnir"
    rules = api.paper_rule("t1", length=1024)           # rule file
    transformed = api.transform_trace(trace, rules)     # the new module
    before = api.simulate(trace)                        # "DineroIV"
    after = api.simulate(transformed.trace)
    print(api.comparison_report(before, after, transform=transformed))

Whole experiment grids (every paper figure) run through the campaign
layer instead of hand-chained calls::

    result = api.run_campaign(api.paper_figures_spec(), "campaign_out",
                              workers=4)
    print(result.summary())
"""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.cache.fastsim import (
    FastCounts,
    FastSimulator,
    FastTraceCounts,
    fast_counts,
    fast_direct_mapped_counts,
    fast_lru_counts,
    fast_per_variable_counts,
    fast_trace_counts,
    supports_fast_path,
)
from repro.cache.simulator import (
    CacheSimulator,
    SimulationResult,
    StreamResult,
    simulate,
    simulate_stream,
)
from repro.campaign import (
    ArtifactStore,
    BatchOptions,
    CacheSpec,
    CampaignResult,
    CampaignService,
    CampaignSpec,
    GridEntry,
    RunManifest,
    Scheduler,
    ServiceClient,
    ServiceConfig,
    ServiceOptions,
    paper_figures_spec,
    run_campaign,
)
from repro.tracestore import (
    ApplyResult,
    ChainSimResult,
    Commit,
    RuleDelta,
    TraceStore,
    apply_rules,
    digest_for_commit,
    rule_delta,
    simulate_chain,
)
from repro.simbatch import (
    BatchPlan,
    BatchResult,
    MultiConfigSimulator,
    batch_eligible,
    batch_trace_counts,
    plan_batch,
    simulate_batch,
)
from repro.cache.hierarchy import CacheHierarchy, simulate_hierarchy
from repro.cache.threec import classify_misses
from repro.cache.split import simulate_split
from repro.cache.victim import simulate_with_victim
from repro.cache.prefetch import PrefetchPolicy, simulate_with_prefetch
from repro.memory.paging import PageTable
from repro.trace.diff import diff_traces
from repro.trace.physical import to_physical
from repro.trace.interleave import proportional, round_robin, tag_thread
from repro.analysis.heatmap import compute_heatmap
from repro.analysis.sweep import associativity_sweep, sweep_configs, sweep_table
from repro.transform.advisor import (
    AdvisorReport,
    Candidate,
    RankedCandidate,
    advise,
    generate_candidates,
    rank_candidates,
    suggest_field_order,
    suggest_hot_cold_split,
)
from repro.trace.binformat import load_binary, save_binary
from repro.trace.columnar import (
    ColumnarTrace,
    load_columnar,
    open_columnar,
    save_columnar,
    upgrade_binary,
)
from repro.trace.format import read_trace, write_trace
from repro.trace.stats import compute_stats
from repro.trace.stream import Trace, TraceChunk, iter_chunks, iter_records
from repro.tracer.interp import Interpreter, trace_program
from repro.tracer.program import Program
from repro.transform.engine import TransformEngine, transform_trace
from repro.transform.paper_rules import paper_rule, rule_t1, rule_t2, rule_t3
from repro.transform.rule_parser import parse_rules, parse_rules_file
from repro.analysis.per_set import figure_series
from repro.analysis.ascii_plot import render_figure
from repro.analysis.gnuplot import write_gnuplot_data, write_gnuplot_script
from repro.analysis.report import (
    campaign_report,
    comparison_report,
    simulation_report,
)
from repro.obsv import (
    Telemetry,
    counters,
    get_telemetry,
    phase,
    read_jsonl_profile,
    render_summary,
    write_chrome_trace,
    write_jsonl_profile,
)
from repro.lint import (
    ChainProof,
    CostReport,
    Diagnostic,
    LintReport,
    MissInterval,
    SetFootprint,
    evaluate_rules,
    lint_cost,
    lint_file,
    lint_paths,
    lint_rules_text,
    lint_spec_text,
    predicted_conflicts,
    set_footprints,
    to_sarif,
)
from repro.lint.cost.chains import (
    layout_equivalent,
    prove_dominates,
    prove_idempotent,
    prove_reorder,
)
from repro.trace.digest import TraceDigest, compute_digest
from repro.verify import (
    AgreementReport,
    SoundnessReport,
    VerifyOutcome,
    check_kernel_agreement,
    check_result,
    check_transform,
    verify_paper,
)
from repro.workloads.paper_kernels import paper_kernel
from repro.workloads import (
    linked_list_traversal,
    matrix_multiply,
    particle_update,
    stencil_2d,
)

__all__ = [
    # pipeline stages
    "Program",
    "Interpreter",
    "trace_program",
    "Trace",
    "read_trace",
    "write_trace",
    "load_binary",
    "save_binary",
    "ColumnarTrace",
    "load_columnar",
    "open_columnar",
    "save_columnar",
    "upgrade_binary",
    "compute_stats",
    "CacheConfig",
    "CacheSimulator",
    "SimulationResult",
    "simulate",
    "StreamResult",
    "simulate_stream",
    "TraceChunk",
    "iter_chunks",
    "iter_records",
    "FastCounts",
    "FastTraceCounts",
    "FastSimulator",
    "fast_counts",
    "fast_direct_mapped_counts",
    "fast_lru_counts",
    "fast_per_variable_counts",
    "fast_trace_counts",
    "supports_fast_path",
    "CacheHierarchy",
    "simulate_hierarchy",
    "classify_misses",
    "simulate_split",
    "simulate_with_victim",
    "simulate_with_prefetch",
    "PrefetchPolicy",
    "PageTable",
    "to_physical",
    "tag_thread",
    "round_robin",
    "proportional",
    "compute_heatmap",
    "sweep_configs",
    "sweep_table",
    "associativity_sweep",
    "suggest_hot_cold_split",
    "suggest_field_order",
    "AdvisorReport",
    "Candidate",
    "RankedCandidate",
    "advise",
    "generate_candidates",
    "rank_candidates",
    "TransformEngine",
    "transform_trace",
    "parse_rules",
    "parse_rules_file",
    "diff_traces",
    # paper assets
    "paper_kernel",
    "paper_rule",
    "rule_t1",
    "rule_t2",
    "rule_t3",
    # workloads
    "linked_list_traversal",
    "matrix_multiply",
    "particle_update",
    "stencil_2d",
    # analysis
    "figure_series",
    "render_figure",
    "write_gnuplot_data",
    "write_gnuplot_script",
    "simulation_report",
    "comparison_report",
    "campaign_report",
    # verification
    "AgreementReport",
    "SoundnessReport",
    "VerifyOutcome",
    "check_kernel_agreement",
    "check_result",
    "check_transform",
    "verify_paper",
    # static analysis (lint)
    "Diagnostic",
    "LintReport",
    "SetFootprint",
    "lint_file",
    "lint_paths",
    "lint_rules_text",
    "lint_spec_text",
    "set_footprints",
    "predicted_conflicts",
    "to_sarif",
    # static cost model & chain proofs
    "ChainProof",
    "CostReport",
    "MissInterval",
    "TraceDigest",
    "compute_digest",
    "evaluate_rules",
    "lint_cost",
    "layout_equivalent",
    "prove_dominates",
    "prove_idempotent",
    "prove_reorder",
    # observability
    "Telemetry",
    "get_telemetry",
    "phase",
    "counters",
    "write_jsonl_profile",
    "read_jsonl_profile",
    "write_chrome_trace",
    "render_summary",
    # campaigns
    "ArtifactStore",
    "BatchOptions",
    "CacheSpec",
    "CampaignResult",
    "CampaignService",
    "CampaignSpec",
    "GridEntry",
    "RunManifest",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceOptions",
    "paper_figures_spec",
    "run_campaign",
    # trace commit chains (incremental re-simulation)
    "ApplyResult",
    "ChainSimResult",
    "Commit",
    "RuleDelta",
    "TraceStore",
    "apply_rules",
    "digest_for_commit",
    "rule_delta",
    "simulate_chain",
    # batched multi-config simulation
    "BatchPlan",
    "BatchResult",
    "MultiConfigSimulator",
    "batch_eligible",
    "batch_trace_counts",
    "plan_batch",
    "simulate_batch",
]
