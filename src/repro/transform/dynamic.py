"""Dynamic (heap) structure transformations — the paper's future work.

Section VI: "we can apply our transformations to static data structures
only ... therefore we must explore the ability to transform dynamic
structures as well."  This module implements the natural first step the
paper's own T2 motivates: *pooling* — relocating heap objects that were
allocated all over the arena into one contiguous pool, in first-touch
order, so that traversal order becomes allocation order ("collocate
elements of similar temporal locality into unique spatial memory pools").

Rule-file syntax (its own section)::

    pool:
    struct Node { int value; Node *next; };
    objects node* : nodePool[64];

- the struct declaration gives the element layout (slot size/alignment);
- ``objects <glob> : <pool>[capacity];`` pools every traced heap object
  whose name matches the glob into ``<pool>``, assigning slots in the
  order objects are first touched.

Unlike the static rules, a pool rule matches trace records by *pattern*
and carries per-run state (the slot map), so a fresh rule set should be
parsed for each engine run.
"""

from __future__ import annotations

import fnmatch
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuleError
from repro.ctypes_model.parser import parse_declarations
from repro.ctypes_model.path import Index, PathElement
from repro.ctypes_model.types import CType, StructType
from repro.transform.rules import MappedAccess, OutAllocation, Rule, Translation

_OBJECTS_RE = re.compile(
    r"objects\s+([A-Za-z0-9_$*?\[\]]+)\s*:\s*"
    r"([A-Za-z_$][A-Za-z0-9_$]*)\s*\[\s*(\d+)\s*\]\s*;"
)


class PoolRule(Rule):
    """Relocate glob-matched heap objects into a contiguous pool.

    Parameters
    ----------
    pattern:
        Glob over traced object names (``node*``).
    elem_type:
        Layout of one pooled object (slot size = padded sizeof).
    pool_name:
        Name (and trace label) of the new pool variable.
    capacity:
        Number of slots; objects beyond capacity are left untouched and
        counted as *uncovered* by the engine.
    """

    is_pattern = True

    def __init__(
        self,
        pattern: str,
        elem_type: CType,
        pool_name: str,
        capacity: int,
    ) -> None:
        if capacity <= 0:
            raise RuleError(f"pool {pool_name!r} needs positive capacity")
        self.pattern = pattern
        self.elem_type = elem_type
        self.pool_name = pool_name
        self.capacity = capacity
        #: the glob is the "in name" for reporting purposes
        self.in_name = pattern
        self.name = f"pool:{pattern}->{pool_name}[{capacity}]"
        self._slots: Dict[str, int] = {}

    # -- pattern matching (engine hook) -----------------------------------

    def matches(self, base_name: str) -> bool:
        """Glob-match a trace variable against the pool pattern."""
        return fnmatch.fnmatchcase(base_name, self.pattern)

    def out_allocations(self) -> Tuple[OutAllocation, ...]:
        """One allocation: the pool holding every matched object."""
        return (
            OutAllocation(
                self.pool_name,
                self.elem_type.size * self.capacity,
                self.elem_type.alignment,
                scope="HS",
            ),
        )

    def translate(self, elements: Sequence[PathElement]) -> Optional[Translation]:
        raise RuleError(
            f"{self.name} matches by pattern; the engine must call "
            "translate_named"
        )

    def translate_named(
        self, base_name: str, elements: Sequence[PathElement]
    ) -> Optional[Translation]:
        """Translate one access to a pooled object.

        Slots are assigned in first-touch order; the path inside the
        object is preserved (``node7.next`` -> ``nodePool[k].next``).
        """
        slot = self._slots.get(base_name)
        if slot is None:
            if len(self._slots) >= self.capacity:
                return None  # pool full: leave the object alone
            slot = len(self._slots)
            self._slots[base_name] = slot
        try:
            offset, leaf = self.elem_type.resolve(elements)
        except Exception:
            return None
        if not leaf.is_scalar:
            return None
        return Translation(
            MappedAccess(
                self.pool_name,
                (Index(slot), *tuple(elements)),
                slot * self.elem_type.size + offset,
                leaf.size,
            )
        )

    @property
    def slot_map(self) -> Dict[str, int]:
        """Object name -> assigned slot (after a run)."""
        return dict(self._slots)


def parse_pool_rules(text: str) -> List[PoolRule]:
    """Parse the body of a ``pool:`` rule section."""
    matches = list(_OBJECTS_RE.finditer(text))
    if not matches:
        raise RuleError("pool section needs an 'objects <glob> : <pool>[N];' line")
    decl_text = _OBJECTS_RE.sub("", text)
    decls = parse_declarations(decl_text)
    if not decls.structs:
        raise RuleError("pool section needs a struct declaration for the element")
    rules: List[PoolRule] = []
    # Convention: one struct per objects line, matched in order; with a
    # single struct it applies to every objects line.
    struct_list = list(decls.structs.values())
    for i, m in enumerate(matches):
        pattern, pool_name, capacity = m.group(1), m.group(2), int(m.group(3))
        elem = struct_list[min(i, len(struct_list) - 1)]
        if not isinstance(elem, StructType):
            raise RuleError("pool element must be a struct")
        rules.append(PoolRule(pattern, elem, pool_name, capacity))
    return rules
