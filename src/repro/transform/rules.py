"""Rule model: the three transformation kinds and their mapping math.

A rule is a pure description: it knows which *in* variable it covers, what
*out* objects must be allocated (the engine assigns their base addresses,
step 1 of the paper's process), and how to translate one access path.
Translation returns the target location *relative to an out allocation*
plus any accesses to insert before it (pointer indirections, injected
index loads); the engine turns those into concrete trace records.

The element-name matching limitation of the paper ("structure's element
names must match because we rely on the element's name to map") is
honoured: every mapping is keyed on field names (plus array indices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuleError
from repro.ctypes_model.path import Field, Index, PathElement
from repro.ctypes_model.types import (
    ArrayType,
    CType,
    PointerType,
    StructType,
    UnionType,
)
from repro.trace.record import AccessType
from repro.transform.formula import IndexFormula

#: Leaf key: the name-and-index identity of a scalar component.
LeafKey = Tuple[Tuple[str, ...], Tuple[int, ...]]


def leaf_key(elements: Sequence[PathElement]) -> LeafKey:
    """Key a path by its field names and indices, ignoring their order.

    ``lSoA.mX[3]`` and ``lAoS[3].mX`` produce the same key
    ``(("mX",), (3,))`` — exactly the identity the paper matches on.
    """
    names = tuple(e.name for e in elements if isinstance(e, Field))
    indices = tuple(e.value for e in elements if isinstance(e, Index))
    return names, indices


@dataclass(frozen=True)
class OutAllocation:
    """An out object the engine must give a fresh base address."""

    name: str
    size: int
    alignment: int
    #: scope code suggestion for synthesised records (``LS``/``LV``...)
    scope: str = "LS"


@dataclass(frozen=True)
class MappedAccess:
    """A location inside an out allocation."""

    alloc: str
    elements: Tuple[PathElement, ...]
    offset: int
    size: int


@dataclass(frozen=True)
class InsertedAccess:
    """An access to synthesise before the translated one.

    ``mapped`` targets an out allocation; ``existing_var`` instead reuses
    the last-seen address of a variable already present in the trace
    (used when injected index arithmetic re-reads the loop counter).
    """

    op: AccessType
    mapped: Optional[MappedAccess] = None
    existing_var: Optional[str] = None
    size: int = 4


@dataclass(frozen=True)
class Translation:
    """Result of translating one access path.

    Two addressing modes:

    - ``target`` set — the access lands inside a freshly allocated out
      object (layout/outline/stride rules);
    - ``address_delta`` set — the access keeps its object but shifts by a
      constant (displacement rules); ``rename`` optionally renames the
      base variable in the emitted record.
    """

    target: Optional[MappedAccess]
    inserts: Tuple[InsertedAccess, ...] = ()
    address_delta: Optional[int] = None
    rename: Optional[str] = None


@dataclass(frozen=True)
class InjectSpec:
    """One ``inject:`` clause line: an access to add per translated line."""

    op: AccessType
    name: str
    size: int = 4
    count: int = 1
    #: True when ``name`` refers to a variable already in the trace
    #: (engine reuses its address) rather than a new synthetic scalar.
    existing: bool = False


class Rule:
    """Base interface; concrete rules implement the mapping."""

    #: the variable name the rule consumes
    in_name: str
    #: human-readable rule label (for reports)
    name: str
    #: True for rules that match trace variables by pattern rather than
    #: exact name (the engine then routes through ``translate_named``).
    is_pattern: bool = False
    #: 1-based file line of the rule's first section, set by the rule
    #: parser (None for programmatically built rules).
    source_line: Optional[int] = None

    def matches(self, base_name: str) -> bool:
        """Whether the rule covers a trace record's base variable."""
        return base_name == self.in_name

    def out_allocations(self) -> Tuple[OutAllocation, ...]:
        """The fresh objects this rule's output lives in (step 1 of the
        paper's process assigns each a new base address)."""
        raise NotImplementedError

    def out_names(self) -> Tuple[str, ...]:
        """Names the rule *produces* (never re-transformed; the paper's
        one-directional mapping)."""
        return tuple(a.name for a in self.out_allocations())

    def translate(self, elements: Sequence[PathElement]) -> Optional[Translation]:
        """Translate an access path (relative to the in variable).

        Returns ``None`` when the path is not covered (the engine counts
        it as ignored, per the paper's "simply ignore it" behaviour).
        """
        raise NotImplementedError


#: LayoutRule enumerates every scalar element of both structures to build
#: and validate the one-to-one mapping; this caps the table size (1M
#: elements ~ 300 MB of dict) with a clear error instead of an OOM.
MAX_LAYOUT_ELEMENTS = 1_000_000


class LayoutRule(Rule):
    """T1: generic structure re-layout (SoA <-> AoS, field reorder...).

    Built from the full in/out type definitions.  Every scalar leaf of the
    in type must correspond to exactly one leaf of the out type with the
    same :func:`leaf_key` and the same size (one-to-one mapping, as the
    paper requires).  Structures above :data:`MAX_LAYOUT_ELEMENTS` scalar
    elements are rejected — the mapping table is fully enumerated for
    validation, exactly as the paper's one-to-one rule check implies.
    """

    def __init__(
        self,
        in_name: str,
        in_type: CType,
        out_name: str,
        out_type: CType,
        *,
        scope: str = "LS",
    ) -> None:
        approx = sum(1 for _ in zip(range(MAX_LAYOUT_ELEMENTS + 1), in_type.iter_leaves()))
        if approx > MAX_LAYOUT_ELEMENTS:
            raise RuleError(
                f"layout rule for {in_name!r} exceeds {MAX_LAYOUT_ELEMENTS} "
                "elements; split the structure or use a stride rule"
            )
        self.in_name = in_name
        self.in_type = in_type
        self._out_name = out_name
        self.out_type = out_type
        self.scope = scope
        self.name = f"layout:{in_name}->{out_name}"
        out_leaves: Dict[LeafKey, Tuple[Tuple[PathElement, ...], int, CType]] = {}
        for elements, offset, leaf in out_type.iter_leaves():
            key = leaf_key(elements)
            if key in out_leaves:
                raise RuleError(
                    f"{self.name}: out structure has duplicate element {key}",
                    code="TDST005",
                )
            out_leaves[key] = (elements, offset, leaf)
        self._map: Dict[LeafKey, Tuple[Tuple[PathElement, ...], int, int]] = {}
        for elements, offset, leaf in in_type.iter_leaves():
            key = leaf_key(elements)
            target = out_leaves.pop(key, None)
            if target is None:
                raise RuleError(
                    f"{self.name}: in element {key} has no out counterpart "
                    "(element names and indices must match)",
                    code="TDST005",
                )
            t_elements, t_offset, t_leaf = target
            if t_leaf.size != leaf.size:
                raise RuleError(
                    f"{self.name}: element {key} changes size "
                    f"{leaf.size} -> {t_leaf.size}",
                    code="TDST005",
                )
            self._map[key] = (t_elements, t_offset, t_leaf.size)
        if out_leaves:
            extra = next(iter(out_leaves))
            raise RuleError(
                f"{self.name}: out structure has {len(out_leaves)} unmatched "
                f"element(s), e.g. {extra}",
                code="TDST005",
            )

    def out_allocations(self) -> Tuple[OutAllocation, ...]:
        """A single allocation: the re-laid-out structure."""
        return (
            OutAllocation(
                self._out_name,
                self.out_type.size,
                self.out_type.alignment,
                scope=self.scope,
            ),
        )

    def translate(self, elements: Sequence[PathElement]) -> Optional[Translation]:
        entry = self._map.get(leaf_key(elements))
        if entry is None:
            return None
        t_elements, t_offset, size = entry
        return Translation(
            MappedAccess(self._out_name, t_elements, t_offset, size)
        )


class OutlineRule(Rule):
    """T2: outline a nested member into a storage pool behind a pointer.

    Accesses to the hot members are re-laid into the new outer structure;
    accesses to the outlined (cold) member become an inserted pointer load
    (``L outer[i].<ptr>``) followed by the access into
    ``storage[i].<rest>`` — the indirection the paper highlights in
    Figure 8.
    """

    def __init__(
        self,
        in_name: str,
        in_type: CType,
        out_name: str,
        out_type: CType,
        storage_name: str,
        storage_type: CType,
        pointer_member: str,
        *,
        scope: str = "LS",
    ) -> None:
        self.in_name = in_name
        self._out_name = out_name
        self.storage_name = storage_name
        self.pointer_member = pointer_member
        self.scope = scope
        self.name = f"outline:{in_name}->{out_name}+{storage_name}"

        self.in_elem, self.length = self._array_of_struct(in_name, in_type)
        self.out_elem, out_len = self._array_of_struct(out_name, out_type)
        self.storage_elem, storage_len = self._array_of_struct(
            storage_name, storage_type
        )
        self.in_type = in_type
        self.out_type = out_type
        self.storage_type = storage_type
        if out_len != self.length or storage_len != self.length:
            raise RuleError(
                f"{self.name}: array lengths differ "
                f"(in {self.length}, out {out_len}, storage {storage_len})"
            )
        # The outlined member must exist in the in struct and be an
        # aggregate; the out struct replaces it with a pointer.
        cold = self.in_elem.member(pointer_member)
        if not isinstance(cold.ctype, (StructType, UnionType)):
            raise RuleError(
                f"{self.name}: outlined member {pointer_member!r} is not a struct"
            )
        self.cold_type = cold.ctype
        ptr = self.out_elem.member(pointer_member)
        if not isinstance(ptr.ctype, PointerType):
            raise RuleError(
                f"{self.name}: out member {pointer_member!r} must be a pointer"
            )
        self._ptr_offset = ptr.offset
        # Hot members map by name between in and out structs.
        self._hot: Dict[str, Tuple[int, int]] = {}
        for f in self.in_elem.fields:
            if f.name == pointer_member:
                continue
            try:
                out_field = self.out_elem.member(f.name)
            except Exception as exc:
                raise RuleError(
                    f"{self.name}: hot member {f.name!r} missing in out struct"
                ) from exc
            if out_field.ctype.size != f.ctype.size:
                raise RuleError(
                    f"{self.name}: member {f.name!r} changes size"
                )
            self._hot[f.name] = (out_field.offset, out_field.ctype.size)
        # Cold members map by name into the storage struct.
        for elements, _, leaf in self.cold_type.iter_leaves():
            try:
                s_off, s_leaf = self.storage_elem.resolve(elements)
            except Exception as exc:
                raise RuleError(
                    f"{self.name}: cold element {elements} missing in storage "
                    "struct"
                ) from exc
            if s_leaf.size != leaf.size:
                raise RuleError(
                    f"{self.name}: cold element {elements} changes size"
                )

    @staticmethod
    def _array_of_struct(name: str, ctype: CType) -> Tuple[StructType, int]:
        if isinstance(ctype, ArrayType) and isinstance(ctype.element, StructType):
            return ctype.element, ctype.length
        if isinstance(ctype, StructType):
            return ctype, 1
        raise RuleError(
            f"outline rule needs struct or array-of-struct, got "
            f"{ctype.c_name()} for {name!r}"
        )

    def out_allocations(self) -> Tuple[OutAllocation, ...]:
        """Two allocations: the slimmed outer structure and the pool."""
        return (
            OutAllocation(
                self._out_name,
                self.out_type.size,
                self.out_type.alignment,
                scope=self.scope,
            ),
            OutAllocation(
                self.storage_name,
                self.storage_type.size,
                self.storage_type.alignment,
                scope=self.scope,
            ),
        )

    def translate(self, elements: Sequence[PathElement]) -> Optional[Translation]:
        elems = list(elements)
        # Normalise the optional leading index ([i] for array rules).
        if self.length > 1:
            if not elems or not isinstance(elems[0], Index):
                return None
            index = elems[0].value
            rest = elems[1:]
        else:
            index = 0
            rest = elems
        if not rest or not isinstance(rest[0], Field):
            return None
        head = rest[0].name
        out_stride = self.out_elem.size
        if head == self.pointer_member:
            # Cold access: pointer load + storage access.
            cold_elements = rest[1:]
            try:
                s_offset, s_leaf = self.storage_elem.resolve(cold_elements)
            except Exception:
                return None
            if not s_leaf.is_scalar:
                return None
            storage_stride = self.storage_elem.size
            prefix: Tuple[PathElement, ...] = (
                (Index(index),) if self.length > 1 else ()
            )
            pointer_access = MappedAccess(
                self._out_name,
                (*prefix, Field(self.pointer_member)),
                index * out_stride + self._ptr_offset,
                8,
            )
            target = MappedAccess(
                self.storage_name,
                (*prefix, *cold_elements),
                index * storage_stride + s_offset,
                s_leaf.size,
            )
            return Translation(
                target,
                inserts=(InsertedAccess(AccessType.LOAD, mapped=pointer_access, size=8),),
            )
        # Hot access: relocate into the out struct.
        entry = self._hot.get(head)
        if entry is None:
            return None
        base_offset, _ = entry
        try:
            rel_offset, leaf = self.out_elem.resolve(rest)
        except Exception:
            return None
        if not leaf.is_scalar:
            return None
        prefix = (Index(index),) if self.length > 1 else ()
        return Translation(
            MappedAccess(
                self._out_name,
                (*prefix, *rest),
                index * out_stride + rel_offset,
                leaf.size,
            )
        )


class HotColdSplitRule(Rule):
    """T2 variant: outline *direct* cold fields behind a pointer.

    The paper's Listing 8 assumes the cold fields already sit in a nested
    struct.  Real structures usually have them inline; this rule splits a
    flat struct: fields present in the out struct stay hot, fields present
    in the storage struct move cold, and accesses to cold fields gain the
    inserted pointer load.  (This is the shape the transformation advisor
    generates.)
    """

    def __init__(
        self,
        in_name: str,
        in_type: CType,
        out_name: str,
        out_type: CType,
        storage_name: str,
        storage_type: CType,
        pointer_member: str,
        *,
        scope: str = "LS",
    ) -> None:
        self.in_name = in_name
        self._out_name = out_name
        self.storage_name = storage_name
        self.pointer_member = pointer_member
        self.scope = scope
        self.name = f"split:{in_name}->{out_name}+{storage_name}"
        self.in_elem, self.length = OutlineRule._array_of_struct(in_name, in_type)
        self.out_elem, out_len = OutlineRule._array_of_struct(out_name, out_type)
        self.storage_elem, storage_len = OutlineRule._array_of_struct(
            storage_name, storage_type
        )
        self.in_type = in_type
        self.out_type = out_type
        self.storage_type = storage_type
        if out_len != self.length or storage_len != self.length:
            raise RuleError(f"{self.name}: array lengths differ")
        ptr = self.out_elem.member(pointer_member)
        if not isinstance(ptr.ctype, PointerType):
            raise RuleError(
                f"{self.name}: out member {pointer_member!r} must be a pointer"
            )
        self._ptr_offset = ptr.offset
        self._hot = {
            f.name for f in self.out_elem.fields if f.name != pointer_member
        }
        self._cold = {f.name for f in self.storage_elem.fields}
        in_fields = set(self.in_elem.member_names())
        if self._hot & self._cold:
            raise RuleError(
                f"{self.name}: fields {sorted(self._hot & self._cold)} are "
                "both hot and cold"
            )
        if in_fields != self._hot | self._cold:
            raise RuleError(
                f"{self.name}: hot+cold fields {sorted(self._hot | self._cold)} "
                f"must exactly cover the in struct {sorted(in_fields)}"
            )
        for name in in_fields:
            side = self.out_elem if name in self._hot else self.storage_elem
            if side.member(name).ctype.size != self.in_elem.member(name).ctype.size:
                raise RuleError(f"{self.name}: member {name!r} changes size")

    def out_allocations(self) -> Tuple[OutAllocation, ...]:
        """Two allocations: the hot structure and the cold pool."""
        return (
            OutAllocation(
                self._out_name,
                self.out_type.size,
                self.out_type.alignment,
                scope=self.scope,
            ),
            OutAllocation(
                self.storage_name,
                self.storage_type.size,
                self.storage_type.alignment,
                scope=self.scope,
            ),
        )

    def translate(self, elements: Sequence[PathElement]) -> Optional[Translation]:
        elems = list(elements)
        if self.length > 1:
            if not elems or not isinstance(elems[0], Index):
                return None
            index = elems[0].value
            rest = elems[1:]
        else:
            index = 0
            rest = elems
        if not rest or not isinstance(rest[0], Field):
            return None
        head = rest[0].name
        prefix: Tuple[PathElement, ...] = (
            (Index(index),) if self.length > 1 else ()
        )
        if head in self._cold:
            try:
                s_offset, leaf = self.storage_elem.resolve(rest)
            except Exception:
                return None
            if not leaf.is_scalar:
                return None
            pointer_access = MappedAccess(
                self._out_name,
                (*prefix, Field(self.pointer_member)),
                index * self.out_elem.size + self._ptr_offset,
                8,
            )
            return Translation(
                MappedAccess(
                    self.storage_name,
                    (*prefix, *rest),
                    index * self.storage_elem.size + s_offset,
                    leaf.size,
                ),
                inserts=(
                    InsertedAccess(AccessType.LOAD, mapped=pointer_access, size=8),
                ),
            )
        if head in self._hot:
            try:
                rel_offset, leaf = self.out_elem.resolve(rest)
            except Exception:
                return None
            if not leaf.is_scalar:
                return None
            return Translation(
                MappedAccess(
                    self._out_name,
                    (*prefix, *rest),
                    index * self.out_elem.size + rel_offset,
                    leaf.size,
                )
            )
        return None


class StrideRule(Rule):
    """T3: remap a 1-D array through an index formula (set pinning).

    ``in`` is the original array; ``out`` is the (larger) strided array
    whose index is ``formula(original_index)``.  ``inject`` lists accesses
    to synthesise before every remapped line — the index-arithmetic loads
    the paper pre-selected by hand.
    """

    def __init__(
        self,
        in_name: str,
        in_type: CType,
        out_name: str,
        out_length: int,
        formula: IndexFormula,
        *,
        inject: Sequence[InjectSpec] = (),
        scope: str = "LS",
    ) -> None:
        if not isinstance(in_type, ArrayType) or not in_type.element.is_scalar:
            raise RuleError(
                f"stride rule needs a 1-D scalar array, got {in_type.c_name()}",
                code="TDST006",
            )
        self.in_name = in_name
        self.in_type = in_type
        self._out_name = out_name
        self.out_length = out_length
        self.formula = formula
        self.inject = tuple(inject)
        self.scope = scope
        self.elem = in_type.element
        self.name = f"stride:{in_name}->{out_name}"
        worst = formula.max_index(in_type.length)
        if worst >= out_length:
            raise RuleError(
                f"{self.name}: formula maps index up to {worst} but the out "
                f"array has only {out_length} elements",
                code="TDST008",
            )
        if not formula.is_injective(in_type.length):
            raise RuleError(
                f"{self.name}: index formula is not injective over "
                f"0..{in_type.length - 1} — distinct elements would alias "
                "the same out location, so the trace would not be a sound "
                "stand-in for the transformed program",
                code="TDST007",
            )

    def out_allocations(self) -> Tuple[OutAllocation, ...]:
        """The strided array plus any synthetic inject scalars."""
        allocations = [
            OutAllocation(
                self._out_name,
                self.elem.size * self.out_length,
                self.elem.alignment,
                scope=self.scope,
            )
        ]
        for spec in self.inject:
            if not spec.existing:
                allocations.append(
                    OutAllocation(spec.name, spec.size, spec.size, scope="LV")
                )
        return tuple(allocations)

    def translate(self, elements: Sequence[PathElement]) -> Optional[Translation]:
        if len(elements) != 1 or not isinstance(elements[0], Index):
            return None
        index = elements[0].value
        if not 0 <= index < self.in_type.length:
            return None
        new_index = self.formula(index)
        inserts: List[InsertedAccess] = []
        for spec in self.inject:
            for _ in range(spec.count):
                if spec.existing:
                    inserts.append(
                        InsertedAccess(spec.op, existing_var=spec.name, size=spec.size)
                    )
                else:
                    inserts.append(
                        InsertedAccess(
                            spec.op,
                            mapped=MappedAccess(spec.name, (), 0, spec.size),
                            size=spec.size,
                        )
                    )
        return Translation(
            MappedAccess(
                self._out_name,
                (Index(new_index),),
                new_index * self.elem.size,
                self.elem.size,
            ),
            inserts=tuple(inserts),
        )


@dataclass
class RuleSet:
    """An ordered collection of rules, indexed by in-variable name."""

    rules: List[Rule] = field(default_factory=list)

    def add(self, rule: Rule) -> "RuleSet":
        """Add a rule, rejecting duplicates and chained (out->in) rules."""
        if rule.in_name in self.by_in_name():
            raise RuleError(
                f"duplicate rule for variable {rule.in_name!r}", code="TDST009"
            )
        produced = {n for r in self.rules for n in r.out_names()}
        new_out = set(rule.out_names())
        if rule.in_name in produced or rule.in_name in new_out:
            raise RuleError(
                f"rule input {rule.in_name!r} is produced by a rule; "
                "mappings are not bi-directional (paper Section IV)",
                code="TDST009",
            )
        clashes = new_out & (produced | set(self.by_in_name()))
        if clashes:
            raise RuleError(
                f"out object(s) {sorted(clashes)} collide with names other "
                "rules already consume or produce",
                code="TDST009",
            )
        self.rules.append(rule)
        return self

    def by_in_name(self) -> Dict[str, Rule]:
        """Map of in-variable name -> rule."""
        return {r.in_name: r for r in self.rules}

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)
