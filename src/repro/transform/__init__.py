"""The paper's core contribution: rule-based trace transformation.

The engine rewrites a Gleipnir trace *during analysis* so that the cache
simulator sees the memory behaviour of a transformed data-structure layout
without the application ever being edited or re-run.  Section IV of the
paper defines the process:

1. **Initialize the rules** — parse the ``in:``/``out:`` rule file; give
   every ``out`` structure a fresh base address and size.
2. **Check validity** — break each trace line's variable into a nested
   path and test whether it is covered by an ``in`` rule.
3. **Apply transformation** — map the ``in`` element to the ``out``
   element and compute the new address; indirect ``out`` structures get
   extra inserted pointer-load lines.
4. **Print the transformation** — write ``transformed_trace.out``.
5. **Compare** — diff original vs transformed (:mod:`repro.trace.diff`).

Three rule kinds reproduce the paper's Section V:

- :class:`~repro.transform.rules.LayoutRule` — SoA <-> AoS and general
  field re-layout (T1);
- :class:`~repro.transform.rules.OutlineRule` — nested structure ->
  pointer-indirected storage pool, with injected pointer loads (T2);
- :class:`~repro.transform.rules.StrideRule` — index-formula remapping
  for cache-set pinning, with injected index-arithmetic loads (T3).
"""

from repro.transform.formula import FormulaError, IndexFormula
from repro.transform.rules import (
    InjectSpec,
    LayoutRule,
    OutlineRule,
    Rule,
    RuleSet,
    StrideRule,
)
from repro.transform.displace import DisplaceRule
from repro.transform.dynamic import PoolRule
from repro.transform.tile import TileRule, tiled_struct
from repro.transform.rule_parser import parse_rules, parse_rules_file
from repro.transform.engine import (
    TransformEngine,
    TransformReport,
    TransformResult,
    transform_trace,
)

__all__ = [
    "IndexFormula",
    "FormulaError",
    "Rule",
    "RuleSet",
    "LayoutRule",
    "OutlineRule",
    "StrideRule",
    "DisplaceRule",
    "PoolRule",
    "TileRule",
    "tiled_struct",
    "InjectSpec",
    "parse_rules",
    "parse_rules_file",
    "TransformEngine",
    "TransformReport",
    "TransformResult",
    "transform_trace",
]
