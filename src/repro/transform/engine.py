"""The transformation engine: applies rules to a trace stream.

Implements the five-step process of the paper's Section IV:

1. **Initialize the rules** — at construction every rule's out objects get
   a fresh base address from the transformation arena (a reserved address
   range that cannot collide with traced program objects).
2. **Check validity** — each record's variable path is matched against the
   rules; uncovered records pass through unchanged, and records that
   reference *out* objects are never re-transformed (rules are one-way).
3. **Apply transformation** — the matched rule maps the element to its
   new location; indirect structures contribute inserted pointer loads,
   stride rules contribute injected index-arithmetic accesses.
4. **Print the transformation** — :meth:`TransformResult.write` emits
   ``transformed_trace.out``.
5. **Compare** — :func:`repro.trace.diff.diff_traces` on
   ``result.original`` / ``result.trace``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import TransformError
from repro.ctypes_model.path import VariablePath
from repro.obsv.telemetry import get_telemetry
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.transform.rules import (
    InsertedAccess,
    MappedAccess,
    Rule,
    RuleSet,
    Translation,
)

#: Default base of the transformation arena: well above the program stack
#: so synthesised objects never collide with traced addresses.
ARENA_BASE = 0x7FF2_0000_0


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass
class TransformReport:
    """Counters describing what the engine did."""

    total: int = 0
    transformed: int = 0
    inserted: int = 0
    passthrough: int = 0
    #: lines referencing rule *outputs* (ignored, mapping is one-way)
    ignored_out: int = 0
    #: lines whose variable matches a rule but whose path isn't covered
    uncovered: int = 0
    size_mismatches: int = 0
    base_inconsistencies: int = 0
    per_rule: Counter = field(default_factory=Counter)

    def summary(self) -> str:
        """Multi-line counters report (plus per-rule match counts)."""
        lines = [
            f"records in      : {self.total}",
            f"  transformed   : {self.transformed}",
            f"  inserted      : {self.inserted}",
            f"  passthrough   : {self.passthrough}",
            f"  ignored (out) : {self.ignored_out}",
            f"  uncovered     : {self.uncovered}",
            f"anomalies       : size={self.size_mismatches} "
            f"base={self.base_inconsistencies}",
        ]
        for rule_name, count in sorted(self.per_rule.items()):
            lines.append(f"  {rule_name:<36s} {count}")
        return "\n".join(lines)


@dataclass
class TransformResult:
    """The transformed trace plus the report and allocation map."""

    original: Trace
    trace: Trace
    report: TransformReport
    allocations: Dict[str, int]

    def write(self, path: Union[str, Path] = "transformed_trace.out") -> Path:
        """Step 4: write the transformed trace (paper's default filename)."""
        target = Path(path)
        self.trace.save(target)
        return target


class TransformEngine:
    """Applies a rule set to trace records.

    Parameters
    ----------
    rules:
        The rules to apply (at most one per in-variable).
    arena_base:
        First address of the transformation arena.
    strict:
        Raise on anomalies (size mismatch, inconsistent in-structure base
        address) instead of counting them.
    """

    def __init__(
        self,
        rules: Union[RuleSet, Iterable[Rule]],
        *,
        arena_base: int = ARENA_BASE,
        strict: bool = False,
    ) -> None:
        self.rules = rules if isinstance(rules, RuleSet) else _to_ruleset(rules)
        self.strict = strict
        self.report = TransformReport()
        self._by_in: Dict[str, Rule] = {
            r.in_name: r for r in self.rules if not r.is_pattern
        }
        self._pattern_rules = [r for r in self.rules if r.is_pattern]
        self._out_names = {n for r in self.rules for n in r.out_names()}
        self._alloc_scope: Dict[str, str] = {}
        # Step 1: set up a new base address and size for every out object.
        self.allocations: Dict[str, int] = {}
        cursor = arena_base
        for rule in self.rules:
            for alloc in rule.out_allocations():
                if alloc.name in self.allocations:
                    raise TransformError(
                        f"out object {alloc.name!r} allocated by two rules"
                    )
                cursor = _align_up(cursor, max(alloc.alignment, 1))
                self.allocations[alloc.name] = cursor
                self._alloc_scope[alloc.name] = alloc.scope
                cursor += alloc.size
        #: learned base address of each in variable (validity checking)
        self._in_bases: Dict[str, int] = {}
        #: last seen address/metadata per variable base name (for
        #: ``existing`` inject specs)
        self._last_seen: Dict[str, TraceRecord] = {}

    # -- per-record transformation ------------------------------------------

    def transform_record(self, record: TraceRecord) -> List[TraceRecord]:
        """Steps 2-3 for one record; returns the replacement list."""
        self.report.total += 1
        if record.var is not None:
            self._last_seen[record.var.base] = record
        if record.var is None:
            self.report.passthrough += 1
            return [record]
        base = record.var.base
        if base in self._out_names:
            # Same nesting as an out rule: "the simulator will simply
            # ignore it" — mapping is not bi-directional.
            self.report.ignored_out += 1
            return [record]
        rule = self._by_in.get(base)
        if rule is None:
            for candidate in self._pattern_rules:
                if candidate.matches(base):
                    rule = candidate
                    break
        if rule is None:
            self.report.passthrough += 1
            return [record]
        if rule.is_pattern:
            translation = rule.translate_named(base, record.var.elements)
        else:
            translation = rule.translate(record.var.elements)
        if translation is None:
            self.report.uncovered += 1
            return [record]
        self._check_consistency(rule, record)
        out: List[TraceRecord] = []
        for insert in translation.inserts:
            out.append(self._materialise_insert(record, insert))
            self.report.inserted += 1
        out.append(self._materialise_target(record, translation))
        self.report.transformed += 1
        self.report.per_rule[rule.name] += 1
        return out

    def _check_consistency(self, rule: Rule, record: TraceRecord) -> None:
        """Validate size and learned base address of the in structure."""
        in_type = getattr(rule, "in_type", None)
        if in_type is None:
            return  # rule kinds without a declared in layout (displace)
        try:
            offset, leaf = in_type.resolve(record.var.elements)
        except Exception:
            return
        if record.size != leaf.size:
            self.report.size_mismatches += 1
            if self.strict:
                raise TransformError(
                    f"{record.var}: access size {record.size} != "
                    f"element size {leaf.size}"
                )
        base = record.addr - offset
        known = self._in_bases.setdefault(rule.in_name, base)
        if known != base:
            self.report.base_inconsistencies += 1
            if self.strict:
                raise TransformError(
                    f"{rule.in_name}: inconsistent base address "
                    f"{base:#x} (expected {known:#x}) at {record.var}"
                )

    def _scope_for(self, record: TraceRecord, mapped: MappedAccess) -> str:
        """New scope code: keep the L/G/H segment, recompute V vs S."""
        prefix = record.scope[0] if record.scope else "L"
        suffix = "S" if mapped.elements else "V"
        return prefix + suffix

    def _materialise_target(
        self, record: TraceRecord, translation: Translation
    ) -> TraceRecord:
        if translation.address_delta is not None:
            # Displacement mode: shift in place, optionally rename.
            var = record.var
            if translation.rename is not None and var is not None:
                var = var.with_base(translation.rename)
            return record.evolve(
                addr=record.addr + translation.address_delta, var=var
            )
        mapped = translation.target
        addr = self.allocations[mapped.alloc] + mapped.offset
        return record.evolve(
            addr=addr,
            var=VariablePath(mapped.alloc, mapped.elements),
            scope=self._scope_for(record, mapped),
        )

    def _materialise_insert(
        self, record: TraceRecord, insert: InsertedAccess
    ) -> TraceRecord:
        if insert.existing_var is not None:
            seen = self._last_seen.get(insert.existing_var)
            if seen is not None:
                return seen.evolve(op=insert.op, func=record.func)
            raise TransformError(
                f"inject references {insert.existing_var!r} which has not "
                "appeared in the trace"
            )
        assert insert.mapped is not None
        mapped = insert.mapped
        addr = self.allocations[mapped.alloc] + mapped.offset
        scope = self._alloc_scope.get(mapped.alloc, "LV")
        if mapped.elements:
            scope = scope[0] + "S"
        else:
            scope = scope[0] + "V"
        return record.evolve(
            op=insert.op,
            addr=addr,
            size=insert.size,
            var=VariablePath(mapped.alloc, mapped.elements),
            scope=scope,
        )

    # -- whole-trace APIs --------------------------------------------------------

    def stream(self, records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        """Transform lazily (for feeding a simulator without a copy)."""
        for record in records:
            yield from self.transform_record(record)

    def transform(self, records: Iterable[TraceRecord]) -> TransformResult:
        """Transform a full trace, keeping the original for diffing."""
        tele = get_telemetry()
        if not tele.enabled:
            return self._transform(records)
        inserted_before = self.report.inserted
        with tele.span("transform.apply", cat="transform"):
            result = self._transform(records)
        tele.add("transform.records_in", len(result.original))
        tele.add("transform.records_out", len(result.trace))
        tele.add("transform.injected", self.report.inserted - inserted_before)
        return result

    def _transform(self, records: Iterable[TraceRecord]) -> TransformResult:
        """Uninstrumented :meth:`transform` body (the overhead baseline)."""
        original = records if isinstance(records, Trace) else Trace(records)
        out = Trace()
        for record in original:
            out.extend(self.transform_record(record))
        return TransformResult(
            original=original,
            trace=out,
            report=self.report,
            allocations=dict(self.allocations),
        )


def _to_ruleset(rules: Iterable[Rule]) -> RuleSet:
    ruleset = RuleSet()
    for rule in rules:
        ruleset.add(rule)
    return ruleset


def transform_trace(
    records: Iterable[TraceRecord],
    rules: Union[RuleSet, Iterable[Rule], str],
    *,
    arena_base: int = ARENA_BASE,
    strict: bool = False,
) -> TransformResult:
    """One-shot transformation.

    ``rules`` may be a :class:`RuleSet`, an iterable of rules, or rule
    file *text* (parsed with :func:`repro.transform.rule_parser.parse_rules`).
    """
    if isinstance(rules, str):
        from repro.transform.rule_parser import parse_rules

        rules = parse_rules(rules)
    engine = TransformEngine(rules, arena_base=arena_base, strict=strict)
    return engine.transform(records)
