"""Displacement rules: shift a variable's base address in the trace.

Section V.3 of the paper closes with "a displacement may be used to yield
another set" — shifting where a structure sits changes which cache sets
it maps to without changing its internal layout.  A displacement is the
smallest useful transformation for resolving the inter-variable conflicts
the eviction-attribution matrix exposes (pad one of two structures that
alias each other and the ping-pong stops).

Rule-file syntax (its own section, no ``in:``/``out:`` pair needed)::

    displace:
    lArrayA + 4096
    lArrayB - 64
    lArrayC + 32 as lArrayC_shifted

``as NEW`` optionally renames the variable in the transformed trace so
downstream per-variable attribution can distinguish the layouts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import RuleError
from repro.ctypes_model.path import PathElement
from repro.transform.rules import OutAllocation, Rule, Translation

_LINE_RE = re.compile(
    r"^\s*([A-Za-z_$][A-Za-z0-9_$]*)\s*([+-])\s*(\d+)"
    r"(?:\s+as\s+([A-Za-z_$][A-Za-z0-9_$]*))?\s*$"
)


class DisplaceRule(Rule):
    """Shift every access to ``in_name`` by a constant byte offset.

    Unlike the other rule kinds a displacement allocates nothing: the new
    address is ``old address + offset``.  The structure's internal layout
    (and therefore its hit/miss *count* on a large enough cache) is
    unchanged; only its set mapping moves.
    """

    def __init__(
        self, in_name: str, offset: int, *, new_name: Optional[str] = None
    ) -> None:
        if offset == 0:
            raise RuleError(f"displacement of {in_name!r} must be non-zero")
        self.in_name = in_name
        self.offset = offset
        self.new_name = new_name
        self.name = f"displace:{in_name}{offset:+d}"

    def out_allocations(self) -> Tuple[OutAllocation, ...]:
        """Displacements allocate nothing (shift in place)."""
        return ()

    def out_names(self) -> Tuple[str, ...]:
        """Only the optional rename is an output name."""
        return (self.new_name,) if self.new_name else ()

    def translate(self, elements: Sequence[PathElement]) -> Optional[Translation]:
        # Every access to the variable is covered, whatever its path.
        return Translation(
            target=None,
            address_delta=self.offset,
            rename=self.new_name,
        )


def parse_displacements(text: str) -> list[DisplaceRule]:
    """Parse the lines of a ``displace:`` rule section."""
    rules: list[DisplaceRule] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("#", "//")):
            continue
        m = _LINE_RE.match(line)
        if m is None:
            raise RuleError(f"bad displacement line: {line!r}")
        name, sign, amount, new_name = m.groups()
        offset = int(amount) * (1 if sign == "+" else -1)
        rules.append(DisplaceRule(name, offset, new_name=new_name))
    return rules
