"""Tiling rules: AoS -> AoSoA ("array of structures of arrays").

A generalisation of the paper's T1 that the SIMD-era layout literature
calls AoSoA or "hybrid SoA": elements are grouped into tiles of ``B``;
within a tile each field's ``B`` values sit contiguously (vectorisable),
while tiles keep the fields of nearby elements close (cache-friendly).
T1's two extremes are special cases: ``B = 1`` is plain AoS and
``B = length`` is full SoA — which makes the tile factor a one-knob sweep
across the whole layout family, ideal for the paper's "explore the
transformation space" goal.

Mapping: element ``i``, field ``f``  ->  tile ``i // B``, lane ``i % B``::

    lAoS[i].f   ==>   lAoSoA[i // B].f[i % B]

Rule-file syntax (its own section)::

    tile:
    struct lAoS { int x; double y; }[16];
    by 4 as lAoSoA;
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.errors import RuleError
from repro.ctypes_model.parser import parse_declarations
from repro.ctypes_model.path import Field, Index, PathElement
from repro.ctypes_model.types import ArrayType, CType, StructType
from repro.transform.rules import MappedAccess, OutAllocation, Rule, Translation

_BY_RE = re.compile(
    r"^\s*by\s+(\d+)\s+as\s+([A-Za-z_$][A-Za-z0-9_$]*)\s*;\s*$",
    re.MULTILINE,
)


def tiled_struct(elem: StructType, block: int, tag: str = "") -> StructType:
    """The tile element type: each scalar field widened to ``B`` lanes."""
    members: List[Tuple[str, CType]] = []
    for f in elem.fields:
        if not f.ctype.is_scalar:
            raise RuleError(
                f"tiling requires scalar fields; {f.name!r} is "
                f"{f.ctype.c_name()}"
            )
        members.append((f.name, ArrayType(f.ctype, block)))
    return StructType(tag or f"{elem.tag}_tile", members)


class TileRule(Rule):
    """Re-lay an array of structs into tiles of ``block`` elements."""

    def __init__(
        self,
        in_name: str,
        in_type: CType,
        block: int,
        out_name: str,
        *,
        scope: str = "LS",
    ) -> None:
        if not isinstance(in_type, ArrayType) or not isinstance(
            in_type.element, StructType
        ):
            raise RuleError(
                f"tile rule needs an array of structs, got {in_type.c_name()}"
            )
        if block <= 0:
            raise RuleError(f"tile factor must be positive, got {block}")
        if in_type.length % block:
            raise RuleError(
                f"tile factor {block} must divide the array length "
                f"{in_type.length}"
            )
        self.in_name = in_name
        self.in_type = in_type
        self.elem: StructType = in_type.element
        self.block = block
        self._out_name = out_name
        self.scope = scope
        self.tile_elem = tiled_struct(self.elem, block)
        self.n_tiles = in_type.length // block
        self.out_type = ArrayType(self.tile_elem, self.n_tiles)
        self.name = f"tile:{in_name}->{out_name} by {block}"

    def out_allocations(self) -> Tuple[OutAllocation, ...]:
        """One allocation: the tiled array."""
        return (
            OutAllocation(
                self._out_name,
                self.out_type.size,
                self.out_type.alignment,
                scope=self.scope,
            ),
        )

    def translate(self, elements: Sequence[PathElement]) -> Optional[Translation]:
        if (
            len(elements) != 2
            or not isinstance(elements[0], Index)
            or not isinstance(elements[1], Field)
        ):
            return None
        i = elements[0].value
        if not 0 <= i < self.in_type.length:
            return None
        field_name = elements[1].name
        try:
            tile_field = self.tile_elem.member(field_name)
        except Exception:
            return None
        tile, lane = divmod(i, self.block)
        lane_type = tile_field.ctype.element
        offset = (
            tile * self.tile_elem.size
            + tile_field.offset
            + lane * lane_type.size
        )
        return Translation(
            MappedAccess(
                self._out_name,
                (Index(tile), Field(field_name), Index(lane)),
                offset,
                lane_type.size,
            )
        )


def parse_tile_rules(text: str) -> List[TileRule]:
    """Parse the body of a ``tile:`` rule section."""
    matches = list(_BY_RE.finditer(text))
    if not matches:
        raise RuleError("tile section needs a 'by <B> as <name>;' line")
    decl_text = _BY_RE.sub("", text)
    decls = parse_declarations(decl_text)
    arrays = [
        (name, ctype)
        for name, ctype in decls.variables.items()
        if isinstance(ctype, ArrayType) and isinstance(ctype.element, StructType)
    ]
    if len(arrays) != len(matches):
        raise RuleError(
            f"tile section declares {len(arrays)} arrays but has "
            f"{len(matches)} 'by' lines"
        )
    rules = []
    for (in_name, in_type), m in zip(arrays, matches):
        rules.append(
            TileRule(in_name, in_type, int(m.group(1)), m.group(2))
        )
    return rules
