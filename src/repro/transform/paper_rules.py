"""The paper's three rule files (Listings 5, 8, 11) as reusable text.

Each constant is a rule-file source parameterised by array length through
``.format(...)``; the ``paper_rule`` helper builds the parsed
:class:`~repro.transform.rules.RuleSet` directly.

Listing fidelity notes:

- Listing 5 / 8 are reproduced as printed (modulo the ``l``/``1``
  typesetting of variable names and Listing 8's storage member types,
  which the paper prints as ``int mY; double mZ;`` although the original
  struct declares ``double mY; int mZ;`` — the mapping is by name, so we
  keep the original types).
- Listing 11's formula ``256((1/8)*(16*8)+(1%8))`` is interpreted with
  ``lI`` as the index variable and multiplication in the first term (the
  text's 64 KiB size computation confirms ``*``); the injected
  index-arithmetic loads the authors "hand forced" are expressed with an
  explicit ``inject:`` section.
"""

from __future__ import annotations

from repro.transform.rule_parser import parse_rules
from repro.transform.rules import RuleSet

#: T1 — structure of arrays -> array of structures (Listing 5).
RULE_T1_SOA_TO_AOS = """\
in:
struct lSoA {{
    int mX[{length}];
    double mY[{length}];
}};
out:
struct lAoS {{
    int mX;
    double mY;
}}[{length}];
"""

#: T2 — nested structure -> indirect storage pool (Listing 8).
RULE_T2_OUTLINE = """\
in:
struct mRarelyUsed {{
    double mY;
    int mZ;
}};
struct lS1 {{
    int mFrequentlyUsed;
    struct mRarelyUsed;
}}[{length}];
out:
struct lStorageForRarelyUsed {{
    double mY;
    int mZ;
}}[{length}];
struct lS2 {{
    int mFrequentlyUsed;
    + mRarelyUsed:lStorageForRarelyUsed;
}}[{length}];
"""

#: T3 — contiguous array -> set-pinning stride (Listing 11).
#: ``out_length = length * sets``; the formula uses the paper's constants
#: (ITEMSPERLINE = 8 for 32-byte lines of ints, SETS = 16).
RULE_T3_STRIDE = """\
in:
int lContiguousArray[{length}]:lSetHashingArray;
out:
int lSetHashingArray[{out_length}((lI/{ipl})*({sets}*{ipl})+(lI%{ipl}))];
inject:
L ITEMSPERLINE 4 x3
L lI 4 x2 existing
"""


def rule_t1(length: int = 16) -> RuleSet:
    """Parsed Listing 5 rule for arrays of ``length`` elements."""
    return parse_rules(RULE_T1_SOA_TO_AOS.format(length=length))


def rule_t2(length: int = 16) -> RuleSet:
    """Parsed Listing 8 rule for arrays of ``length`` elements."""
    return parse_rules(RULE_T2_OUTLINE.format(length=length))


def rule_t3(length: int = 1024, *, sets: int = 16, cacheline: int = 32) -> RuleSet:
    """Parsed Listing 11 rule (ITEMSPERLINE derived from the line size)."""
    ipl = cacheline // 4
    return parse_rules(
        RULE_T3_STRIDE.format(
            length=length, out_length=length * sets, ipl=ipl, sets=sets
        )
    )


def paper_rule(name: str, length: int = 16) -> RuleSet:
    """Rule set by transformation name: ``"t1"``, ``"t2"``, ``"t3"``."""
    factories = {"t1": rule_t1, "t2": rule_t2, "t3": rule_t3}
    try:
        factory = factories[name.lower()]
    except KeyError:
        raise KeyError(f"unknown rule {name!r}; choose t1, t2 or t3") from None
    return factory(length)
