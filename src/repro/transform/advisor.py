"""The transformation advisor: synthesise rules from a trace.

The paper positions its engine as a way to "explore the transformation
space of data structures".  The advisor closes the loop: instead of the
user writing every rule by hand, it analyses a trace and *proposes* the
rules —

- :func:`field_usage` / :func:`field_affinity` — per-field access counts
  and temporal co-access affinity for one structure;
- :func:`suggest_hot_cold_split` — picks the cold member set a T2
  outlining rule should move out, based on a usage-ratio threshold;
- :func:`suggest_field_order` — orders AoS fields so that fields used
  together sit together (greedy affinity clustering, hottest first);
- each suggestion renders as **rule-file text** ready for
  :func:`repro.transform.rule_parser.parse_rules`, so the advisor's
  output feeds straight back into the engine.

The advisor works from the same information the paper's user reads off
the modified-DineroIV output (per-variable counts, conflicts) — it simply
automates the reasoning.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.ctypes_model.types import ArrayType, CType, StructType
from repro.trace.record import TraceRecord


class AdvisorError(ReproError):
    """The advisor could not produce a suggestion."""


def _struct_of(layout: CType) -> StructType:
    if isinstance(layout, ArrayType) and isinstance(layout.element, StructType):
        return layout.element
    if isinstance(layout, StructType):
        return layout
    raise AdvisorError(f"advisor needs a struct layout, got {layout.c_name()}")


def field_usage(
    records: Iterable[TraceRecord], variable: str
) -> Counter:
    """Access count per top-level field of ``variable``."""
    counts: Counter = Counter()
    for r in records:
        if r.var is None or r.var.base != variable:
            continue
        names = r.var.field_names()
        if names:
            counts[names[0]] += 1
    return counts


def field_affinity(
    records: Iterable[TraceRecord],
    variable: str,
    *,
    window: int = 8,
) -> Counter:
    """Temporal co-access affinity between top-level fields.

    Two fields gain affinity whenever they are accessed within ``window``
    trace records of each other — the signal that they belong in the same
    cache block.  Returns a Counter over frozensets of field pairs.
    """
    affinity: Counter = Counter()
    recent: deque[Tuple[int, str]] = deque()
    for i, r in enumerate(records):
        if r.var is None or r.var.base != variable:
            continue
        names = r.var.field_names()
        if not names:
            continue
        field = names[0]
        while recent and i - recent[0][0] > window:
            recent.popleft()
        for _, other in recent:
            if other != field:
                affinity[frozenset((field, other))] += 1
        recent.append((i, field))
    return affinity


@dataclass
class HotColdSuggestion:
    """A proposed T2 outlining."""

    variable: str
    hot: Tuple[str, ...]
    cold: Tuple[str, ...]
    usage: Dict[str, int]

    def rule_text(
        self,
        layout: CType,
        *,
        out_name: Optional[str] = None,
        storage_name: Optional[str] = None,
        pointer_name: str = "mColdRef",
    ) -> str:
        """Render the suggestion as a flat hot/cold split rule.

        The ``in`` struct reproduces the original declaration order (so
        the engine's offset validation matches the traced layout); the
        ``out`` section moves the cold fields into a storage pool reached
        through ``pointer_name``.
        """
        struct = _struct_of(layout)
        length = layout.length if isinstance(layout, ArrayType) else 1
        out_name = out_name or f"{self.variable}_hot"
        storage_name = storage_name or f"{self.variable}_coldPool"
        in_members = "\n".join(
            f"    {f.ctype.c_name()} {f.name};" for f in struct.fields
        )
        cold_members = "\n".join(
            f"    {struct.member(name).ctype.c_name()} {name};"
            for name in self.cold
        )
        hot_members = "\n".join(
            f"    {struct.member(name).ctype.c_name()} {name};"
            for name in self.hot
        )
        return (
            f"in:\n"
            f"struct {self.variable} {{\n{in_members}\n}}[{length}];\n"
            f"out:\n"
            f"struct {storage_name} {{\n{cold_members}\n}}[{length}];\n"
            f"struct {out_name} {{\n{hot_members}\n"
            f"    + {pointer_name}:{storage_name};\n"
            f"}}[{length}];\n"
        )


def suggest_hot_cold_split(
    records: Sequence[TraceRecord],
    variable: str,
    layout: CType,
    *,
    cold_threshold: float = 0.2,
) -> Optional[HotColdSuggestion]:
    """Propose outlining fields whose access share is below the threshold.

    Returns ``None`` when no field is cold enough (or all are — there must
    be at least one hot and one cold field to split).

    Note: this advises on structures whose cold members are *direct*
    fields; the generated rule nests them into a synthetic cold struct,
    which models the transformed layout the engine will apply to traces
    of the *restructured* program.  For structures that already have a
    nested cold struct (the paper's Listing 6), write the T2 rule
    directly.
    """
    struct = _struct_of(layout)
    usage = field_usage(records, variable)
    total = sum(usage.values())
    if total == 0:
        return None
    hot: List[str] = []
    cold: List[str] = []
    for field in struct.member_names():
        share = usage.get(field, 0) / total
        (cold if share < cold_threshold else hot).append(field)
    if not hot or not cold:
        return None
    return HotColdSuggestion(
        variable=variable,
        hot=tuple(hot),
        cold=tuple(cold),
        usage=dict(usage),
    )


@dataclass
class FieldOrderSuggestion:
    """A proposed AoS field reordering."""

    variable: str
    order: Tuple[str, ...]
    affinity: Dict[frozenset, int]

    def rule_text(self, layout: CType, *, out_name: Optional[str] = None) -> str:
        """Render as a T1 layout rule (same fields, new order)."""
        struct = _struct_of(layout)
        length = layout.length if isinstance(layout, ArrayType) else 1
        out_name = out_name or f"{self.variable}_reordered"
        in_members = "\n".join(
            f"    {f.ctype.c_name()} {f.name};" for f in struct.fields
        )
        out_members = "\n".join(
            f"    {struct.member(name).ctype.c_name()} {name};"
            for name in self.order
        )
        suffix = f"[{length}]" if isinstance(layout, ArrayType) else ""
        return (
            f"in:\n"
            f"struct {self.variable} {{\n{in_members}\n}}{suffix};\n"
            f"out:\n"
            f"struct {out_name} {{\n{out_members}\n}}{suffix};\n"
        )


def suggest_field_order(
    records: Sequence[TraceRecord],
    variable: str,
    layout: CType,
    *,
    window: int = 8,
) -> FieldOrderSuggestion:
    """Greedy affinity ordering: start from the hottest field, repeatedly
    append the unplaced field with the highest affinity to the already
    placed ones (count-weighted); unaccessed fields go last."""
    struct = _struct_of(layout)
    usage = field_usage(records, variable)
    affinity = field_affinity(records, variable, window=window)
    fields = list(struct.member_names())
    if not fields:
        raise AdvisorError(f"{variable}: struct has no fields")
    placed: List[str] = []
    remaining = set(fields)
    # Seed with the most used field (declaration order breaks ties).
    seed = max(fields, key=lambda f: (usage.get(f, 0), -fields.index(f)))
    placed.append(seed)
    remaining.discard(seed)
    while remaining:
        best = max(
            sorted(remaining, key=fields.index),
            key=lambda f: (
                sum(
                    affinity.get(frozenset((f, p)), 0) for p in placed
                ),
                usage.get(f, 0),
            ),
        )
        placed.append(best)
        remaining.discard(best)
    return FieldOrderSuggestion(
        variable=variable,
        order=tuple(placed),
        affinity=dict(affinity),
    )
