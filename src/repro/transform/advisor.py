"""The transformation advisor: synthesise rules from a trace.

The paper positions its engine as a way to "explore the transformation
space of data structures".  The advisor closes the loop: instead of the
user writing every rule by hand, it analyses a trace and *proposes* the
rules —

- :func:`field_usage` / :func:`field_affinity` — per-field access counts
  and temporal co-access affinity for one structure;
- :func:`suggest_hot_cold_split` — picks the cold member set a T2
  outlining rule should move out, based on a usage-ratio threshold;
- :func:`suggest_field_order` — orders AoS fields so that fields used
  together sit together (greedy affinity clustering, hottest first);
- each suggestion renders as **rule-file text** ready for
  :func:`repro.transform.rule_parser.parse_rules`, so the advisor's
  output feeds straight back into the engine;
- :func:`generate_candidates` / :func:`rank_candidates` — enumerate a
  candidate pool (identity, field orders at several affinity windows,
  hot/cold splits at several thresholds), price every candidate with the
  static cost model (:mod:`repro.lint.cost`), and rank by *simulated*
  miss count — skipping the simulations the statics already decide:
  candidates whose lower bound exceeds the best simulated count cannot
  be top-1, and candidates whose canonical block streams coincide share
  one simulation.  ``prune=False`` restores the simulate-everything
  baseline (the CLI's ``--no-cost-prune``); both paths produce the same
  top recommendation, which the ``cost`` test suite checks.

The advisor works from the same information the paper's user reads off
the modified-DineroIV output (per-variable counts, conflicts) — it simply
automates the reasoning.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.ctypes_model.types import ArrayType, CType, StructType
from repro.trace.record import TraceRecord


class AdvisorError(ReproError):
    """The advisor could not produce a suggestion."""


def _struct_of(layout: CType) -> StructType:
    if isinstance(layout, ArrayType) and isinstance(layout.element, StructType):
        return layout.element
    if isinstance(layout, StructType):
        return layout
    raise AdvisorError(f"advisor needs a struct layout, got {layout.c_name()}")


def field_usage(
    records: Iterable[TraceRecord], variable: str
) -> Counter:
    """Access count per top-level field of ``variable``."""
    counts: Counter = Counter()
    for r in records:
        if r.var is None or r.var.base != variable:
            continue
        names = r.var.field_names()
        if names:
            counts[names[0]] += 1
    return counts


def field_affinity(
    records: Iterable[TraceRecord],
    variable: str,
    *,
    window: int = 8,
) -> Counter:
    """Temporal co-access affinity between top-level fields.

    Two fields gain affinity whenever they are accessed within ``window``
    trace records of each other — the signal that they belong in the same
    cache block.  Returns a Counter over frozensets of field pairs.
    """
    affinity: Counter = Counter()
    recent: deque[Tuple[int, str]] = deque()
    for i, r in enumerate(records):
        if r.var is None or r.var.base != variable:
            continue
        names = r.var.field_names()
        if not names:
            continue
        field = names[0]
        while recent and i - recent[0][0] > window:
            recent.popleft()
        for _, other in recent:
            if other != field:
                affinity[frozenset((field, other))] += 1
        recent.append((i, field))
    return affinity


@dataclass
class HotColdSuggestion:
    """A proposed T2 outlining."""

    variable: str
    hot: Tuple[str, ...]
    cold: Tuple[str, ...]
    usage: Dict[str, int]

    def rule_text(
        self,
        layout: CType,
        *,
        out_name: Optional[str] = None,
        storage_name: Optional[str] = None,
        pointer_name: str = "mColdRef",
    ) -> str:
        """Render the suggestion as a flat hot/cold split rule.

        The ``in`` struct reproduces the original declaration order (so
        the engine's offset validation matches the traced layout); the
        ``out`` section moves the cold fields into a storage pool reached
        through ``pointer_name``.
        """
        struct = _struct_of(layout)
        length = layout.length if isinstance(layout, ArrayType) else 1
        out_name = out_name or f"{self.variable}_hot"
        storage_name = storage_name or f"{self.variable}_coldPool"
        in_members = "\n".join(
            f"    {f.ctype.c_name()} {f.name};" for f in struct.fields
        )
        cold_members = "\n".join(
            f"    {struct.member(name).ctype.c_name()} {name};"
            for name in self.cold
        )
        hot_members = "\n".join(
            f"    {struct.member(name).ctype.c_name()} {name};"
            for name in self.hot
        )
        return (
            f"in:\n"
            f"struct {self.variable} {{\n{in_members}\n}}[{length}];\n"
            f"out:\n"
            f"struct {storage_name} {{\n{cold_members}\n}}[{length}];\n"
            f"struct {out_name} {{\n{hot_members}\n"
            f"    + {pointer_name}:{storage_name};\n"
            f"}}[{length}];\n"
        )


def suggest_hot_cold_split(
    records: Sequence[TraceRecord],
    variable: str,
    layout: CType,
    *,
    cold_threshold: float = 0.2,
) -> Optional[HotColdSuggestion]:
    """Propose outlining fields whose access share is below the threshold.

    Returns ``None`` when no field is cold enough (or all are — there must
    be at least one hot and one cold field to split).

    Note: this advises on structures whose cold members are *direct*
    fields; the generated rule nests them into a synthetic cold struct,
    which models the transformed layout the engine will apply to traces
    of the *restructured* program.  For structures that already have a
    nested cold struct (the paper's Listing 6), write the T2 rule
    directly.
    """
    struct = _struct_of(layout)
    usage = field_usage(records, variable)
    total = sum(usage.values())
    if total == 0:
        return None
    hot: List[str] = []
    cold: List[str] = []
    for field in struct.member_names():
        share = usage.get(field, 0) / total
        (cold if share < cold_threshold else hot).append(field)
    if not hot or not cold:
        return None
    return HotColdSuggestion(
        variable=variable,
        hot=tuple(hot),
        cold=tuple(cold),
        usage=dict(usage),
    )


@dataclass
class FieldOrderSuggestion:
    """A proposed AoS field reordering."""

    variable: str
    order: Tuple[str, ...]
    affinity: Dict[frozenset, int]

    def rule_text(self, layout: CType, *, out_name: Optional[str] = None) -> str:
        """Render as a T1 layout rule (same fields, new order)."""
        struct = _struct_of(layout)
        length = layout.length if isinstance(layout, ArrayType) else 1
        out_name = out_name or f"{self.variable}_reordered"
        in_members = "\n".join(
            f"    {f.ctype.c_name()} {f.name};" for f in struct.fields
        )
        out_members = "\n".join(
            f"    {struct.member(name).ctype.c_name()} {name};"
            for name in self.order
        )
        suffix = f"[{length}]" if isinstance(layout, ArrayType) else ""
        return (
            f"in:\n"
            f"struct {self.variable} {{\n{in_members}\n}}{suffix};\n"
            f"out:\n"
            f"struct {out_name} {{\n{out_members}\n}}{suffix};\n"
        )


def suggest_field_order(
    records: Sequence[TraceRecord],
    variable: str,
    layout: CType,
    *,
    window: int = 8,
) -> FieldOrderSuggestion:
    """Greedy affinity ordering: start from the hottest field, repeatedly
    append the unplaced field with the highest affinity to the already
    placed ones (count-weighted); unaccessed fields go last."""
    struct = _struct_of(layout)
    usage = field_usage(records, variable)
    affinity = field_affinity(records, variable, window=window)
    fields = list(struct.member_names())
    if not fields:
        raise AdvisorError(f"{variable}: struct has no fields")
    placed: List[str] = []
    remaining = set(fields)
    # Seed with the most used field (declaration order breaks ties).
    seed = max(fields, key=lambda f: (usage.get(f, 0), -fields.index(f)))
    placed.append(seed)
    remaining.discard(seed)
    while remaining:
        best = max(
            sorted(remaining, key=fields.index),
            key=lambda f: (
                sum(
                    affinity.get(frozenset((f, p)), 0) for p in placed
                ),
                usage.get(f, 0),
            ),
        )
        placed.append(best)
        remaining.discard(best)
    return FieldOrderSuggestion(
        variable=variable,
        order=tuple(placed),
        affinity=dict(affinity),
    )


# -- candidate generation and cost-ranked advice ------------------------------


@dataclass(frozen=True)
class Candidate:
    """One rule file the advisor considers (empty text = keep layout)."""

    label: str
    rule_text: str
    source: str

    @property
    def is_identity(self) -> bool:
        return not self.rule_text.strip()


@dataclass
class RankedCandidate:
    """A candidate with its static interval and (maybe) simulated count."""

    candidate: Candidate
    #: static miss interval from the cost model
    interval: object
    #: block-level miss count; exact for simulated candidates and for
    #: members of a proven-equivalent class, else ``None`` (pruned)
    misses: Optional[int] = None
    #: True when this candidate itself went through the simulator
    simulated: bool = False
    #: why the simulation was skipped ("dominated", "equivalent:<label>")
    pruned_by: Optional[str] = None
    #: per-set conflict explanations from the cost report
    explanations: Tuple[str, ...] = ()

    def describe(self) -> str:
        tag = (
            f"{self.misses} misses"
            if self.misses is not None
            else f"pruned ({self.pruned_by})"
        )
        sim = "simulated" if self.simulated else "static"
        return (
            f"{self.candidate.label}: {tag} [{sim}; interval "
            f"{self.interval.describe()}]"
        )


@dataclass
class AdvisorReport:
    """Ranked advice for one trace and cache geometry."""

    ranked: List[RankedCandidate] = field(default_factory=list)
    #: candidates that actually hit the simulator
    simulations: int = 0
    #: candidate simulations avoided by static proofs
    skipped: int = 0

    @property
    def top(self) -> RankedCandidate:
        return self.ranked[0]

    def lines(self) -> List[str]:
        out = []
        for i, rc in enumerate(self.ranked, 1):
            out.append(f"{i}. {rc.describe()}")
            for expl in rc.explanations:
                out.append(f"     {expl}")
        out.append(
            f"({self.simulations} candidate(s) simulated, "
            f"{self.skipped} skipped by static proofs)"
        )
        return out


#: affinity windows tried for field-order candidates
ORDER_WINDOWS = (4, 8, 16)
#: usage-share thresholds tried for hot/cold splits
COLD_THRESHOLDS = (0.1, 0.2, 0.35)


def generate_candidates(
    records: Sequence[TraceRecord],
    variable: str,
    layout: CType,
    *,
    windows: Sequence[int] = ORDER_WINDOWS,
    cold_thresholds: Sequence[float] = COLD_THRESHOLDS,
) -> List[Candidate]:
    """Enumerate the advisor's candidate rule files for one variable.

    Always includes the identity (keep the layout); adds one field-order
    candidate per affinity window, declaration-reverse and usage-hottest
    orders, and one hot/cold split per threshold that yields a split.
    Candidates whose rule text the parser or the symbolic prover rejects
    are dropped — advice is always sound.
    """
    struct = _struct_of(layout)
    out: List[Candidate] = [Candidate("identity", "", "identity")]
    seen_texts = {""}

    def _push(label: str, text: str, source: str) -> None:
        if text in seen_texts:
            return
        if _prover_rejects(text):
            return
        seen_texts.add(text)
        out.append(Candidate(label, text, source))

    for window in windows:
        suggestion = suggest_field_order(
            records, variable, layout, window=window
        )
        _push(
            f"order:w{window}",
            suggestion.rule_text(layout),
            "field-order",
        )
    usage = field_usage(records, variable)
    fields = list(struct.member_names())
    hottest = FieldOrderSuggestion(
        variable=variable,
        order=tuple(
            sorted(fields, key=lambda f: (-usage.get(f, 0), fields.index(f)))
        ),
        affinity={},
    )
    _push("order:hottest", hottest.rule_text(layout), "field-order")
    reverse = FieldOrderSuggestion(
        variable=variable, order=tuple(reversed(fields)), affinity={}
    )
    _push("order:reverse", reverse.rule_text(layout), "field-order")
    for threshold in cold_thresholds:
        split = suggest_hot_cold_split(
            records, variable, layout, cold_threshold=threshold
        )
        if split is None:
            continue
        _push(
            f"split:t{threshold:g}",
            split.rule_text(layout),
            "hot-cold",
        )
    return out


def _prover_rejects(rule_text: str) -> bool:
    """True when the rule-file lint (parser + symbolic prover) errors."""
    if not rule_text.strip():
        return False
    from repro.lint.rules_lint import lint_rules_text

    return not lint_rules_text(rule_text).ok


def rank_candidates(
    records: Sequence[TraceRecord],
    candidates: Sequence[Candidate],
    config,
    *,
    digest=None,
    prune: bool = True,
    arena_base: Optional[int] = None,
) -> AdvisorReport:
    """Rank candidates by simulated miss count, pruning statically.

    With ``prune`` on, a candidate skips the simulator when

    - its static lower bound exceeds the best simulated count so far
      (it provably cannot be the top recommendation), or
    - its canonical block stream equals an already-simulated candidate's
      (it provably misses *exactly* as often; the count is shared).

    Both proofs are one-sided, so pruning never changes the top-1:
    the ``prune=False`` path simulates everything and must agree.
    Candidates are processed best-static-bound first, which makes the
    domination cutoff bite as early as possible.
    """
    import numpy as np

    from repro.cache.fastsim import fast_trace_counts, supports_fast_path
    from repro.lint.cost.chains import canonical_stream
    from repro.lint.cost.model import evaluate_rules
    from repro.obsv import get_telemetry
    from repro.trace.digest import compute_digest
    from repro.trace.record import AccessType
    from repro.transform.engine import ARENA_BASE, transform_trace
    from repro.transform.rules import RuleSet

    base = ARENA_BASE if arena_base is None else arena_base
    tele = get_telemetry()
    if digest is None:
        digest = compute_digest(records)

    def _rules(c: Candidate):
        from repro.transform.rule_parser import parse_rules

        return RuleSet() if c.is_identity else parse_rules(c.rule_text)

    def _simulate(c: Candidate) -> int:
        rules = _rules(c)
        out = records if c.is_identity else transform_trace(
            records, rules, arena_base=base
        ).trace
        data = [r for r in out if r.op is not AccessType.MISC]
        if not supports_fast_path(config):
            from repro.cache.simulator import simulate

            return int(simulate(data, config).stats.per_set.misses.sum())
        addrs = np.array([r.addr for r in data], dtype=np.int64)
        sizes = np.array([r.size for r in data], dtype=np.int64)
        return int(fast_trace_counts(addrs, config, sizes).counts.misses)

    entries: List[RankedCandidate] = []
    for c in candidates:
        cost = evaluate_rules(digest, _rules(c), config, arena_base=base)
        entries.append(
            RankedCandidate(
                candidate=c,
                interval=cost.interval,
                explanations=tuple(cost.explain()),
            )
        )
    # Best static prospects first so the domination cutoff tightens fast.
    entries.sort(key=lambda e: (e.interval.lo, e.interval.hi, e.candidate.label))

    streams: Dict[tuple, RankedCandidate] = {}
    best: Optional[int] = None
    report = AdvisorReport()
    for entry in entries:
        c = entry.candidate
        if prune:
            stream = canonical_stream(digest, _rules(c), config, arena_base=base)
            if stream is not None and stream in streams:
                twin = streams[stream]
                entry.misses = twin.misses
                entry.pruned_by = f"equivalent:{twin.candidate.label}"
                report.skipped += 1
                tele.add("cost.prune.equivalent")
                continue
            if best is not None and entry.interval.lo > best:
                entry.pruned_by = "dominated"
                report.skipped += 1
                tele.add("cost.prune.dominated")
                continue
        else:
            stream = None
        entry.misses = _simulate(c)
        entry.simulated = True
        report.simulations += 1
        tele.add("cost.prune.simulated")
        if stream is not None:
            streams[stream] = entry
        if best is None or entry.misses < best:
            best = entry.misses
    # Final order: known miss counts first (ascending), pruned-dominated
    # candidates after, by their static lower bound.
    entries.sort(
        key=lambda e: (
            e.misses is None,
            e.misses if e.misses is not None else e.interval.lo,
            e.candidate.label,
        )
    )
    report.ranked = entries
    return report


def advise(
    records: Sequence[TraceRecord],
    variable: str,
    layout: CType,
    config,
    *,
    prune: bool = True,
) -> AdvisorReport:
    """Generate, price, and rank candidates for one variable."""
    candidates = generate_candidates(records, variable, layout)
    return rank_candidates(records, candidates, config, prune=prune)
