"""Index formulas for stride rules (T3).

The paper's Listing 11 rule embeds the stride computation in the out
declaration::

    int lSetHashingArray[256((lI/8)*(16*8)+(lI%8))];

The parenthesised expression maps the original element index to the new
element index.  :class:`IndexFormula` parses and evaluates that expression
with C integer semantics (``/`` truncates, ``%`` keeps the dividend's
sign).  The free variable (``lI`` above — any identifier not bound as a
constant) denotes the original index; named constants can be supplied via
``define NAME=VALUE`` lines in the rule file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ReproError


class FormulaError(ReproError):
    """A stride formula failed to parse or evaluate."""


_TOKEN = re.compile(r"\s*(?:(\d+)|([A-Za-z_$][A-Za-z0-9_$]*)|([-+*/%()]))")


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise FormulaError("division by zero in stride formula")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise FormulaError("modulo by zero in stride formula")
    return a - b * _c_div(a, b)


@dataclass(frozen=True)
class _Node:
    """AST node: op in {num, var, +, -, *, /, %, neg}."""

    op: str
    value: int = 0
    name: str = ""
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class IndexFormula:
    """A parsed index-mapping expression.

    Parameters
    ----------
    text:
        The formula source, e.g. ``(lI/8)*(16*8)+(lI%8)``.
    constants:
        Named constants usable in the formula.  Exactly one identifier
        must remain unbound — it becomes the index variable.  If *no*
        identifier appears the formula is constant (allowed but odd).
    """

    def __init__(self, text: str, constants: Optional[Mapping[str, int]] = None):
        self.text = text.strip()
        self.constants: Dict[str, int] = dict(constants or {})
        self._root, names = _parse(self.text)
        free = [n for n in names if n not in self.constants]
        if len(set(free)) > 1:
            raise FormulaError(
                f"formula {self.text!r} has multiple free variables: {sorted(set(free))}"
            )
        self.index_name: str = free[0] if free else "i"

    def __call__(self, index: int) -> int:
        """Map an original element index to the transformed index."""
        return self._eval(self._root, index)

    def _eval(self, node: _Node, index: int) -> int:
        if node.op == "num":
            return node.value
        if node.op == "var":
            if node.name in self.constants:
                return self.constants[node.name]
            return index
        if node.op == "neg":
            return -self._eval(node.left, index)
        a = self._eval(node.left, index)
        b = self._eval(node.right, index)
        if node.op == "+":
            return a + b
        if node.op == "-":
            return a - b
        if node.op == "*":
            return a * b
        if node.op == "/":
            return _c_div(a, b)
        if node.op == "%":
            return _c_mod(a, b)
        raise FormulaError(f"unknown operator {node.op!r}")  # pragma: no cover

    def image(self, n: int) -> Tuple[int, ...]:
        """The formula applied to ``0..n-1`` (for range validation)."""
        return tuple(self(i) for i in range(n))

    def max_index(self, n: int) -> int:
        """Largest transformed index over original indices ``0..n-1``."""
        return max(self.image(n)) if n else 0

    def is_injective(self, n: int) -> bool:
        """True when indices ``0..n-1`` map to distinct targets."""
        img = self.image(n)
        return len(set(img)) == len(img)

    def __repr__(self) -> str:
        return f"IndexFormula({self.text!r}, index={self.index_name!r})"


def _parse(text: str) -> Tuple[_Node, Tuple[str, ...]]:
    tokens: list[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None or m.end() == pos:
            raise FormulaError(f"bad character in formula at {text[pos:]!r}")
        if m.group(1):
            tokens.append(("num", m.group(1)))
        elif m.group(2):
            tokens.append(("var", m.group(2)))
        elif m.group(3):
            tokens.append(("punct", m.group(3)))
        pos = m.end()
    names: list[str] = [t for k, t in tokens if k == "var"]

    idx = 0

    def peek() -> Optional[Tuple[str, str]]:
        return tokens[idx] if idx < len(tokens) else None

    def take() -> Tuple[str, str]:
        nonlocal idx
        if idx >= len(tokens):
            raise FormulaError(f"unexpected end of formula {text!r}")
        tok = tokens[idx]
        idx += 1
        return tok

    def parse_primary() -> _Node:
        kind, val = take()
        if kind == "num":
            return _Node("num", value=int(val))
        if kind == "var":
            return _Node("var", name=val)
        if val == "(":
            node = parse_add()
            kind2, val2 = take()
            if val2 != ")":
                raise FormulaError(f"expected ')' in formula {text!r}")
            return node
        if val == "-":
            return _Node("neg", left=parse_primary())
        raise FormulaError(f"unexpected token {val!r} in formula {text!r}")

    def parse_mul() -> _Node:
        node = parse_primary()
        while True:
            nxt = peek()
            if nxt and nxt[1] in ("*", "/", "%"):
                _, op = take()
                node = _Node(op, left=node, right=parse_primary())
            # Implicit multiplication `256(expr)` is NOT folded in: the
            # rule parser splits the array length from the formula before
            # this parser sees the text.
            else:
                return node

    def parse_add() -> _Node:
        node = parse_mul()
        while True:
            nxt = peek()
            if nxt and nxt[1] in ("+", "-"):
                _, op = take()
                node = _Node(op, left=node, right=parse_mul())
            else:
                return node

    root = parse_add()
    if idx != len(tokens):
        raise FormulaError(f"trailing tokens in formula {text!r}")
    return root, tuple(names)
