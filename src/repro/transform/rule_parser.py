"""Parser for transformation rule files (paper Listings 5, 8, 11).

A rule file contains one or more rules, each an ``in:`` section followed
by an ``out:`` section (and optionally ``inject:``)::

    in:
    struct lSoA {
        int mX[16];
        double mY[16];
    };
    out:
    struct lAoS {
        int mX;
        double mY;
    }[16];

Syntax extensions beyond plain C declarations, as printed in the paper:

- ``struct T { ... }[N];`` — the struct *is* the (array) variable; its
  tag names the program variable the rule matches/produces.
- ``+ member:StorageVar;`` inside an out struct — a pointer member whose
  pointee lives in the ``StorageVar`` pool (Listing 8's indirection).
- ``type Name[N]:OutName;`` in an in section — array alias declaring a
  stride rule targeting ``OutName`` (Listing 11).
- ``type OutName[N((formula))];`` in an out section — the strided array
  with its index formula (the paper's ``256((lI/8)*(16*8)+(lI%8))``).
- ``define NAME = VALUE`` — named constants usable inside formulas.
- ``inject: <op> <name> <size> [xCOUNT] [existing]`` lines — accesses to
  synthesise before every remapped line (the index-arithmetic loads the
  paper's authors pre-selected by hand for T3).

The sections are preprocessed into plain C and handed to
:mod:`repro.ctypes_model.parser`; the extracted extensions select and
parameterise the rule class.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import DeclarationSyntaxError, RuleError, RuleFileError
from repro.ctypes_model.parser import DeclarationSet, parse_declarations
from repro.ctypes_model.types import ArrayType, CType, PointerType, StructType
from repro.trace.record import AccessType
from repro.transform.formula import FormulaError, IndexFormula
from repro.transform.rules import (
    HotColdSplitRule,
    InjectSpec,
    LayoutRule,
    OutlineRule,
    Rule,
    RuleSet,
    StrideRule,
)

_SECTION_RE = re.compile(
    r"^\s*(in|out|inject|displace|pool|tile)\s*:\s*$", re.MULTILINE
)
_DEFINE_RE = re.compile(
    r"^\s*(?:#\s*)?define\s+([A-Za-z_$][A-Za-z0-9_$]*)\s*=?\s*(\d+)\s*;?\s*$",
    re.MULTILINE,
)
_POINTER_MEMBER_RE = re.compile(
    r"^\s*\+\s*([A-Za-z_$][A-Za-z0-9_$]*)\s*:\s*([A-Za-z_$][A-Za-z0-9_$]*)\s*;",
    re.MULTILINE,
)
_ALIAS_RE = re.compile(
    r"\]\s*:\s*([A-Za-z_$][A-Za-z0-9_$]*)\s*;"
)
_INJECT_LINE_RE = re.compile(
    r"^\s*([LSMX])\s+([A-Za-z_$][A-Za-z0-9_$]*)\s+(\d+)"
    r"(?:\s+x(\d+))?(?:\s+(existing))?\s*$"
)


@dataclass
class _Section:
    """One preprocessed rule section.

    ``line`` is the 1-based file line of the section header (``in:``...);
    line ``N`` inside :attr:`text` maps to file line ``line + N - 1``.
    """

    kind: str
    text: str
    line: int = 1

    def at(self, body_line: Optional[int] = None) -> int:
        """File line for a 1-based line within the section body."""
        if body_line is None:
            return self.line
        return self.line + body_line - 1


@dataclass
class _OutExtras:
    """Extensions extracted from an out section."""

    pointer_members: Dict[str, str] = field(default_factory=dict)
    formulas: Dict[str, str] = field(default_factory=dict)
    defines: Dict[str, int] = field(default_factory=dict)


def _split_sections(source: str) -> List[_Section]:
    matches = list(_SECTION_RE.finditer(source))
    if not matches:
        raise RuleError(
            "rule file has no 'in:' / 'out:' sections",
            line=1,
            code="TDST001",
        )
    head_lines = [
        ln.strip()
        for ln in source[: matches[0].start()].splitlines()
        if ln.strip() and not ln.strip().startswith(("#", "//"))
    ]
    if head_lines:
        head = " ".join(head_lines)
        raise RuleError(
            f"unexpected text before first section: {head[:60]!r}",
            line=1,
            code="TDST001",
        )
    sections: List[_Section] = []
    for i, m in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(source)
        line = source.count("\n", 0, m.start()) + 1
        sections.append(_Section(m.group(1), source[m.end() : end], line))
    return sections


def _at_line(exc: RuleError, line: int) -> RuleError:
    """Anchor an un-positioned rule error to a file line."""
    if exc.line is not None:
        return exc
    return RuleError(str(exc), line=line, code=exc.code)


def _extract_defines(text: str) -> Tuple[str, Dict[str, int]]:
    defines: Dict[str, int] = {}

    def repl(m: re.Match) -> str:
        defines[m.group(1)] = int(m.group(2))
        return ""

    return _DEFINE_RE.sub(repl, text), defines


def _extract_pointer_members(text: str) -> Tuple[str, Dict[str, str]]:
    members: Dict[str, str] = {}

    def repl(m: re.Match) -> str:
        members[m.group(1)] = m.group(2)
        # A same-layout stand-in; re-typed to PointerType after parsing.
        return f"unsigned long {m.group(1)};"

    return _POINTER_MEMBER_RE.sub(repl, text), members


def _extract_formulas(text: str) -> Tuple[str, Dict[str, str]]:
    """Pull ``Name[LEN((formula))]`` apart into ``Name[LEN]`` + formula.

    Scans for ``[`` followed by digits followed by ``(`` and consumes the
    balanced parenthesised expression.
    """
    formulas: Dict[str, str] = {}
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        m = re.compile(
            r"([A-Za-z_$][A-Za-z0-9_$]*)\s*\[\s*(\d+)\s*\("
        ).search(text, i)
        if m is None:
            out.append(text[i:])
            break
        out.append(text[i : m.start()])
        name, length = m.group(1), m.group(2)
        # Find the matching close paren of the formula.
        depth = 1
        j = m.end()
        while j < n and depth:
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
            j += 1
        if depth:
            raise RuleError(
                f"unbalanced formula parentheses after {name!r}", code="TDST003"
            )
        formula = text[m.end() : j - 1]
        # Expect the closing bracket next.
        k = j
        while k < n and text[k].isspace():
            k += 1
        if k >= n or text[k] != "]":
            raise RuleError(
                f"expected ']' after formula for {name!r}", code="TDST003"
            )
        formulas[name] = formula.strip()
        out.append(f"{name}[{length}]")
        i = k + 1
    return "".join(out), formulas


def _extract_alias(text: str) -> Tuple[str, Optional[str]]:
    aliases: List[str] = []

    def repl(m: re.Match) -> str:
        aliases.append(m.group(1))
        return "];"

    new_text = _ALIAS_RE.sub(repl, text)
    if len(aliases) > 1:
        raise RuleError("at most one stride alias per in section", code="TDST006")
    return new_text, aliases[0] if aliases else None


def _parse_inject(text: str, section: Optional[_Section] = None) -> List[InjectSpec]:
    specs: List[InjectSpec] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "//")):
            continue
        m = _INJECT_LINE_RE.match(line)
        if m is None:
            raise RuleError(
                f"bad inject line: {line!r}",
                line=section.at(lineno) if section else None,
                code="TDST004",
            )
        specs.append(
            InjectSpec(
                op=AccessType(m.group(1)),
                name=m.group(2),
                size=int(m.group(3)),
                count=int(m.group(4)) if m.group(4) else 1,
                existing=bool(m.group(5)),
            )
        )
    return specs


def _retype_pointer_members(
    decls: DeclarationSet, pointer_members: Dict[str, str]
) -> None:
    """Replace the ``unsigned long`` stand-ins with real pointer types.

    Rebuilds any struct containing a stand-in member (StructType is
    immutable) and patches both the tag registry and variable types.
    """
    if not pointer_members:
        return
    rebuilt: Dict[int, StructType] = {}

    def rebuild(ctype: CType) -> CType:
        if id(ctype) in rebuilt:
            return rebuilt[id(ctype)]
        if isinstance(ctype, StructType):
            changed = False
            members: List[Tuple[str, CType]] = []
            for f in ctype.fields:
                if f.name in pointer_members and f.ctype.size == 8:
                    members.append((f.name, PointerType(pointer_members[f.name])))
                    changed = True
                else:
                    new = rebuild(f.ctype)
                    changed = changed or new is not f.ctype
                    members.append((f.name, new))
            if changed:
                new_struct = StructType(ctype.tag, members, packed=ctype.packed)
                rebuilt[id(ctype)] = new_struct
                return new_struct
            return ctype
        if isinstance(ctype, ArrayType):
            new_elem = rebuild(ctype.element)
            if new_elem is not ctype.element:
                return ArrayType(new_elem, ctype.length)
            return ctype
        return ctype

    for tag in list(decls.structs):
        decls.structs[tag] = rebuild(decls.structs[tag])
    for name in list(decls.variables):
        decls.variables[name] = rebuild(decls.variables[name])


def _section_variables(decls: DeclarationSet) -> Dict[str, CType]:
    """Variables a section declares, with bare struct tags counting as
    variables of their own type (the rule-file convention)."""
    variables: Dict[str, CType] = dict(decls.variables)
    for tag, ctype in decls.structs.items():
        variables.setdefault(tag, ctype)
    return variables


def _build_rule(
    in_section: _Section,
    out_section: _Section,
    inject_section: Optional[_Section],
) -> Rule:
    # -- preprocess ----------------------------------------------------------
    in_text, in_defines = _extract_defines(in_section.text)
    try:
        in_text, alias = _extract_alias(in_text)
    except RuleError as exc:
        raise _at_line(exc, in_section.line) from None
    out_text, out_defines = _extract_defines(out_section.text)
    out_text, pointer_members = _extract_pointer_members(out_text)
    try:
        out_text, formulas = _extract_formulas(out_text)
    except RuleError as exc:
        raise _at_line(exc, out_section.line) from None
    defines = {**in_defines, **out_defines}
    inject = (
        _parse_inject(inject_section.text, inject_section)
        if inject_section
        else []
    )

    try:
        in_decls = parse_declarations(in_text)
    except DeclarationSyntaxError as exc:
        raise RuleError(
            f"rule declarations failed to parse: {exc}",
            line=in_section.at(exc.line),
            code="TDST002",
        ) from exc
    try:
        out_decls = parse_declarations(out_text, registry=dict(in_decls.structs))
    except DeclarationSyntaxError as exc:
        raise RuleError(
            f"rule declarations failed to parse: {exc}",
            line=out_section.at(exc.line),
            code="TDST002",
        ) from exc
    _retype_pointer_members(out_decls, pointer_members)

    in_vars = _section_variables(in_decls)
    out_vars = _section_variables(out_decls)

    # -- stride rule (T3) ------------------------------------------------------
    if alias is not None:
        in_candidates = [
            (name, ctype)
            for name, ctype in in_decls.variables.items()
        ] or list(in_vars.items())
        if len(in_candidates) != 1:
            raise RuleError(
                "stride rule needs exactly one in array",
                line=in_section.line,
                code="TDST006",
            )
        in_name, in_type = in_candidates[0]
        if alias not in out_vars:
            raise RuleError(
                f"stride alias target {alias!r} not declared in out section",
                line=out_section.line,
                code="TDST006",
            )
        out_type = out_vars[alias]
        if not isinstance(out_type, ArrayType):
            raise RuleError(
                f"stride out {alias!r} must be an array",
                line=out_section.line,
                code="TDST006",
            )
        formula_text = formulas.get(alias)
        if formula_text is None:
            raise RuleError(
                f"stride out {alias!r} has no index formula",
                line=out_section.line,
                code="TDST006",
            )
        # FormulaError is a ReproError but not a RuleError; re-raise as
        # one so the collector (and lint) can position and code it.  The
        # formula is also *evaluated* here (range/injectivity proofs in
        # StrideRule), so division-by-zero-style errors surface too.
        try:
            formula = IndexFormula(formula_text, constants=defines)
            return StrideRule(
                in_name,
                in_type,
                alias,
                out_type.length,
                formula,
                inject=inject,
            )
        except FormulaError as exc:
            raise RuleError(
                str(exc), line=out_section.line, code="TDST003"
            ) from exc

    if inject:
        raise RuleError(
            "inject: sections are only valid for stride rules",
            line=inject_section.line if inject_section else None,
            code="TDST004",
        )

    # -- outline rule (T2) --------------------------------------------------------
    if pointer_members:
        if len(pointer_members) != 1:
            raise RuleError("exactly one pointer member is supported per rule")
        ptr_name, storage_name = next(iter(pointer_members.items()))
        # The outer out struct is the one containing the pointer member.
        outer_candidates = [
            (name, ctype)
            for name, ctype in out_vars.items()
            if _struct_elem(ctype) is not None
            and any(
                f.name == ptr_name and isinstance(f.ctype, PointerType)
                for f in _struct_elem(ctype).fields
            )
        ]
        if len(outer_candidates) != 1:
            raise RuleError(
                "could not identify the outer out struct with the pointer member",
                line=out_section.line,
                code="TDST005",
            )
        out_name, out_type = outer_candidates[0]
        if storage_name not in out_vars:
            raise RuleError(
                f"pointer target {storage_name!r} not declared in out section",
                line=out_section.line,
                code="TDST005",
            )
        storage_type = out_vars[storage_name]
        # The in variable is the outer in struct: the one that has the
        # outlined member (the deepest struct is declared first, the outer
        # one last — the paper's bottom-up convention).
        inner_candidates = [
            (name, ctype)
            for name, ctype in in_vars.items()
            if _struct_elem(ctype) is not None
            and any(f.name == ptr_name for f in _struct_elem(ctype).fields)
        ]
        if len(inner_candidates) == 1:
            in_name, in_type = inner_candidates[0]
            return OutlineRule(
                in_name,
                in_type,
                out_name,
                out_type,
                storage_name,
                storage_type,
                ptr_name,
            )
        # No in struct nests the pointer member: this is a *flat* hot/cold
        # split — cold fields are direct members moved into the storage
        # struct (the advisor-generated shape).
        flat_candidates = [
            (name, ctype)
            for name, ctype in in_vars.items()
            if _struct_elem(ctype) is not None
            and name not in (out_name, storage_name)
        ]
        if len(flat_candidates) != 1:
            raise RuleError(
                f"could not identify the in struct for pointer member "
                f"{ptr_name!r}",
                line=in_section.line,
                code="TDST005",
            )
        in_name, in_type = flat_candidates[0]
        return HotColdSplitRule(
            in_name,
            in_type,
            out_name,
            out_type,
            storage_name,
            storage_type,
            ptr_name,
        )

    # -- layout rule (T1) -----------------------------------------------------------
    in_items = _principal_variable(in_vars, in_decls)
    out_items = _principal_variable(out_vars, out_decls)
    in_name, in_type = in_items
    out_name, out_type = out_items
    return LayoutRule(in_name, in_type, out_name, out_type)


def _struct_elem(ctype: CType) -> Optional[StructType]:
    if isinstance(ctype, ArrayType) and isinstance(ctype.element, StructType):
        return ctype.element
    if isinstance(ctype, StructType):
        return ctype
    return None


def _principal_variable(
    variables: Dict[str, CType], decls: DeclarationSet
) -> Tuple[str, CType]:
    """The single variable a layout section talks about.

    Prefer explicitly declared variables (arrayed structs); fall back to
    the last struct tag (inner helper structs are declared first).
    """
    if len(decls.variables) == 1:
        return next(iter(decls.variables.items()))
    if decls.variables:
        raise RuleError(
            f"layout section declares multiple variables: {sorted(decls.variables)}",
            code="TDST005",
        )
    if not decls.structs:
        raise RuleError("layout section declares nothing", code="TDST005")
    tag = list(decls.structs)[-1]
    return tag, decls.structs[tag]


def parse_rules_collect(source: str) -> Tuple[RuleSet, List[RuleError]]:
    """Parse a rule file's text, collecting *every* problem.

    Returns the rules that did parse plus the list of :class:`RuleError`
    instances (one per broken rule/section, each carrying ``line`` and
    ``code`` when known).  This is the multi-diagnostic entry point the
    ``tdst lint`` pass and :func:`parse_rules` share; a broken rule never
    hides problems in the rules after it.
    """
    from repro.transform.displace import parse_displacements
    from repro.transform.dynamic import parse_pool_rules

    errors: List[RuleError] = []
    rules = RuleSet()
    try:
        sections = _split_sections(source)
    except RuleError as exc:
        return rules, [exc]

    def add_rule(rule: Rule, section: _Section) -> None:
        if rule.source_line is None:
            rule.source_line = section.line
        try:
            rules.add(rule)
        except RuleError as exc:
            errors.append(_at_line(exc, section.line))

    i = 0
    while i < len(sections):
        section = sections[i]
        kind = section.kind
        if kind in ("displace", "pool", "tile"):
            if kind == "displace":
                parser = parse_displacements
            elif kind == "pool":
                parser = parse_pool_rules
            else:
                from repro.transform.tile import parse_tile_rules

                parser = parse_tile_rules
            try:
                for rule in parser(section.text):
                    add_rule(rule, section)
            except RuleError as exc:
                errors.append(_at_line(exc, section.line))
            i += 1
            continue
        if kind != "in":
            errors.append(
                RuleError(
                    f"expected 'in:' section, found '{kind}:'",
                    line=section.line,
                    code="TDST001",
                )
            )
            i += 1
            continue
        if i + 1 >= len(sections) or sections[i + 1].kind != "out":
            errors.append(
                RuleError(
                    "every 'in:' section needs a following 'out:'",
                    line=section.line,
                    code="TDST001",
                )
            )
            i += 1
            continue
        in_section = sections[i]
        out_section = sections[i + 1]
        inject_section = None
        i += 2
        if i < len(sections) and sections[i].kind == "inject":
            inject_section = sections[i]
            i += 1
        try:
            rule = _build_rule(in_section, out_section, inject_section)
        except RuleError as exc:
            errors.append(_at_line(exc, in_section.line))
            continue
        add_rule(rule, in_section)
    return rules, errors


def parse_rules(source: str) -> RuleSet:
    """Parse a rule file's text into a :class:`RuleSet`.

    All problems in the file are gathered before raising: a single
    problem raises its own :class:`RuleError`, several raise one
    :class:`RuleFileError` whose message (and ``errors`` attribute)
    lists every one.
    """
    rules, errors = parse_rules_collect(source)
    if len(errors) == 1:
        raise errors[0]
    if errors:
        raise RuleFileError(errors)
    return rules


def parse_rules_file(path: Union[str, Path]) -> RuleSet:
    """Parse a rule file from disk."""
    return parse_rules(Path(path).read_text(encoding="utf-8"))
